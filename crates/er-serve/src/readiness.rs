//! A hand-rolled readiness facility: `epoll` on Linux, `poll(2)` on other
//! Unixes, behind one `mio`-shaped API.
//!
//! The offline build environment vendors every dependency, so instead of
//! pulling in `mio` this module declares the handful of kernel entry points
//! it needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`) directly
//! — `std` already links libc — and exposes the familiar shape on top:
//! a [`Poller`] you [`register`](Poller::register) file descriptors with
//! under a caller-chosen [`Token`] and an [`Interest`], an [`Events`]
//! buffer [`poll`](Poller::poll) fills, and a [`Waker`] (an `eventfd`; a
//! self-pipe on the `poll(2)` backend) that lets other threads interrupt a
//! blocked `poll` — how the batcher hands finished scores back to the
//! connection driver in [`crate::server`].
//!
//! Readiness is **level-triggered**: as long as a registered descriptor is
//! readable/writable it keeps showing up in every poll, so the driver never
//! needs to drain a socket to exhaustion before polling again. The flip
//! side: stop reading a readable connection (e.g. while a request is in
//! flight) by [`deregister`](Poller::deregister)ing it, or the poller will
//! spin on the un-consumed readiness.
//!
//! # Example
//!
//! ```
//! use er_serve::readiness::{Events, Interest, Poller, Token, Waker};
//! use std::time::Duration;
//!
//! # fn main() -> std::io::Result<()> {
//! let poller = Poller::new()?;
//! let waker = Waker::new(&poller, Token(0))?;
//!
//! // Nothing is ready: poll times out with no events.
//! let mut events = Events::with_capacity(8);
//! poller.poll(&mut events, Some(Duration::from_millis(1)))?;
//! assert!(events.is_empty());
//!
//! // A wake from any thread makes poll return the waker's token.
//! waker.wake()?;
//! poller.poll(&mut events, Some(Duration::from_secs(5)))?;
//! assert_eq!(events.iter().count(), 1);
//! for event in events.iter() {
//!     assert_eq!(event.token(), Token(0));
//!     assert!(event.is_readable());
//! }
//! waker.drain(); // level-triggered: consume the wake before polling again
//! # Ok(()) }
//! ```

use std::time::Duration;

#[cfg(unix)]
pub use imp::{Events, Poller, Waker};

/// The raw file-descriptor type descriptors are registered by.
#[cfg(unix)]
pub type Fd = std::os::fd::RawFd;

/// Caller-chosen identifier attached to a registration; [`Poller::poll`]
/// reports readiness by token, so the driver can map events back to
/// connections without a descriptor lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which readiness directions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness (incoming bytes, an accepted connection queued on
    /// a listener, or EOF).
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness (socket send buffer has room).
    pub const WRITABLE: Interest = Interest(0b10);
    /// Both directions at once.
    pub const BOTH: Interest = Interest(0b11);

    /// Does this interest include the readable direction?
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include the writable direction?
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification out of [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
}

impl Event {
    /// The token the ready descriptor was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The descriptor is readable (for sockets this includes EOF — a read
    /// must still be attempted to observe it).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// The descriptor is writable.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The peer closed or errored the descriptor (`EPOLLHUP`/`EPOLLERR`,
    /// `POLLHUP`/`POLLERR`). The next read or write will surface the exact
    /// error.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Converts an optional poll timeout to the millisecond form the kernel
/// takes: `None` blocks forever (-1), sub-millisecond waits round *up* so a
/// 200µs timeout never busy-spins as 0.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! The Linux backend: one `epoll` instance, a `Waker` backed by an
    //! `eventfd`.

    use super::{timeout_ms, Event, Fd, Interest, Token};
    use std::io;
    use std::time::Duration;

    // epoll constants from <sys/epoll.h>; the event struct is packed on
    // x86-64 (a kernel ABI quirk) and naturally aligned elsewhere.
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.is_readable() {
            bits |= EPOLLIN;
        }
        if interest.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// A buffer [`Poller::poll`] fills with readiness notifications.
    pub struct Events {
        raw: Vec<EpollEvent>,
        ready: Vec<Event>,
    }

    impl Events {
        /// A buffer returning at most `capacity` events per poll.
        pub fn with_capacity(capacity: usize) -> Self {
            let capacity = capacity.max(1);
            Self {
                raw: vec![EpollEvent { events: 0, data: 0 }; capacity],
                ready: Vec::with_capacity(capacity),
            }
        }

        /// The events the last poll produced.
        pub fn iter(&self) -> impl Iterator<Item = &Event> {
            self.ready.iter()
        }

        /// Number of events the last poll produced.
        pub fn len(&self) -> usize {
            self.ready.len()
        }

        /// Did the last poll produce no events (timeout or spurious wake)?
        pub fn is_empty(&self) -> bool {
            self.ready.is_empty()
        }
    }

    /// The `epoll` instance. See the [module docs](super) for the model.
    pub struct Poller {
        epfd: Fd,
    }

    impl Poller {
        /// Creates a fresh `epoll` instance (close-on-exec).
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 has no memory preconditions.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self { epfd })
        }

        fn ctl(&self, op: i32, fd: Fd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event.as_mut().map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, where
            // the kernel ignores it) or points at a live EpollEvent on this
            // stack frame for the duration of the call.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
            Ok(())
        }

        /// Subscribes `fd` under `token`. The registration is
        /// level-triggered; peer-close is always reported (as
        /// [`Event::is_closed`]) even with no interest bits beyond it.
        pub fn register(&self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: interest_bits(interest),
                    data: token.0,
                }),
            )
        }

        /// Replaces the interest (and token) of an already-registered `fd`.
        pub fn reregister(&self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: interest_bits(interest),
                    data: token.0,
                }),
            )
        }

        /// Removes `fd` from the poller. Safe to call for descriptors that
        /// are about to be closed; closing also deregisters implicitly.
        pub fn deregister(&self, fd: Fd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until at least one registered descriptor is ready, the
        /// timeout elapses (`events` comes back empty), or a [`Waker`]
        /// fires. A `None` timeout blocks indefinitely.
        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.ready.clear();
            let capacity = events.raw.len() as i32;
            // SAFETY: `raw` is a live, properly sized buffer for up to
            // `capacity` events; the kernel writes `n <= capacity` entries.
            let n = match cvt(unsafe { epoll_wait(self.epfd, events.raw.as_mut_ptr(), capacity, timeout_ms(timeout)) })
            {
                Ok(n) => n,
                // A signal interrupting the wait is not an error; the
                // driver's loop re-polls with a recomputed timeout.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for raw in &events.raw[..n as usize] {
                let bits = raw.events;
                events.ready.push(Event {
                    token: Token(raw.data),
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: we own epfd and close it exactly once.
            unsafe { close(self.epfd) };
        }
    }

    /// Interrupts a blocked [`Poller::poll`] from another thread, backed by
    /// an `eventfd`. Cloneable across threads via `Arc`; `Send + Sync`.
    pub struct Waker {
        fd: Fd,
    }

    impl Waker {
        /// Creates the eventfd and registers it with `poller` under
        /// `token`; a [`wake`](Self::wake) makes that token readable.
        pub fn new(poller: &Poller, token: Token) -> io::Result<Self> {
            // SAFETY: eventfd has no memory preconditions.
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            if let Err(e) = poller.register(fd, token, Interest::READABLE) {
                // SAFETY: fd was just created and is owned here.
                unsafe { close(fd) };
                return Err(e);
            }
            Ok(Self { fd })
        }

        /// Makes the waker's token readable in the owning poller. Cheap,
        /// async-signal-safe, callable from any thread.
        pub fn wake(&self) -> io::Result<()> {
            let value: u64 = 1;
            // SAFETY: writes 8 bytes from a live u64; eventfd reads exactly 8.
            let n = unsafe { write(self.fd, (&value as *const u64).cast(), 8) };
            if n == 8 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            // The counter is saturated from previous wakes: the poller is
            // already guaranteed to wake, which is all a waker promises.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            Err(err)
        }

        /// Consumes pending wakes so the level-triggered registration stops
        /// reporting readiness. Call once per observed waker event.
        pub fn drain(&self) {
            let mut value: u64 = 0;
            // SAFETY: reads 8 bytes into a live u64; EAGAIN (nothing
            // pending) is fine and ignored.
            unsafe { read(self.fd, (&mut value as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: we own fd and close it exactly once (closing also
            // removes it from any epoll set).
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    //! The portable Unix backend: `poll(2)` over a registration table, a
    //! `Waker` backed by a self-pipe. Functionally identical to the epoll
    //! backend, O(registered descriptors) per poll instead of O(ready).

    use super::{timeout_ms, Event, Fd, Interest, Token};
    use std::collections::HashMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4000;

    /// A buffer [`Poller::poll`] fills with readiness notifications.
    pub struct Events {
        capacity: usize,
        ready: Vec<Event>,
    }

    impl Events {
        /// A buffer returning at most `capacity` events per poll.
        pub fn with_capacity(capacity: usize) -> Self {
            Self {
                capacity: capacity.max(1),
                ready: Vec::with_capacity(capacity.max(1)),
            }
        }

        /// The events the last poll produced.
        pub fn iter(&self) -> impl Iterator<Item = &Event> {
            self.ready.iter()
        }

        /// Number of events the last poll produced.
        pub fn len(&self) -> usize {
            self.ready.len()
        }

        /// Did the last poll produce no events (timeout or spurious wake)?
        pub fn is_empty(&self) -> bool {
            self.ready.is_empty()
        }
    }

    /// The `poll(2)`-backed poller. See the [module docs](super).
    pub struct Poller {
        registered: Mutex<HashMap<Fd, (Token, Interest)>>,
    }

    impl Poller {
        /// Creates an empty registration table.
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: Mutex::new(HashMap::new()),
            })
        }

        /// Subscribes `fd` under `token`, level-triggered.
        pub fn register(&self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(fd, (token, interest));
            Ok(())
        }

        /// Replaces the interest (and token) of an already-registered `fd`.
        pub fn reregister(&self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Removes `fd` from the poller.
        pub fn deregister(&self, fd: Fd) -> io::Result<()> {
            self.registered.lock().unwrap_or_else(|e| e.into_inner()).remove(&fd);
            Ok(())
        }

        /// Blocks until a registered descriptor is ready or the timeout
        /// elapses.
        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.ready.clear();
            let mut fds: Vec<PollFd> = {
                let registered = self.registered.lock().unwrap_or_else(|e| e.into_inner());
                registered
                    .iter()
                    .map(|(&fd, &(_, interest))| {
                        let mut bits = 0i16;
                        if interest.is_readable() {
                            bits |= POLLIN;
                        }
                        if interest.is_writable() {
                            bits |= POLLOUT;
                        }
                        PollFd {
                            fd,
                            events: bits,
                            revents: 0,
                        }
                    })
                    .collect()
            };
            // SAFETY: `fds` is a live contiguous array of nfds entries.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            let registered = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            for pollfd in fds.iter().filter(|p| p.revents != 0) {
                let Some(&(token, _)) = registered.get(&pollfd.fd) else {
                    continue;
                };
                if events.ready.len() == events.capacity {
                    break;
                }
                let bits = pollfd.revents;
                events.ready.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    closed: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    /// Interrupts a blocked [`Poller::poll`], backed by a self-pipe.
    pub struct Waker {
        read_fd: Fd,
        write_fd: Fd,
    }

    impl Waker {
        /// Creates the pipe and registers its read end with `poller` under
        /// `token`.
        pub fn new(poller: &Poller, token: Token) -> io::Result<Self> {
            let mut fds = [0i32; 2];
            // SAFETY: pipe writes two descriptors into the live array.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                // SAFETY: sets O_NONBLOCK on descriptors we just created.
                unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) };
            }
            poller.register(fds[0], token, Interest::READABLE)?;
            Ok(Self {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        /// Makes the waker's token readable in the owning poller.
        pub fn wake(&self) -> io::Result<()> {
            let byte = 1u8;
            // SAFETY: writes one byte from a live buffer.
            let n = unsafe { write(self.write_fd, &byte as *const u8, 1) };
            if n == 1 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(()); // pipe full: a wake is already pending
            }
            Err(err)
        }

        /// Consumes pending wakes.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reads into a live stack buffer.
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: we own both ends and close each exactly once.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    const LISTENER: Token = Token(1);
    const CONN: Token = Token(2);
    const WAKER: Token = Token(9);

    #[test]
    fn a_timeout_poll_returns_empty() {
        let poller = Poller::new().expect("poller");
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        poller.poll(&mut events, Some(Duration::from_millis(5))).expect("poll");
        assert!(events.is_empty());
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn a_pending_connection_makes_the_listener_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller
            .register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
            .expect("register");

        let mut events = Events::with_capacity(4);
        poller.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
        assert!(events.is_empty(), "no client yet");

        let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        poller.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        let event = events.iter().next().expect("listener ready");
        assert_eq!(event.token(), LISTENER);
        assert!(event.is_readable());
        // Level-triggered: the un-accepted connection keeps the listener
        // readable on the next poll too.
        poller.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert!(events.iter().any(|e| e.token() == LISTENER));
    }

    #[test]
    fn reregistering_swaps_interest_and_deregistering_silences() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server_end, _) = listener.accept().expect("accept");
        server_end.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        let mut events = Events::with_capacity(4);
        // Readable interest on an idle connection: silent.
        poller
            .register(server_end.as_raw_fd(), CONN, Interest::READABLE)
            .expect("register");
        poller.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
        assert!(events.is_empty());

        // Swap to writable: an idle socket's send buffer has room.
        poller
            .reregister(server_end.as_raw_fd(), CONN, Interest::WRITABLE)
            .expect("reregister");
        poller.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        let event = events.iter().next().expect("writable");
        assert_eq!(event.token(), CONN);
        assert!(event.is_writable());

        // Back to readable, and bytes arrive.
        poller
            .reregister(server_end.as_raw_fd(), CONN, Interest::READABLE)
            .expect("reregister");
        (&client).write_all(b"ping").expect("client write");
        poller.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert!(events.iter().any(|e| e.token() == CONN && e.is_readable()));

        // Deregistered: the pending bytes no longer wake the poller.
        poller.deregister(server_end.as_raw_fd()).expect("deregister");
        poller.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server_end, _) = listener.accept().expect("accept");
        server_end.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        poller
            .register(server_end.as_raw_fd(), CONN, Interest::READABLE)
            .expect("register");
        drop(client);
        let mut events = Events::with_capacity(4);
        poller.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        let event = events.iter().find(|e| e.token() == CONN).expect("close event");
        assert!(
            event.is_closed() || event.is_readable(),
            "close surfaces as readable/closed"
        );
    }

    #[test]
    fn a_waker_interrupts_a_blocked_poll_from_another_thread() {
        let poller = Arc::new(Poller::new().expect("poller"));
        let waker = Arc::new(Waker::new(&poller, WAKER).expect("waker"));

        let wake_from_thread = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            wake_from_thread.wake().expect("wake");
        });
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        poller.poll(&mut events, Some(Duration::from_secs(10))).expect("poll");
        assert!(
            start.elapsed() < Duration::from_secs(9),
            "the wake must interrupt the poll early"
        );
        let event = events.iter().next().expect("waker event");
        assert_eq!(event.token(), WAKER);
        assert!(event.is_readable());
        handle.join().expect("join");

        // Drained, the waker goes quiet; woken again, it fires again.
        waker.drain();
        poller.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
        assert!(events.is_empty(), "drained waker is silent");
        waker.wake().expect("wake");
        waker.wake().expect("coalesced second wake");
        poller.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert_eq!(events.iter().filter(|e| e.token() == WAKER).count(), 1);
        waker.drain();
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_to_zero() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(200))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(7))), 7);
        assert!(timeout_ms(Some(Duration::from_secs(u64::MAX))) == i32::MAX);
    }
}
