//! Regenerates Figure 14 (active learning with risk-driven selection).
use er_eval::{render_active_learning, run_fig14};

fn main() {
    let config = er_bench::config_from_args(0.05);
    let curves = run_fig14(&config, 8);
    println!("{}", render_active_learning(&curves));
}
