//! String normalization and tokenization.
//!
//! All string metrics in this crate operate on normalized tokens: lower-cased,
//! alphanumeric runs, with punctuation acting as separators.  Entity-set
//! attributes (author lists, artist lists) are additionally split on an entity
//! separator (`,`, `;`, `&`, ` and `) before token-level processing.

/// Normalizes a raw string: lower-case, trim, collapse internal whitespace.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        let c = ch.to_ascii_lowercase();
        if c.is_alphanumeric() {
            out.push(c);
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Splits a string into lower-cased alphanumeric tokens.
pub fn tokens(s: &str) -> Vec<String> {
    normalize(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Splits an entity-set value into its entity names.
///
/// Entities are separated by commas, semicolons, ampersands, pipes or the word
/// `and`.  Each entity is normalized but kept as a whole string so that
/// entity-level metrics (`distinct-entity`, `diff-cardinality`, entity-based
/// Jaccard) can compare whole names.
pub fn entities(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in s.split([',', ';', '&', '|']) {
        for part in chunk.split(" and ") {
            let norm = normalize(part);
            if !norm.is_empty() {
                out.push(norm);
            }
        }
    }
    out
}

/// First-letter abbreviation of a value: the concatenated initial letters of
/// its tokens (e.g. `"very large data bases"` → `"vldb"`).
///
/// Used by the abbreviation-aware difference metrics of the paper
/// (`abbr-non-substring`, `abbr-non-prefix`, `abbr-non-suffix`).
pub fn abbreviation(s: &str) -> String {
    tokens(s).iter().filter_map(|t| t.chars().next()).collect()
}

/// Character q-grams of a normalized string (spaces included as `_`).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let padded: Vec<char> = normalize(s).chars().map(|c| if c == ' ' { '_' } else { c }).collect();
    if padded.len() < q {
        if padded.is_empty() {
            return Vec::new();
        }
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Whether a token is "specific": long enough or containing digits, so that it
/// is likely to identify an entity (model numbers, edition numbers, years).
///
/// This is the fallback key-token test used by `diff-key-token` when no
/// corpus statistics are available.
pub fn is_specific_token(t: &str) -> bool {
    t.chars().any(|c| c.is_ascii_digit()) || t.len() >= 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses() {
        assert_eq!(normalize("  Hello,   World!! "), "hello world");
        assert_eq!(normalize("VLDB'99"), "vldb 99");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("..."), "");
    }

    #[test]
    fn tokens_split_on_punctuation() {
        assert_eq!(
            tokens("The R*-Tree: An Efficient Index"),
            vec!["the", "r", "tree", "an", "efficient", "index"]
        );
        assert!(tokens("").is_empty());
    }

    #[test]
    fn entity_splitting() {
        let authors = entities("T Brinkhoff, H Kriegel, R Schneider, B Seeger");
        assert_eq!(authors.len(), 4);
        assert_eq!(authors[0], "t brinkhoff");
        assert_eq!(authors[3], "b seeger");

        let duo = entities("Simon & Garfunkel");
        assert_eq!(duo, vec!["simon", "garfunkel"]);

        let trio = entities("Alice; Bob and Carol");
        assert_eq!(trio, vec!["alice", "bob", "carol"]);
    }

    #[test]
    fn abbreviation_takes_initials() {
        assert_eq!(abbreviation("Very Large Data Bases"), "vldb");
        assert_eq!(abbreviation("SIGMOD"), "s");
        assert_eq!(abbreviation(""), "");
    }

    #[test]
    fn qgram_extraction() {
        assert_eq!(qgrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(qgrams("a b", 2), vec!["a_", "_b"]);
        assert_eq!(qgrams("ab", 3), vec!["ab"]);
        assert!(qgrams("", 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn qgrams_reject_zero() {
        qgrams("abc", 0);
    }

    #[test]
    fn specific_token_detection() {
        assert!(is_specific_token("mp3player2000"));
        assert!(is_specific_token("45"));
        assert!(is_specific_token("thinkpad"));
        assert!(!is_specific_token("the"));
        assert!(!is_specific_token("photo"));
    }
}
