//! Dependency-free end-to-end request tracing.
//!
//! Every request handled by [`crate::ScoreServer`] gets a trace id (accepted
//! from an `X-Request-Id` header or generated) and an [`ActiveTrace`] that
//! accumulates monotonic enter/exit timestamps for the fixed stage set
//! `parse → ratelimit → admission_queue → batch_wait → score (per-shard) →
//! serialize → write` as the request moves across threads (connection handler
//! → batcher → executor shards → handler again). Hot reloads record their own
//! `load → validate → probe → swap` timeline through the same machinery.
//!
//! Recording is lock-cheap: spans are pushed onto a plain `Vec` owned by
//! whichever thread currently holds the trace, as raw [`Instant`] pairs — no
//! clock math, no allocation beyond the `Vec`, and no shared state. The single
//! [`Tracer`] mutex is taken once per request, at commit, when the finished
//! timeline is converted to microsecond offsets against the tracer's epoch and
//! inserted into a fixed-capacity ring with **tail-biased retention**: a FIFO
//! window of the most recent traces plus a reserved slice that always keeps
//! the slowest-N traces seen so far, so the requests worth debugging survive
//! wrap-around.
//!
//! Completed traces are exported two ways: [`Tracer::chrome_trace_json`]
//! renders the snapshot as Chrome trace-event JSON (loadable in
//! `chrome://tracing` or Perfetto; served by `GET /debug/traces`), and
//! [`Tracer::slow_exemplars`] yields per-stage breakdowns of the slowest
//! requests for attachment to the top latency-histogram buckets in `/stats`.

use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize, Value};

/// The fixed stage taxonomy. Request stages appear in pipeline order;
/// `Load..=Swap` belong to the hot-reload timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// HTTP head + JSON body parsing on the connection handler.
    Parse,
    /// Token-bucket admission check (present only when rate limiting is on).
    Ratelimit,
    /// Time spent queued in the bounded admission queue, enqueue → drain.
    AdmissionQueue,
    /// Drain → scoring start: the micro-batch coalescing window.
    BatchWait,
    /// Model evaluation; one span per executor shard that scored the batch.
    Score,
    /// Response-body serialization on the connection handler.
    Serialize,
    /// Writing the response bytes to the socket.
    Write,
    /// Supervision: re-scoring work a panicked worker abandoned (present
    /// only when a panic was caught and the chunk was restarted).
    Recover,
    /// Reload: artifact load + parse from disk.
    Load,
    /// Reload: structural validation of the candidate model.
    Validate,
    /// Reload: round-trip bit-exactness probes.
    Probe,
    /// Reload: executor rebuild + atomic swap.
    Swap,
}

impl Stage {
    /// Stable wire name of the stage, used in exports and exemplars.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Ratelimit => "ratelimit",
            Stage::AdmissionQueue => "admission_queue",
            Stage::BatchWait => "batch_wait",
            Stage::Score => "score",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
            Stage::Recover => "recover",
            Stage::Load => "load",
            Stage::Validate => "validate",
            Stage::Probe => "probe",
            Stage::Swap => "swap",
        }
    }
}

/// One recorded stage interval, still as raw monotonic instants.
#[derive(Clone, Copy, Debug)]
struct RawSpan {
    stage: Stage,
    shard: Option<u32>,
    start: Instant,
    end: Instant,
}

/// A detached set of spans recorded away from the owning [`ActiveTrace`] —
/// e.g. the batch-level spans the batcher and executor record once per
/// micro-batch and then replay into every coalesced request's trace.
#[derive(Clone, Debug, Default)]
pub struct SpanSet {
    spans: Vec<RawSpan>,
}

impl SpanSet {
    /// An empty span set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one stage interval.
    pub fn record(&mut self, stage: Stage, start: Instant, end: Instant) {
        self.spans.push(RawSpan {
            stage,
            shard: None,
            start,
            end,
        });
    }

    /// Record one stage interval attributed to an executor shard.
    pub fn record_shard(&mut self, stage: Stage, shard: u32, start: Instant, end: Instant) {
        self.spans.push(RawSpan {
            stage,
            shard: Some(shard),
            start,
            end,
        });
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drop all recorded spans, keeping the allocation.
    pub fn clear(&mut self) {
        self.spans.clear();
    }
}

/// An in-flight trace: the trace id plus every span recorded so far. Owned by
/// exactly one thread at a time and handed across threads by value (the
/// connection handler sends it to the batcher inside the job and receives it
/// back with the reply), so recording never takes a lock.
#[derive(Debug)]
pub struct ActiveTrace {
    trace_id: String,
    route: &'static str,
    started: Instant,
    spans: Vec<RawSpan>,
}

impl ActiveTrace {
    /// The trace id (client-supplied `X-Request-Id` or generated).
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Record one stage interval.
    pub fn record(&mut self, stage: Stage, start: Instant, end: Instant) {
        self.spans.push(RawSpan {
            stage,
            shard: None,
            start,
            end,
        });
    }

    /// Record one stage interval attributed to an executor shard.
    pub fn record_shard(&mut self, stage: Stage, shard: u32, start: Instant, end: Instant) {
        self.spans.push(RawSpan {
            stage,
            shard: Some(shard),
            start,
            end,
        });
    }

    /// Replay a detached [`SpanSet`] (e.g. batch-level spans) into this trace.
    pub fn extend_from(&mut self, set: &SpanSet) {
        self.spans.extend_from_slice(&set.spans);
    }

    /// Time the closure and record it as `stage`.
    pub fn measure<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(stage, start, Instant::now());
        out
    }
}

/// One completed span: stage, optional shard, and microsecond offsets against
/// the owning tracer's epoch.
#[derive(Clone, Debug)]
pub struct Span {
    /// Which pipeline stage this interval covers.
    pub stage: Stage,
    /// Executor shard index for `score` spans fanned across threads.
    pub shard: Option<u32>,
    /// Start offset in microseconds since the tracer epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// A finished request (or reload) timeline as stored in the ring.
#[derive(Clone, Debug)]
pub struct CompletedTrace {
    /// Trace id; echoed to the client as `X-Request-Id`.
    pub trace_id: String,
    /// Route label the request resolved to (e.g. `/score`).
    pub route: &'static str,
    /// Final HTTP status (0 for non-HTTP timelines such as reloads).
    pub status: u16,
    /// Commit sequence number, unique and monotone per tracer.
    pub seq: u64,
    /// Trace-window start in microseconds since the tracer epoch.
    pub start_us: u64,
    /// Whole-trace duration in microseconds (begin → commit).
    pub total_us: u64,
    /// Recorded stage spans, in recording order.
    pub spans: Vec<Span>,
}

impl CompletedTrace {
    /// Sum of recorded `score` span durations across shards, in microseconds.
    pub fn score_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == Stage::Score)
            .map(|s| s.dur_us)
            .sum()
    }
}

/// A slow-request exemplar: the trace id plus a per-stage duration breakdown,
/// suitable for attaching to the top latency-histogram buckets in `/stats`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlowExemplar {
    /// Trace id of the exemplar request.
    pub trace_id: String,
    /// Route the request hit.
    pub route: String,
    /// Final HTTP status.
    pub status: u64,
    /// Whole-trace duration in microseconds.
    pub total_us: u64,
    /// Per-stage durations, pipeline order, shards summed into `score`.
    pub stages: Vec<StageDur>,
}

/// One stage's total duration inside a [`SlowExemplar`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageDur {
    /// Stage wire name (see [`Stage::name`]).
    pub stage: String,
    /// Total microseconds spent in the stage (shard spans summed).
    pub dur_us: u64,
}

/// Heap entry keyed by `(total_us, seq)` so the heap's minimum is the fastest
/// retained slow trace — the one a new slower trace evicts first.
struct SlowEntry {
    total_us: u64,
    seq: u64,
    trace: Arc<CompletedTrace>,
}

impl PartialEq for SlowEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.total_us, self.seq) == (other.total_us, other.seq)
    }
}
impl Eq for SlowEntry {}
impl PartialOrd for SlowEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SlowEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.total_us, self.seq).cmp(&(other.total_us, other.seq))
    }
}

/// Fixed-capacity trace store with tail-biased retention: a FIFO window of
/// the most recent `capacity - slow_reserve` traces plus a min-heap keeping
/// the `slow_reserve` slowest traces ever inserted, so the slowest-N always
/// survive wrap-around.
struct TraceRing {
    capacity: usize,
    slow_reserve: usize,
    recent: VecDeque<Arc<CompletedTrace>>,
    slowest: BinaryHeap<std::cmp::Reverse<SlowEntry>>,
}

impl TraceRing {
    fn new(capacity: usize, slow_reserve: usize) -> Self {
        let slow_reserve = slow_reserve.min(capacity);
        Self {
            capacity,
            slow_reserve,
            recent: VecDeque::with_capacity(capacity - slow_reserve),
            slowest: BinaryHeap::with_capacity(slow_reserve.saturating_add(1)),
        }
    }

    fn insert(&mut self, trace: Arc<CompletedTrace>) {
        if self.capacity == 0 {
            return;
        }
        if self.slow_reserve > 0 {
            let entry = SlowEntry {
                total_us: trace.total_us,
                seq: trace.seq,
                trace: Arc::clone(&trace),
            };
            if self.slowest.len() < self.slow_reserve {
                self.slowest.push(std::cmp::Reverse(entry));
            } else if self.slowest.peek().is_some_and(|min| entry.total_us > min.0.total_us) {
                self.slowest.pop();
                self.slowest.push(std::cmp::Reverse(entry));
            }
        }
        let recent_capacity = self.capacity - self.slow_reserve;
        if recent_capacity > 0 {
            if self.recent.len() == recent_capacity {
                self.recent.pop_front();
            }
            self.recent.push_back(trace);
        }
    }

    /// Every retained trace — recent window plus slowest reserve — deduped by
    /// commit sequence number and sorted by it.
    fn snapshot(&self) -> Vec<Arc<CompletedTrace>> {
        let mut by_seq: std::collections::BTreeMap<u64, Arc<CompletedTrace>> = std::collections::BTreeMap::new();
        for trace in &self.recent {
            by_seq.insert(trace.seq, Arc::clone(trace));
        }
        for entry in &self.slowest {
            by_seq.insert(entry.0.seq, Arc::clone(&entry.0.trace));
        }
        by_seq.into_values().collect()
    }
}

/// The per-server trace collector: hands out [`ActiveTrace`]s, converts them
/// to epoch-relative [`CompletedTrace`]s at commit, and retains them in a
/// tail-biased ring (see the retention discussion on the module page).
pub struct Tracer {
    epoch: Instant,
    seq: AtomicU64,
    committed: AtomicU64,
    ring: Mutex<TraceRing>,
}

impl Tracer {
    /// A tracer retaining up to `capacity` traces, with one eighth of the
    /// capacity (at least one slot, when capacity allows) reserved for the
    /// slowest traces seen. `capacity == 0` disables retention entirely —
    /// commits still count, but nothing is stored.
    pub fn new(capacity: usize) -> Self {
        Self::with_reserve(capacity, Self::default_reserve(capacity))
    }

    /// A tracer with an explicit slowest-N reserve (clamped to `capacity`).
    pub fn with_reserve(capacity: usize, slow_reserve: usize) -> Self {
        Self {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            ring: Mutex::new(TraceRing::new(capacity, slow_reserve)),
        }
    }

    /// The default slowest-N reserve for a given capacity.
    pub fn default_reserve(capacity: usize) -> usize {
        if capacity == 0 {
            0
        } else {
            (capacity / 8).max(1).min(capacity)
        }
    }

    /// Total ring capacity this tracer was built with.
    pub fn capacity(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).capacity
    }

    /// Start a trace. Recording happens on the returned value without any
    /// shared state; nothing is visible to exports until [`Tracer::commit`].
    pub fn begin(&self, trace_id: String, route: &'static str) -> ActiveTrace {
        ActiveTrace {
            trace_id,
            route,
            started: Instant::now(),
            spans: Vec::with_capacity(8),
        }
    }

    /// Finish a trace with its final HTTP status and insert it into the ring.
    pub fn commit(&self, trace: ActiveTrace, status: u16) {
        let ended = Instant::now();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let start_us = self.offset_us(trace.started);
        let total_us = self.offset_us(ended).saturating_sub(start_us);
        let spans = trace
            .spans
            .iter()
            .map(|raw| {
                let span_start = self.offset_us(raw.start);
                Span {
                    stage: raw.stage,
                    shard: raw.shard,
                    start_us: span_start,
                    dur_us: self.offset_us(raw.end).saturating_sub(span_start),
                }
            })
            .collect();
        let completed = Arc::new(CompletedTrace {
            trace_id: trace.trace_id,
            route: trace.route,
            status,
            seq,
            start_us,
            total_us,
            spans,
        });
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).insert(completed);
        self.committed.fetch_add(1, Ordering::Release);
    }

    /// How many traces have been committed over the tracer's lifetime
    /// (independent of how many the ring still retains).
    pub fn committed_total(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Every retained trace, sorted by commit sequence number.
    pub fn snapshot(&self) -> Vec<Arc<CompletedTrace>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).snapshot()
    }

    /// The `n` slowest retained traces as per-stage exemplars, slowest first.
    pub fn slow_exemplars(&self, n: usize) -> Vec<SlowExemplar> {
        let mut traces = self.snapshot();
        traces.sort_by_key(|t| std::cmp::Reverse((t.total_us, t.seq)));
        traces.truncate(n);
        traces.iter().map(|t| exemplar_of(t)).collect()
    }

    /// Render every retained trace as a Chrome trace-event JSON document
    /// (the `{"traceEvents": [...]}` object format; timestamps are
    /// microseconds since the tracer epoch, one `tid` lane per trace).
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_document(&self.snapshot(), self.committed_total())
    }

    fn offset_us(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch).map_or(0, |d| d.as_micros() as u64)
    }
}

fn exemplar_of(trace: &CompletedTrace) -> SlowExemplar {
    let mut stages: Vec<StageDur> = Vec::new();
    for span in &trace.spans {
        let name = span.stage.name();
        match stages.iter_mut().find(|s| s.stage == name) {
            Some(existing) => existing.dur_us += span.dur_us,
            None => stages.push(StageDur {
                stage: name.to_string(),
                dur_us: span.dur_us,
            }),
        }
    }
    SlowExemplar {
        trace_id: trace.trace_id.clone(),
        route: trace.route.to_string(),
        status: u64::from(trace.status),
        total_us: trace.total_us,
        stages,
    }
}

/// True when `id` is acceptable as a client-supplied `X-Request-Id`:
/// 1–64 characters from `[A-Za-z0-9._-]` (no escaping needed in JSON logs
/// or the Chrome export).
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Build a Chrome trace-event JSON document from completed traces. Each trace
/// gets its own `tid` lane holding one whole-request event plus one event per
/// stage span; `committed_total` lands in `otherData` so consumers can tell
/// how many traces the ring has seen versus retained.
pub fn chrome_trace_document(traces: &[Arc<CompletedTrace>], committed_total: u64) -> String {
    let mut events = Vec::new();
    for (lane, trace) in traces.iter().enumerate() {
        let tid = lane as u64 + 1;
        events.push(chrome_event(
            trace.route,
            "request",
            trace.start_us,
            trace.total_us,
            tid,
            vec![
                ("trace_id".to_string(), Value::Str(trace.trace_id.clone())),
                ("status".to_string(), Value::UInt(u64::from(trace.status))),
                ("seq".to_string(), Value::UInt(trace.seq)),
            ],
        ));
        for span in &trace.spans {
            let mut args = vec![("trace_id".to_string(), Value::Str(trace.trace_id.clone()))];
            if let Some(shard) = span.shard {
                args.push(("shard".to_string(), Value::UInt(u64::from(shard))));
            }
            events.push(chrome_event(
                span.stage.name(),
                "stage",
                span.start_us,
                span.dur_us,
                tid,
                args,
            ));
        }
    }
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Map(vec![
                ("committed_total".to_string(), Value::UInt(committed_total)),
                ("retained".to_string(), Value::UInt(traces.len() as u64)),
            ]),
        ),
    ]);
    serde::json::to_string(&doc)
}

fn chrome_event(name: &str, cat: &str, ts_us: u64, dur_us: u64, tid: u64, args: Vec<(String, Value)>) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), Value::UInt(ts_us)),
        ("dur".to_string(), Value::UInt(dur_us)),
        ("pid".to_string(), Value::UInt(1)),
        ("tid".to_string(), Value::UInt(tid)),
        ("args".to_string(), Value::Map(args)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn synthetic(seq: u64, total_us: u64) -> Arc<CompletedTrace> {
        Arc::new(CompletedTrace {
            trace_id: format!("t-{seq}"),
            route: "/score",
            status: 200,
            seq,
            start_us: seq * 1_000,
            total_us,
            spans: vec![Span {
                stage: Stage::Score,
                shard: Some(0),
                start_us: seq * 1_000,
                dur_us: total_us,
            }],
        })
    }

    #[test]
    fn slowest_n_survive_wrap_around() {
        // Capacity 8 with 4 reserved slow slots; recent window holds 4.
        let mut ring = TraceRing::new(8, 4);
        // 100 inserts; the slowest are seqs 10, 20, 30, 40 (totals 9010..9040),
        // everything else is fast and long since evicted from the window.
        for seq in 0..100u64 {
            let total = if seq % 10 == 0 && (10..=40).contains(&seq) {
                9_000 + seq
            } else {
                100
            };
            ring.insert(synthetic(seq, total));
        }
        let snap = ring.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|t| t.seq).collect();
        // 4 most recent plus the 4 slowest, no duplicates.
        assert_eq!(seqs, vec![10, 20, 30, 40, 96, 97, 98, 99]);
        for slow_seq in [10u64, 20, 30, 40] {
            let t = snap.iter().find(|t| t.seq == slow_seq).unwrap();
            assert_eq!(t.total_us, 9_000 + slow_seq);
        }
    }

    #[test]
    fn zero_capacity_records_nothing_but_still_counts() {
        let tracer = Tracer::new(0);
        for i in 0..10 {
            let trace = tracer.begin(format!("z-{i}"), "/score");
            tracer.commit(trace, 200);
        }
        assert_eq!(tracer.committed_total(), 10);
        assert!(tracer.snapshot().is_empty());
        assert!(tracer.slow_exemplars(5).is_empty());
    }

    #[test]
    fn capacity_one_keeps_the_slowest_trace() {
        // capacity 1 → the whole ring is the slow reserve.
        let mut ring = TraceRing::new(1, 1);
        ring.insert(synthetic(0, 50));
        ring.insert(synthetic(1, 5_000)); // the slowest
        ring.insert(synthetic(2, 70));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].seq, 1);
        assert_eq!(snap[0].total_us, 5_000);
    }

    #[test]
    fn reserve_is_clamped_and_recent_window_fills_the_rest() {
        let mut ring = TraceRing::new(4, 100); // reserve clamps to 4
        for seq in 0..10 {
            ring.insert(synthetic(seq, 1_000 - seq));
        }
        // All slots are slow reserve; earliest traces were the slowest.
        let seqs: Vec<u64> = ring.snapshot().iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_recorders_all_commit() {
        let tracer = Arc::new(Tracer::new(4_096));
        let threads = 8;
        let per_thread = 64;
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let tracer = Arc::clone(&tracer);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let mut trace = tracer.begin(format!("w{worker}-{i}"), "/score");
                        let start = Instant::now();
                        let end = start + Duration::from_micros(10);
                        trace.record(Stage::Parse, start, end);
                        trace.record_shard(Stage::Score, worker as u32, start, end);
                        tracer.commit(trace, 200);
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        assert_eq!(tracer.committed_total(), total);
        let snap = tracer.snapshot();
        assert_eq!(snap.len(), total as usize);
        // seq must be unique and every trace id distinct.
        let mut ids: Vec<&str> = snap.iter().map(|t| t.trace_id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total as usize);
        for t in &snap {
            assert_eq!(t.spans.len(), 2);
        }
    }

    #[test]
    fn chrome_export_is_wellformed_trace_event_json() {
        let tracer = Tracer::new(64);
        for i in 0..3 {
            let mut trace = tracer.begin(format!("c-{i}"), "/score");
            let start = Instant::now();
            trace.record(Stage::Parse, start, start + Duration::from_micros(5));
            trace.record_shard(Stage::Score, 1, start, start + Duration::from_micros(9));
            tracer.commit(trace, 200);
        }
        let text = tracer.chrome_trace_json();
        let doc = serde::json::parse(&text).expect("chrome export must parse as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_seq())
            .expect("traceEvents array");
        // 3 traces × (1 request event + 2 stage events).
        assert_eq!(events.len(), 9);
        for event in events {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(event.get(key).is_some(), "event missing {key}");
            }
            assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
            let args = event.get("args").expect("args");
            assert!(args.get("trace_id").is_some());
        }
        assert_eq!(doc.get("displayTimeUnit").and_then(|v| v.as_str()), Some("ms"));
        assert_eq!(
            doc.get("otherData").and_then(|v| v.get("committed_total")),
            Some(&Value::UInt(3))
        );
    }

    #[test]
    fn slow_exemplars_merge_stage_durations_and_sort_slowest_first() {
        let tracer = Tracer::new(64);
        let epoch = Instant::now();
        for (i, score_us) in [200u64, 900, 50].into_iter().enumerate() {
            let mut trace = tracer.begin(format!("e-{i}"), "/score");
            let start = epoch;
            trace.record(Stage::Parse, start, start + Duration::from_micros(10));
            // Two shards: exemplar must sum them into one `score` entry.
            trace.record_shard(Stage::Score, 0, start, start + Duration::from_micros(score_us));
            trace.record_shard(Stage::Score, 1, start, start + Duration::from_micros(score_us));
            tracer.commit(trace, 200);
        }
        let exemplars = tracer.slow_exemplars(2);
        assert_eq!(exemplars.len(), 2);
        // Slowest committed last-longest wall time; ordering is by total_us
        // which tracks real elapsed time here, so just assert the invariant.
        assert!(exemplars[0].total_us >= exemplars[1].total_us);
        for ex in &exemplars {
            let score = ex.stages.iter().find(|s| s.stage == "score").unwrap();
            let single = match ex.trace_id.as_str() {
                "e-0" => 200,
                "e-1" => 900,
                "e-2" => 50,
                other => panic!("unexpected trace id {other}"),
            };
            assert_eq!(score.dur_us, 2 * single);
            assert!(ex.stages.iter().any(|s| s.stage == "parse"));
        }
    }

    #[test]
    fn trace_id_validation() {
        assert!(valid_trace_id("abc-123_X.y"));
        assert!(valid_trace_id("a"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id("has space"));
        assert!(!valid_trace_id("quote\"inside"));
        assert!(!valid_trace_id(&"x".repeat(65)));
        assert!(valid_trace_id(&"x".repeat(64)));
    }
}
