//! End-to-end integration of the HTTP front-end: **train → export → load →
//! serve**, driven over a raw [`TcpStream`] exactly as an external client
//! would.
//!
//! The train step is a real [`learnrisk_core::train`] run over synthetic
//! risk inputs (not a hand-assembled model), the export/load step goes
//! through a temp-dir [`ModelArtifact`] file, and the serve step asserts the
//! socket-returned scores are **bit-identical** to in-process
//! [`ScoringEngine::score_batch`] on the same requests — including that a
//! malformed request gets a deterministic JSON error body on a connection
//! that keeps serving, never a dropped connection.

use er_base::Label;
use er_rulegen::{CmpOp, Condition, Rule};
use er_serve::{
    http_roundtrip, http_roundtrip_with_headers, parse_exposition, parse_score_response, FaultPlan, ModelArtifact,
    RateLimitConfig, ReloadableExecutor, RetryPolicy, ScoreRequest, ScoreServer, ScoringEngine, ServeConfig,
    ServerConfig,
};
use learnrisk_core::{train, LearnRiskModel, PairRiskInput, RiskFeatureSet, RiskModelConfig, RiskTrainConfig};
use std::net::TcpStream;
use std::sync::Arc;

const METRICS: usize = 3;

/// An untrained model over a hand-written rule set (stands in for the
/// rule-generation stage, which has its own pipeline tests in `er-eval`).
fn untrained_model() -> LearnRiskModel {
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.55)], Label::Inequivalent, 24, 0.95),
        Rule::new(
            vec![Condition::new(1, CmpOp::Le, 0.35), Condition::new(2, CmpOp::Gt, 0.5)],
            Label::Equivalent,
            17,
            0.9,
        ),
        Rule::new(vec![Condition::new(2, CmpOp::Le, 0.25)], Label::Inequivalent, 11, 0.88),
        Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.7)], Label::Equivalent, 9, 0.86),
    ];
    let feature_set = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.06, 0.91, 0.12, 0.88],
        support: vec![24, 17, 11, 9],
    };
    LearnRiskModel::new(feature_set, RiskModelConfig::default())
}

/// Deterministic synthetic metric rows: quasi-random in [0, 1).
fn metric_row(i: u64) -> Vec<f64> {
    (0..METRICS)
        .map(|j| ((i as f64) * 0.618_033_988_749_895 + (j as f64) * 0.414_213_562_373_095).fract())
        .collect()
}

/// Risk-training inputs with a deterministic mislabeled minority, so the
/// rank-pair sampler has positives to rank and training actually moves the
/// parameters.
fn training_inputs(model: &LearnRiskModel, n: u64) -> Vec<PairRiskInput> {
    let engine = ScoringEngine::new(model.clone());
    (0..n)
        .map(|i| {
            let row = metric_row(i);
            let classifier_output = ((i as f64) * 0.271_828_182_845_904).fract();
            PairRiskInput {
                rule_indices: engine.index().matching_rules(&row),
                classifier_output,
                machine_says_match: classifier_output >= 0.5,
                risk_label: u8::from(i % 7 == 0),
            }
        })
        .collect()
}

fn serving_requests(n: u64) -> Vec<ScoreRequest> {
    (0..n)
        .map(|i| {
            let classifier_output = ((i as f64) * 0.271_828_182_845_904).fract();
            ScoreRequest {
                pair_id: i,
                metric_row: metric_row(i),
                classifier_output,
                machine_says_match: classifier_output >= 0.5,
            }
        })
        .collect()
}

#[test]
fn train_export_load_serve_over_a_raw_socket_is_bit_identical() {
    // --- train ---
    let mut model = untrained_model();
    let untrained_weights = model.rule_weights.clone();
    let inputs = training_inputs(&model, 160);
    let report = train(
        &mut model,
        &inputs,
        &RiskTrainConfig {
            epochs: 25,
            ..Default::default()
        },
    );
    assert!(!report.losses.is_empty(), "training must have run epochs");
    assert_ne!(model.rule_weights, untrained_weights, "training must move the weights");

    // --- export → load ---
    let dir = std::env::temp_dir().join("er-serve-server-integration");
    let path = dir.join("trained.json");
    ModelArtifact::new(model.clone()).save(&path).expect("export artifact");
    let loaded = ModelArtifact::load(&path).expect("load artifact");

    // --- serve ---
    let executor = Arc::new(
        ReloadableExecutor::from_artifact(loaded, ServeConfig::default().with_threads(2)).expect("boot from artifact"),
    );
    let server = ScoreServer::start(Arc::clone(&executor), ServerConfig::default()).expect("bind");
    let requests = serving_requests(120);
    let expected = ScoringEngine::new(model).score_batch(&requests);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // One-by-one over a keep-alive connection: every socket score matches
    // the in-process engine to the last bit, and carries the version tag.
    for (request, expected_score) in requests.iter().zip(&expected) {
        let body = serde::json::to_string(request);
        let response = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("score round trip");
        assert_eq!(response.status, 200, "{}", response.body);
        let (version, scores) = parse_score_response(&response.body).expect("score body");
        assert_eq!(version, 1);
        assert_eq!(scores.len(), 1);
        assert_eq!(
            scores[0].to_bits(),
            expected_score.to_bits(),
            "socket score diverged on pair {}",
            request.pair_id
        );
    }
    // The whole pool as one batched POST: same bits, one version.
    let body = serde::json::to_string(&requests);
    let response = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("batch round trip");
    assert_eq!(response.status, 200, "{}", response.body);
    let (version, scores) = parse_score_response(&response.body).expect("batch body");
    assert_eq!(version, 1);
    let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
    let expected_bits: Vec<u64> = expected.iter().map(|s| s.to_bits()).collect();
    assert_eq!(bits, expected_bits);

    // /version reports the artifact's provenance, not a placeholder.
    let version_response = http_roundtrip(&mut stream, "GET", "/version", None).expect("version");
    assert_eq!(version_response.status, 200);
    assert!(
        version_response.body.contains("er-serve"),
        "producer missing from {}",
        version_response.body
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_requests_get_error_bodies_and_the_connection_survives() {
    let mut model = untrained_model();
    let inputs = training_inputs(&model, 80);
    train(
        &mut model,
        &inputs,
        &RiskTrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    let executor = Arc::new(ReloadableExecutor::new(
        ScoringEngine::new(model.clone()),
        ServeConfig::default().with_threads(1),
    ));
    let server = ScoreServer::start(executor, ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // Syntactically broken JSON → 400 with a deterministic error body.
    let bad = http_roundtrip(&mut stream, "POST", "/score", Some("[{\"pair_id\": }")).expect("still a response");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.starts_with("{\"error\":"), "{}", bad.body);

    // Well-formed JSON that is not a score request → 400, naming the field.
    let wrong_shape = http_roundtrip(&mut stream, "POST", "/score", Some("{\"hello\": 1}")).expect("still a response");
    assert_eq!(wrong_shape.status, 400, "{}", wrong_shape.body);

    // A short metric row inside a batch → 422 naming the offending index,
    // and the well-formed neighbors of the same batch are not penalized on
    // the retry without the bad request.
    let mut batch = serving_requests(4);
    batch[2].metric_row = vec![0.5];
    let body = serde::json::to_string(&batch);
    let unscorable = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("still a response");
    assert_eq!(unscorable.status, 422, "{}", unscorable.body);
    assert!(unscorable.body.contains("\"request_index\":2"), "{}", unscorable.body);

    // The same connection keeps serving after every rejection.
    let good = serving_requests(3);
    let expected = ScoringEngine::new(model).score_batch(&good);
    let body = serde::json::to_string(&good);
    let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("survives");
    assert_eq!(ok.status, 200, "{}", ok.body);
    let (_, scores) = parse_score_response(&ok.body).expect("body");
    let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
    let expected_bits: Vec<u64> = expected.iter().map(|s| s.to_bits()).collect();
    assert_eq!(bits, expected_bits);

    server.shutdown();
}

#[test]
fn concurrent_clients_coalesce_into_micro_batches_without_score_drift() {
    let mut model = untrained_model();
    let inputs = training_inputs(&model, 80);
    train(
        &mut model,
        &inputs,
        &RiskTrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    let executor = Arc::new(ReloadableExecutor::new(
        ScoringEngine::new(model.clone()),
        ServeConfig::default().with_threads(2),
    ));
    let server = ScoreServer::start(executor, ServerConfig::default()).expect("bind");
    let requests = serving_requests(60);
    let expected = ScoringEngine::new(model).score_batch(&requests);
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for chunk in requests.chunks(15).zip(expected.chunks(15)) {
            let (requests, expected) = chunk;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                for (request, expected_score) in requests.iter().zip(expected) {
                    let body = serde::json::to_string(request);
                    let response = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("round trip");
                    assert_eq!(response.status, 200, "{}", response.body);
                    let (_, scores) = parse_score_response(&response.body).expect("body");
                    assert_eq!(scores[0].to_bits(), expected_score.to_bits());
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(
        stats.responses_4xx + stats.responses_429 + stats.responses_5xx,
        0,
        "{stats:?}"
    );
    assert_eq!(stats.batched_requests, 60);
    server.shutdown();
}

#[test]
fn rate_limited_client_is_rejected_over_a_raw_socket_while_metrics_attribute_it() {
    let mut model = untrained_model();
    let inputs = training_inputs(&model, 80);
    train(
        &mut model,
        &inputs,
        &RiskTrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    let executor = Arc::new(ReloadableExecutor::new(
        ScoringEngine::new(model.clone()),
        ServeConfig::default().with_threads(1),
    ));
    // A slow-refill bucket so the burst is the whole budget for this test.
    let server = ScoreServer::start(
        executor,
        ServerConfig {
            rate_limit: Some(RateLimitConfig::new(0.001, 3.0)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let expected = ScoringEngine::new(model).score_batch(&serving_requests(1));
    let body = serde::json::to_string(&serving_requests(1)[0]);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // Client A spends its whole burst; every allowed response is still
    // bit-identical to the in-process engine (admission control must not
    // touch scoring).
    let a = [("X-Client-Id", "client-a")];
    for i in 0..3 {
        let ok = http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&body), &a).expect("round trip");
        assert_eq!(ok.status, 200, "burst request {i}: {}", ok.body);
        let (_, scores) = parse_score_response(&ok.body).expect("body");
        assert_eq!(scores[0].to_bits(), expected[0].to_bits());
    }

    // The over-budget request bounces with the rate-limit shape — 429 plus
    // all three X-RateLimit-* headers and a non-zero Retry-After, which is
    // exactly what distinguishes it from a queue-full 429 — and the
    // connection itself survives the rejection.
    let limited =
        http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&body), &a).expect("still a response");
    assert_eq!(limited.status, 429, "{}", limited.body);
    assert_eq!(limited.header("x-ratelimit-limit"), Some("3"));
    assert_eq!(limited.header("x-ratelimit-remaining"), Some("0"));
    assert!(limited.header("x-ratelimit-reset").is_some(), "{:?}", limited.headers);
    assert!(
        limited.header("retry-after").is_some_and(|v| v != "0"),
        "rate-limit Retry-After must be the real refill time, got {:?}",
        limited.headers
    );

    // Client B shares the TCP connection and peer IP but presents its own
    // identity: its bucket is untouched.
    let b = [("X-Client-Id", "client-b")];
    let ok = http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&body), &b).expect("round trip");
    assert_eq!(ok.status, 200, "{}", ok.body);

    // The rejection is attributed in the exposition: one rate-limited
    // admission, zero queue-full ones, and only the four allowed requests
    // reached the scoring path.
    let scrape = http_roundtrip(&mut stream, "GET", "/metrics", None).expect("scrape");
    assert_eq!(scrape.status, 200);
    let samples = parse_exposition(&scrape.body).expect("exposition parses");
    let value = |name: &str| samples.iter().filter(|s| s.name == name).map(|s| s.value).sum::<f64>();
    let rejected = |cause: &str| {
        samples
            .iter()
            .filter(|s| s.name == "er_serve_rejected_total" && s.labels.iter().any(|(k, v)| k == "cause" && v == cause))
            .map(|s| s.value)
            .sum::<f64>()
    };
    assert_eq!(rejected("rate_limited"), 1.0);
    assert_eq!(rejected("queue_full"), 0.0);
    assert_eq!(value("er_serve_score_requests_total"), 4.0);

    server.shutdown();
}

/// Builds a small trained server for the degradation tests below.
fn trained_server(config: ServerConfig) -> (ScoreServer, LearnRiskModel) {
    let mut model = untrained_model();
    let inputs = training_inputs(&model, 80);
    train(
        &mut model,
        &inputs,
        &RiskTrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    let executor = Arc::new(ReloadableExecutor::new(
        ScoringEngine::new(model.clone()),
        ServeConfig::default().with_threads(1),
    ));
    (ScoreServer::start(executor, config).expect("bind"), model)
}

#[test]
fn deadline_header_edge_cases_are_parsed_leniently_over_the_wire() {
    // No server default: a missing, zero, garbage, or absurdly huge
    // X-Deadline-Ms must all degrade to "no deadline" — a lenient header
    // parse must never turn into a spurious 504 or a 400.
    let (server, model) = trained_server(ServerConfig::default());
    let expected = ScoringEngine::new(model).score_batch(&serving_requests(1));
    let body = serde::json::to_string(&serving_requests(1)[0]);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let cases: [&[(&str, &str)]; 4] = [
        &[],                                          // missing header
        &[("X-Deadline-Ms", "0")],                    // zero is "unset", not "already dead"
        &[("X-Deadline-Ms", "soon")],                 // garbage falls back to the default
        &[("X-Deadline-Ms", "18446744073709551615")], // u64::MAX saturates to "no deadline"
    ];
    for headers in cases {
        let ok =
            http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&body), headers).expect("still a response");
        assert_eq!(ok.status, 200, "headers {headers:?}: {}", ok.body);
        let (_, scores) = parse_score_response(&ok.body).expect("body");
        assert_eq!(scores[0].to_bits(), expected[0].to_bits(), "headers {headers:?}");
    }
    server.shutdown();

    // With a server default, the same unset spellings inherit it: park the
    // queue past the 5ms budget and every one is shed with 504, while an
    // explicit generous header on the same connection overrides the default
    // and still scores.
    let (server, _) = trained_server(ServerConfig {
        default_deadline_ms: Some(5),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    server.pause_intake();
    const UNSET_SPELLINGS: [&[(&str, &str)]; 3] = [&[], &[("X-Deadline-Ms", "0")], &[("X-Deadline-Ms", "soon")]];
    let handles: Vec<_> = UNSET_SPELLINGS
        .iter()
        .copied()
        .map(|headers| {
            let body = body.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&body), headers)
                    .expect("still a response")
            })
        })
        .collect();
    let generous = {
        let body = body.clone();
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            http_roundtrip_with_headers(
                &mut stream,
                "POST",
                "/score",
                Some(&body),
                &[("X-Deadline-Ms", "60000")],
            )
            .expect("still a response")
        })
    };
    while server.queued_jobs() < 4 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.resume_intake();
    for handle in handles {
        let response = handle.join().expect("join");
        assert_eq!(response.status, 504, "{}", response.body);
        assert!(response.body.contains("deadline"), "{}", response.body);
    }
    let response = generous.join().expect("join");
    assert_eq!(response.status, 200, "{}", response.body);
    server.shutdown();
}

#[test]
fn retry_backoff_stays_within_the_capped_exponential_envelope() {
    // The bundled client's backoff schedule is deterministic per
    // (seed, attempt) and every delay sits in [cap/2, cap] where cap is the
    // capped exponential — bounded jitter, no thundering herd, no runaway.
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff_ms: 5,
        max_backoff_ms: 80,
        seed: 7,
    };
    for attempt in 0..8u32 {
        let cap = (policy.base_backoff_ms << attempt.min(31))
            .min(policy.max_backoff_ms)
            .max(1);
        let floor = cap / 2;
        let delay = policy.backoff_ms(attempt);
        assert!(
            delay >= floor && delay <= cap,
            "attempt {attempt}: {delay}ms outside [{floor}, {cap}]"
        );
        assert_eq!(delay, policy.backoff_ms(attempt), "backoff must be deterministic");
    }
    // Different seeds de-synchronize concurrent clients: at least one
    // attempt draws a different jitter.
    let other = RetryPolicy { seed: 8, ..policy };
    assert!(
        (0..8).any(|a| policy.backoff_ms(a) != other.backoff_ms(a)),
        "two seeds produced identical schedules"
    );
}

#[test]
fn batcher_panic_is_a_500_then_the_recovered_server_scores_bit_exactly() {
    // A panic inside the batcher poisons nothing the handlers can see: the
    // in-flight request gets a deterministic 500 on a connection that stays
    // open, the supervisor restarts the batcher, and the very next request
    // on the SAME connection scores bit-identically to the in-process
    // engine. The bundled retry client turns that 500 → 200 sequence into
    // one successful call.
    let plan = Arc::new(FaultPlan::parse("batcher_panic@0,2").expect("spec"));
    let (server, model) = trained_server(ServerConfig {
        fault_plan: Some(Arc::clone(&plan)),
        metrics_enabled: true,
        ..ServerConfig::default()
    });
    let expected = ScoringEngine::new(model).score_batch(&serving_requests(1));
    let body = serde::json::to_string(&serving_requests(1)[0]);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let failed = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("still a response");
    assert_eq!(failed.status, 500, "{}", failed.body);
    assert!(failed.body.contains("panic"), "{}", failed.body);

    let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("connection survived the panic");
    assert_eq!(ok.status, 200, "{}", ok.body);
    let (_, scores) = parse_score_response(&ok.body).expect("body");
    assert_eq!(
        scores[0].to_bits(),
        expected[0].to_bits(),
        "restart must not drift scores"
    );

    // The second injected panic (occurrence 2) is absorbed by the retry
    // client without the caller ever seeing the 500.
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 1,
        max_backoff_ms: 4,
        seed: 1,
    };
    let (retried, attempts) =
        er_serve::server::http_roundtrip_with_retry(server.local_addr(), "POST", "/score", Some(&body), &[], &policy)
            .expect("retry client");
    assert_eq!(retried.status, 200, "{}", retried.body);
    assert_eq!(
        attempts, 2,
        "initial try plus exactly one retry after the injected panic"
    );
    let (_, scores) = parse_score_response(&retried.body).expect("body");
    assert_eq!(scores[0].to_bits(), expected[0].to_bits());

    // Both panics and both restarts are attributed in the exposition.
    let scrape = http_roundtrip(&mut stream, "GET", "/metrics", None).expect("scrape");
    let samples = parse_exposition(&scrape.body).expect("exposition parses");
    let role_total = |name: &str| {
        samples
            .iter()
            .filter(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "role" && v == "batcher"))
            .map(|s| s.value)
            .sum::<f64>()
    };
    assert_eq!(role_total("er_serve_worker_panics_total"), 2.0);
    assert_eq!(role_total("er_serve_worker_restarts_total"), 2.0);
    server.shutdown();
}
