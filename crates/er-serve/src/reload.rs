//! Versioned artifact hot-reload: roll out a retrained model without
//! draining traffic.
//!
//! A [`ReloadableExecutor`] owns the serving state behind an
//! `RwLock<Arc<VersionedExecutor>>`. Request paths take a cheap
//! [`ReloadableExecutor::snapshot`] (one `Arc` clone under a read lock) and
//! score an entire response through that snapshot, so every response is
//! attributable to *exactly one* artifact version — a batch can never mix
//! scores from two models. [`ReloadableExecutor::reload_artifact`] runs the
//! full promotion pipeline before anything becomes visible to traffic:
//!
//! 1. **validate** — the candidate model must pass
//!    [`learnrisk_core::LearnRiskModel::validate`] (artifacts loaded from disk have already
//!    been validated by [`ModelArtifact::load`]; in-memory candidates are
//!    validated here);
//! 2. **verify round trip** — the candidate is re-serialized, re-parsed and
//!    re-compiled, and both engines must score bit-identically on a probe
//!    set [`synthesize_probes`] derives from the candidate's own rule set
//!    (threshold-adjacent rows, so the check never passes vacuously), plus
//!    any caller-supplied traffic sample;
//! 3. **atomic swap** — a *fresh* [`ShardedExecutor`] (new engine, new
//!    score cache — cached scores of the old model must never answer for the
//!    new one, but the same persistent worker pool: reloads never respawn
//!    threads) replaces the current `Arc` under the write lock, tagged with
//!    the next version number.
//!
//! A failed reload leaves the serving state untouched: traffic keeps scoring
//! through the old version and the error is reported to the operator.

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::engine::{ScoreRequest, ScoringEngine};
use crate::executor::{ServeConfig, ShardedExecutor};
use crate::fault::{FaultKind, FaultPlan};
use crate::metrics::MetricsRegistry;
use crate::trace::{SpanSet, Stage};
use er_pool::WorkerPool;
use er_rulegen::CmpOp;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Why a candidate artifact was refused promotion. The serving state is
/// untouched on any of these — the old version keeps taking traffic.
#[derive(Debug)]
pub enum ReloadError {
    /// The candidate could not be read, parsed or validated.
    Artifact(ArtifactError),
    /// The candidate failed the persistence round trip: the engine compiled
    /// from the re-serialized artifact diverged from the engine compiled from
    /// the candidate itself.
    RoundTrip {
        /// Index of the first diverging probe request.
        probe_index: usize,
        /// Score from the candidate engine.
        candidate: f64,
        /// Score from the re-serialized/re-parsed engine.
        round_tripped: f64,
    },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::Artifact(e) => write!(f, "reload refused: {e}"),
            ReloadError::RoundTrip {
                probe_index,
                candidate,
                round_tripped,
            } => write!(
                f,
                "reload refused: candidate artifact is not persistence-stable \
                 (probe {probe_index} scored {candidate} before and {round_tripped} after a \
                 serialize/parse round trip)"
            ),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Artifact(e) => Some(e),
            ReloadError::RoundTrip { .. } => None,
        }
    }
}

impl From<ArtifactError> for ReloadError {
    fn from(e: ArtifactError) -> Self {
        ReloadError::Artifact(e)
    }
}

/// One immutable serving generation: an executor plus the version tag every
/// score computed through it carries.
pub struct VersionedExecutor {
    /// Monotonically increasing artifact version (1 is the boot engine;
    /// every successful reload increments it).
    pub version: u64,
    /// Provenance of the model behind this version (the artifact's
    /// `producer` field, or `"boot"` for the engine the process started on).
    pub producer: String,
    /// Content digest of the trained model this generation serves
    /// ([`crate::artifact::model_digest`]): equal parameters ⇒ equal digest,
    /// independent of producer tag or file path. The gateway uses it to
    /// attest which artifact each backend is actually running.
    pub digest: String,
    executor: ShardedExecutor,
}

impl fmt::Debug for VersionedExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionedExecutor")
            .field("version", &self.version)
            .field("producer", &self.producer)
            .finish_non_exhaustive()
    }
}

impl VersionedExecutor {
    /// The executor serving this generation.
    pub fn executor(&self) -> &ShardedExecutor {
        &self.executor
    }

    /// The engine behind this generation's executor.
    pub fn engine(&self) -> &ScoringEngine {
        self.executor.engine()
    }
}

/// The hot-reloadable serving state: see the [module docs](self).
///
/// # Examples
///
/// ```
/// use er_base::Label;
/// use er_rulegen::{CmpOp, Condition, Rule};
/// use er_serve::{ReloadableExecutor, ScoringEngine, ServeConfig};
/// use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};
///
/// let feature_set = RiskFeatureSet {
///     rules: vec![Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 10, 0.9)],
///     metrics: vec![],
///     expectations: vec![0.1],
///     support: vec![10],
/// };
/// let model = LearnRiskModel::new(feature_set, RiskModelConfig::default());
/// let executor = ReloadableExecutor::new(ScoringEngine::new(model), ServeConfig::default().with_threads(1));
///
/// // Boots at version 1; every successful reload increments it.
/// assert_eq!(executor.version(), 1);
///
/// // Batches score through one pinned generation, so every score in a
/// // batch is attributable to exactly one version even mid-reload.
/// let generation = executor.snapshot();
/// assert_eq!(generation.version, 1);
/// assert_eq!(generation.producer, "boot");
/// ```
pub struct ReloadableExecutor {
    current: RwLock<Arc<VersionedExecutor>>,
    /// Serializes reloads so two concurrent promotions cannot race the
    /// version counter (scoring traffic only takes the read lock).
    reload_lock: Mutex<()>,
    config: ServeConfig,
    /// Attached by [`crate::ScoreServer`] so reload outcomes land in the
    /// same registry `GET /metrics` scrapes.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
    /// Fault-injection plan propagated onto every generation's executor and
    /// consulted by the reload path (`artifact_read_torn`,
    /// `reload_validate_fail`).
    fault: Mutex<Option<Arc<FaultPlan>>>,
    /// One persistent set of scoring lanes shared by every generation:
    /// a reload swaps the engine and the cache, never the threads.
    pool: Arc<WorkerPool>,
}

impl ReloadableExecutor {
    /// Boots serving state at version 1 from an in-memory engine.
    pub fn new(engine: ScoringEngine, config: ServeConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.threads.max(1)));
        let digest = crate::artifact::model_digest(engine.model());
        Self {
            current: RwLock::new(Arc::new(VersionedExecutor {
                version: 1,
                producer: "boot".to_string(),
                digest,
                executor: ShardedExecutor::with_pool(engine, config, Arc::clone(&pool)),
            })),
            reload_lock: Mutex::new(()),
            config,
            metrics: Mutex::new(None),
            fault: Mutex::new(None),
            pool,
        }
    }

    /// Boots serving state at version 1 from a loaded artifact.
    pub fn from_artifact(artifact: ModelArtifact, config: ServeConfig) -> Result<Self, ReloadError> {
        artifact.model.validate().map_err(ArtifactError::InvalidModel)?;
        let digest = artifact.digest();
        let ModelArtifact { producer, model, .. } = artifact;
        let pool = Arc::new(WorkerPool::new(config.threads.max(1)));
        Ok(Self {
            current: RwLock::new(Arc::new(VersionedExecutor {
                version: 1,
                producer,
                digest,
                executor: ShardedExecutor::with_pool(ScoringEngine::new(model), config, Arc::clone(&pool)),
            })),
            reload_lock: Mutex::new(()),
            config,
            metrics: Mutex::new(None),
            fault: Mutex::new(None),
            pool,
        })
    }

    /// Routes reload observations (`er_serve_reloads_total{outcome}`, the
    /// `er_serve_model_version` gauge) into `registry`. Called by
    /// [`crate::ScoreServer::start`] when metrics are enabled; reloads
    /// before attachment are simply unobserved.
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        *self.metrics.lock().unwrap_or_else(|e| e.into_inner()) = Some(registry);
    }

    /// Attaches a fault-injection plan: the current generation's executor
    /// picks it up immediately, every future generation inherits it, and the
    /// reload path consults it for `artifact_read_torn` /
    /// `reload_validate_fail`.
    pub fn attach_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        self.snapshot().executor().set_fault_plan(plan.clone());
        *self.fault.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The executor configuration every generation is built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The current serving generation. The returned `Arc` stays valid (and
    /// keeps scoring consistently) across concurrent reloads — score a whole
    /// response through one snapshot and its `version` tag is exact.
    pub fn snapshot(&self) -> Arc<VersionedExecutor> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current artifact version.
    pub fn version(&self) -> u64 {
        self.current.read().unwrap_or_else(|e| e.into_inner()).version
    }

    /// Promotes a candidate artifact: validate → verify the persistence
    /// round trip → atomically swap in a fresh executor. Returns the new
    /// version.
    ///
    /// The round trip is always verified on [`synthesize_probes`] — rows
    /// built to the candidate's own metric-row length, so the check can
    /// never pass vacuously — and *additionally* on any caller-supplied
    /// `probes` (e.g. sampled live traffic). On error the current version
    /// keeps serving, untouched.
    pub fn reload_artifact(&self, artifact: ModelArtifact, probes: &[ScoreRequest]) -> Result<u64, ReloadError> {
        self.reload_artifact_observed(artifact, probes, None)
    }

    /// [`Self::reload_artifact`] that additionally records the promotion
    /// pipeline's `validate → probe → swap` stages into `spans` (the `load`
    /// stage belongs to [`Self::reload_from_path_traced`], which times the
    /// disk read). Spans for stages that ran are recorded even when a later
    /// stage refuses the candidate.
    pub fn reload_artifact_traced(
        &self,
        artifact: ModelArtifact,
        probes: &[ScoreRequest],
        spans: &mut SpanSet,
    ) -> Result<u64, ReloadError> {
        self.reload_artifact_observed(artifact, probes, Some(spans))
    }

    fn reload_artifact_observed(
        &self,
        artifact: ModelArtifact,
        probes: &[ScoreRequest],
        spans: Option<&mut SpanSet>,
    ) -> Result<u64, ReloadError> {
        let result = self.reload_artifact_inner(artifact, probes, spans);
        if let Some(metrics) = self.metrics.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            let outcome = if result.is_ok() { "applied" } else { "refused" };
            metrics.reloads.with(&[("outcome", outcome)]).inc();
            if let Ok(version) = &result {
                metrics.model_version.set(*version as f64);
            }
        }
        result
    }

    fn reload_artifact_inner(
        &self,
        artifact: ModelArtifact,
        probes: &[ScoreRequest],
        mut spans: Option<&mut SpanSet>,
    ) -> Result<u64, ReloadError> {
        let stage = |spans: &mut Option<&mut SpanSet>, s: Stage, start: Instant| {
            if let Some(spans) = spans.as_mut() {
                spans.record(s, start, Instant::now());
            }
        };
        let fault = self.fault_plan();
        let start = Instant::now();
        let validated = if fault.as_deref().is_some_and(|p| p.fires(FaultKind::ReloadValidateFail)) {
            Err(ArtifactError::InvalidModel(format!(
                "injected {}",
                FaultKind::ReloadValidateFail
            )))
        } else {
            artifact.model.validate().map_err(ArtifactError::InvalidModel)
        };
        stage(&mut spans, Stage::Validate, start);
        validated?;
        let start = Instant::now();
        let candidate = ScoringEngine::new(artifact.model.clone());
        let synthesized = synthesize_probes(&candidate);
        let verified = verify_candidate_round_trip(&artifact, &candidate, &synthesized).and_then(|()| {
            if probes.is_empty() {
                Ok(())
            } else {
                verify_candidate_round_trip(&artifact, &candidate, probes)
            }
        });
        stage(&mut spans, Stage::Probe, start);
        verified?;
        let start = Instant::now();
        let _guard = self.reload_lock.lock().unwrap_or_else(|e| e.into_inner());
        let next_version = self.version() + 1;
        // A fresh executor: the score cache is keyed on pair id only, so
        // entries computed by the old model must not survive the swap. The
        // worker pool carries over — reloads never respawn threads.
        let executor = ShardedExecutor::with_pool(candidate, self.config, Arc::clone(&self.pool));
        executor.set_fault_plan(fault);
        let next = Arc::new(VersionedExecutor {
            version: next_version,
            producer: artifact.producer,
            digest: crate::artifact::model_digest(&artifact.model),
            executor,
        });
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = next;
        stage(&mut spans, Stage::Swap, start);
        Ok(next_version)
    }

    /// [`Self::reload_artifact`] from a file path (the operator-facing form
    /// the HTTP `POST /reload` endpoint calls).
    pub fn reload_from_path(&self, path: impl AsRef<Path>, probes: &[ScoreRequest]) -> Result<u64, ReloadError> {
        let artifact = self.load_artifact(path.as_ref())?;
        self.reload_artifact(artifact, probes)
    }

    /// [`ModelArtifact::load`] behind the `artifact_read_torn` fault point:
    /// when the plan fires, the loader sees the file as a concurrent writer
    /// would mid-write — truncated half-way — and must refuse it exactly
    /// like any other malformed artifact, leaving the old version serving.
    fn load_artifact(&self, path: &Path) -> Result<ModelArtifact, ArtifactError> {
        if self
            .fault_plan()
            .as_deref()
            .is_some_and(|p| p.fires(FaultKind::ArtifactReadTorn))
        {
            let text = std::fs::read_to_string(path).map_err(ArtifactError::Io)?;
            let mut cut = text.len() / 2;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            return ModelArtifact::from_json(&text[..cut]);
        }
        ModelArtifact::load(path)
    }

    /// [`Self::reload_from_path`] that records the full
    /// `load → validate → probe → swap` stage timeline into `spans`, so a
    /// traced `POST /reload` can attribute promotion latency the same way
    /// `/score` traces attribute request latency.
    pub fn reload_from_path_traced(
        &self,
        path: impl AsRef<Path>,
        probes: &[ScoreRequest],
        spans: &mut SpanSet,
    ) -> Result<u64, ReloadError> {
        let start = Instant::now();
        let loaded = self.load_artifact(path.as_ref());
        spans.record(Stage::Load, start, Instant::now());
        self.reload_artifact_observed(loaded?, probes, Some(spans))
    }
}

impl fmt::Debug for ReloadableExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReloadableExecutor")
            .field("version", &self.version())
            .field("config", &self.config)
            .finish()
    }
}

/// Proves the candidate artifact is persistence-stable: serialize → parse →
/// compile must reproduce the candidate engine's probe scores bit-exactly.
/// This is the same attestation `serve_bench` performs offline, run at
/// promotion time so a serialization bug can never reach traffic.
fn verify_candidate_round_trip(
    artifact: &ModelArtifact,
    candidate: &ScoringEngine,
    probes: &[ScoreRequest],
) -> Result<(), ReloadError> {
    let reparsed = ModelArtifact::from_json(&artifact.to_json())?;
    let round_tripped = ScoringEngine::new(reparsed.model);
    let mut candidate_scratch = candidate.scratch();
    let mut round_scratch = round_tripped.scratch();
    for (probe_index, probe) in probes.iter().enumerate() {
        // A caller-supplied probe the rule set cannot score (e.g. a traffic
        // sample whose row is shorter than the new model requires) is not a
        // candidate defect — skip it. Vacuous passes are impossible because
        // the promotion path always verifies the synthesized probe set,
        // whose rows are built to the candidate's own required length.
        let (Ok(a), Ok(b)) = (
            candidate.try_score_request(probe, &mut candidate_scratch),
            round_tripped.try_score_request(probe, &mut round_scratch),
        ) else {
            continue;
        };
        if a.to_bits() != b.to_bits() {
            return Err(ReloadError::RoundTrip {
                probe_index,
                candidate: a,
                round_tripped: b,
            });
        }
    }
    Ok(())
}

/// Derives a deterministic probe set from an engine's own rule set: for
/// every rule condition, rows that sit just on either side of its threshold
/// (where a round-trip perturbation of the threshold would flip rule
/// coverage and therefore the score), crossed with classifier outputs on
/// both sides of the decision boundary.
pub fn synthesize_probes(engine: &ScoringEngine) -> Vec<ScoreRequest> {
    let row_len = engine.required_row_len();
    let rules = &engine.model().features.rules;
    let mut probes = Vec::new();
    let mut pair_id = 0u64;
    let mut push = |metric_row: Vec<f64>, probes: &mut Vec<ScoreRequest>| {
        for classifier_output in [0.08, 0.93] {
            probes.push(ScoreRequest {
                pair_id,
                metric_row: metric_row.clone(),
                classifier_output,
                machine_says_match: classifier_output >= 0.5,
            });
            pair_id += 1;
        }
    };
    for rule in rules {
        // A row satisfying every condition of the rule (fires it), and one
        // nudged across the first condition's threshold (does not).
        let mut firing = vec![0.5f64; row_len];
        for c in &rule.conditions {
            firing[c.metric_index] = match c.op {
                CmpOp::Gt => c.threshold + 1e-9,
                CmpOp::Le => c.threshold,
            };
        }
        let mut missing = firing.clone();
        if let Some(c) = rule.conditions.first() {
            missing[c.metric_index] = match c.op {
                CmpOp::Gt => c.threshold,
                CmpOp::Le => c.threshold + 1e-9,
            };
        }
        push(firing, &mut probes);
        push(missing, &mut probes);
    }
    // A few quasi-random rows for coverage away from the thresholds.
    for i in 0..8u64 {
        let row: Vec<f64> = (0..row_len)
            .map(|j| ((i as f64) * 0.618_033_988_749_895 + (j as f64) * 0.37).fract())
            .collect();
        push(row, &mut probes);
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::Label;
    use er_rulegen::{Condition, Rule};
    use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};

    fn model(weight0: f64) -> LearnRiskModel {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.97),
            Rule::new(vec![Condition::new(1, CmpOp::Le, 0.3)], Label::Equivalent, 15, 0.93),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.92],
            support: vec![20, 15],
        };
        let mut m = LearnRiskModel::new(fs, RiskModelConfig::default());
        m.rule_weights = vec![weight0, 0.7];
        m
    }

    fn request(pair_id: u64, x: f64) -> ScoreRequest {
        ScoreRequest {
            pair_id,
            metric_row: vec![x, 1.0 - x],
            classifier_output: x,
            machine_says_match: x >= 0.5,
        }
    }

    #[test]
    fn reload_swaps_version_and_scores_atomically() {
        let handle = ReloadableExecutor::new(ScoringEngine::new(model(1.3)), ServeConfig::default().with_threads(1));
        assert_eq!(handle.version(), 1);
        let requests: Vec<ScoreRequest> = (0..10).map(|i| request(i, i as f64 / 10.0)).collect();
        let before = handle.snapshot();
        let old_scores = before.executor().score_batch(&requests);

        let new_version = handle
            .reload_artifact(ModelArtifact::new(model(2.6)), &requests)
            .expect("reload");
        assert_eq!(new_version, 2);
        assert_eq!(handle.version(), 2);

        // The pre-reload snapshot still scores through the old model…
        let old_again = before.executor().score_batch(&requests);
        assert_eq!(
            old_scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            old_again.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        // …while a fresh snapshot matches a fresh engine built from the new
        // artifact, bit for bit.
        let expected = ScoringEngine::new(model(2.6)).score_batch(&requests);
        let served = handle.snapshot().executor().score_batch(&requests);
        assert_eq!(
            served.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reload_invalidates_the_score_cache() {
        // Same pair id, different model: a stale cached score answering for
        // the new version would be a correctness bug, not a perf feature.
        let config = ServeConfig {
            threads: 1,
            cache_capacity: 64,
            cache_shards: 2,
        };
        let handle = ReloadableExecutor::new(ScoringEngine::new(model(1.3)), config);
        let req = request(7, 0.8);
        let old = handle.snapshot().executor().score_batch(std::slice::from_ref(&req))[0];
        handle
            .reload_artifact(ModelArtifact::new(model(2.6)), &[])
            .expect("reload");
        let new = handle.snapshot().executor().score_batch(std::slice::from_ref(&req))[0];
        let expected = ScoringEngine::new(model(2.6)).score_batch(std::slice::from_ref(&req))[0];
        assert_eq!(new.to_bits(), expected.to_bits());
        assert_ne!(old.to_bits(), new.to_bits(), "weight change must move this score");
    }

    #[test]
    fn invalid_candidates_are_refused_and_serving_is_untouched() {
        let handle = ReloadableExecutor::new(ScoringEngine::new(model(1.3)), ServeConfig::default().with_threads(1));
        let mut bad = ModelArtifact::new(model(2.6));
        bad.model.rule_weights.pop();
        let err = handle.reload_artifact(bad, &[]).expect_err("must refuse");
        assert!(
            matches!(err, ReloadError::Artifact(ArtifactError::InvalidModel(_))),
            "{err}"
        );
        assert!(err.to_string().contains("reload refused"));
        assert_eq!(handle.version(), 1, "failed reload must not advance the version");
    }

    #[test]
    fn synthesized_probes_cover_every_rule() {
        let engine = ScoringEngine::new(model(1.3));
        let probes = synthesize_probes(&engine);
        assert!(!probes.is_empty());
        let mut scratch = engine.scratch();
        let mut fired = vec![false; engine.index().rule_count()];
        for probe in &probes {
            assert_eq!(probe.metric_row.len(), engine.index().required_row_len());
            engine.try_score_request(probe, &mut scratch).expect("probe scores");
            for &r in engine.index().matching_rules(&probe.metric_row).iter() {
                fired[r as usize] = true;
            }
        }
        assert!(
            fired.iter().all(|&f| f),
            "every rule must fire on some probe: {fired:?}"
        );
    }

    #[test]
    fn reload_outcomes_are_counted_once_metrics_are_attached() {
        let handle = ReloadableExecutor::new(ScoringEngine::new(model(1.3)), ServeConfig::default().with_threads(1));
        let registry = Arc::new(MetricsRegistry::new());
        handle.attach_metrics(Arc::clone(&registry));
        handle
            .reload_artifact(ModelArtifact::new(model(2.6)), &[])
            .expect("reload");
        let mut bad = ModelArtifact::new(model(2.6));
        bad.model.rule_weights.pop();
        handle.reload_artifact(bad, &[]).expect_err("must refuse");
        assert_eq!(registry.reloads.with(&[("outcome", "applied")]).get(), 1);
        assert_eq!(registry.reloads.with(&[("outcome", "refused")]).get(), 1);
        assert_eq!(registry.model_version.get(), 2.0, "gauge tracks the applied version");
    }

    #[test]
    fn torn_artifact_reads_are_refused_and_the_old_version_keeps_serving() {
        let dir = std::env::temp_dir().join(format!("er-serve-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("candidate.json");
        ModelArtifact::new(model(2.6)).save(&path).expect("save");

        let handle = ReloadableExecutor::new(ScoringEngine::new(model(1.3)), ServeConfig::default().with_threads(1));
        let plan = Arc::new(FaultPlan::parse("artifact_read_torn@0").expect("spec"));
        handle.attach_fault_plan(Some(Arc::clone(&plan)));

        // First reload sees the half-written file and must refuse it.
        let err = handle.reload_from_path(&path, &[]).expect_err("torn read refused");
        assert!(
            matches!(err, ReloadError::Artifact(ArtifactError::Malformed(_))),
            "{err}"
        );
        assert_eq!(handle.version(), 1, "old version keeps serving through the torn read");
        assert_eq!(plan.fired(FaultKind::ArtifactReadTorn), 1);

        // The fault fired once; the retry reads the intact file and applies.
        let version = handle.reload_from_path(&path, &[]).expect("clean retry applies");
        assert_eq!(version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_validate_failures_refuse_the_reload() {
        let handle = ReloadableExecutor::new(ScoringEngine::new(model(1.3)), ServeConfig::default().with_threads(1));
        handle.attach_fault_plan(Some(Arc::new(
            FaultPlan::parse("reload_validate_fail@0").expect("spec"),
        )));
        let err = handle
            .reload_artifact(ModelArtifact::new(model(2.6)), &[])
            .expect_err("injected validate failure");
        assert!(err.to_string().contains("reload_validate_fail"), "{err}");
        assert_eq!(handle.version(), 1);
        // Generations built after the plan attaches inherit it.
        handle
            .reload_artifact(ModelArtifact::new(model(2.6)), &[])
            .expect("fault exhausted");
        assert_eq!(handle.version(), 2);
    }

    #[test]
    fn from_artifact_boots_with_the_artifact_producer() {
        let artifact = ModelArtifact::new(model(1.3));
        let producer = artifact.producer.clone();
        let handle = ReloadableExecutor::from_artifact(artifact, ServeConfig::default().with_threads(1)).expect("boot");
        let snap = handle.snapshot();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.producer, producer);
    }
}
