//! One-sided decision-tree construction (Algorithm 1 of the paper).
//!
//! The builder searches, at every node, over all basic metrics and two class
//! weightings (unweighted and match-boosted) for the split minimizing the
//! one-sided Gini index (Eq. 7).  The pure side of a split becomes a rule
//! candidate when its (unweighted) impurity does not exceed the threshold; the
//! impure side is recursed into.  Exploring every `(metric, weight)` branch at
//! every node reproduces the paper's forest of one-sided trees; the
//! `beam_width` knob optionally restricts the branching to the best few splits
//! per node so that rule generation stays fast on large training sets.

use crate::condition::{CmpOp, Condition};
use crate::gini::{one_sided_gini, one_sided_prefers_left, ClassCounts};
use crate::rule::{dedup_rules, Rule};
use er_base::Label;
use serde::{Deserialize, Serialize};

/// Configuration of the one-sided tree builder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OneSidedTreeConfig {
    /// Impurity threshold τ: a leaf qualifies as a rule when its minority
    /// fraction is at most τ.
    pub impurity_threshold: f64,
    /// Maximum tree depth h (number of conditions per rule).
    pub max_depth: usize,
    /// Minimum number of training pairs in an extracted subset.
    pub min_leaf_size: usize,
    /// λ of the one-sided Gini index (small prefers purity over size).
    pub lambda: f64,
    /// Class weight applied to matching pairs when searching for matching
    /// rules (the paper uses 1000 to overcome class imbalance).
    pub match_class_weight: f64,
    /// Number of candidate splits explored per node; `usize::MAX` reproduces
    /// the exhaustive search of Algorithm 1.
    pub beam_width: usize,
}

impl Default for OneSidedTreeConfig {
    fn default() -> Self {
        Self {
            impurity_threshold: 0.05,
            max_depth: 3,
            min_leaf_size: 5,
            lambda: 0.2,
            match_class_weight: 1000.0,
            beam_width: 6,
        }
    }
}

/// Builder state for one-sided rule generation.
pub struct OneSidedTreeBuilder<'a> {
    /// Row-major basic-metric matrix of the training pairs.
    metrics: &'a [Vec<f64>],
    /// Ground-truth labels aligned with `metrics`.
    labels: &'a [Label],
    config: OneSidedTreeConfig,
}

/// A candidate split of a node.
#[derive(Debug, Clone, Copy)]
struct Split {
    condition: Condition,
    score: f64,
}

impl<'a> OneSidedTreeBuilder<'a> {
    /// Creates a builder over a metric matrix and labels.
    pub fn new(metrics: &'a [Vec<f64>], labels: &'a [Label], config: OneSidedTreeConfig) -> Self {
        assert_eq!(metrics.len(), labels.len(), "metrics and labels must align");
        Self {
            metrics,
            labels,
            config,
        }
    }

    /// Runs rule generation (Algorithm 1) and returns the deduplicated rules.
    pub fn generate(&self) -> Vec<Rule> {
        if self.metrics.is_empty() {
            return Vec::new();
        }
        let all: Vec<u32> = (0..self.metrics.len() as u32).collect();
        let mut rules = Vec::new();
        self.construct(&all, 0, &mut Vec::new(), &mut rules);
        dedup_rules(rules)
    }

    /// Class counts of a subset, optionally weighting matches.
    fn counts(&self, subset: &[u32], match_weight: f64) -> ClassCounts {
        let mut c = ClassCounts::default();
        for &i in subset {
            if self.labels[i as usize].is_match() {
                c.matches += match_weight;
            } else {
                c.unmatches += 1.0;
            }
        }
        c
    }

    /// Unweighted counts (used for purity checks and rule statistics).
    fn raw_counts(&self, subset: &[u32]) -> ClassCounts {
        self.counts(subset, 1.0)
    }

    /// Finds the best threshold for one metric under one class weighting.
    fn best_split_for_metric(&self, subset: &[u32], metric: usize, match_weight: f64) -> Option<Split> {
        // Sort subset by the metric value.
        let mut order: Vec<u32> = subset.to_vec();
        order.sort_by(|&a, &b| {
            self.metrics[a as usize][metric]
                .partial_cmp(&self.metrics[b as usize][metric])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let total = self.counts(subset, match_weight);
        if total.total() <= 0.0 {
            return None;
        }

        let mut left = ClassCounts::default();
        let mut best: Option<Split> = None;
        for w in 0..order.len().saturating_sub(1) {
            let i = order[w] as usize;
            let weight = if self.labels[i].is_match() { match_weight } else { 1.0 };
            if self.labels[i].is_match() {
                left.matches += weight;
            } else {
                left.unmatches += 1.0;
            }
            let v = self.metrics[i][metric];
            let next = self.metrics[order[w + 1] as usize][metric];
            if next <= v + 1e-12 {
                continue; // cannot split between equal values
            }
            // Enforce the minimum subset size on the raw (unweighted) counts.
            let left_n = w + 1;
            let right_n = order.len() - left_n;
            if left_n < self.config.min_leaf_size || right_n < self.config.min_leaf_size {
                continue;
            }
            let right = ClassCounts::new(total.matches - left.matches, total.unmatches - left.unmatches);
            let score = one_sided_gini(left, right, self.config.lambda);
            let threshold = (v + next) / 2.0;
            if best.is_none_or(|b| score < b.score) {
                best = Some(Split {
                    condition: Condition::new(metric, CmpOp::Le, threshold),
                    score,
                });
            }
        }
        best
    }

    /// All candidate splits of a node, ranked by one-sided Gini.
    fn candidate_splits(&self, subset: &[u32]) -> Vec<Split> {
        let n_metrics = self.metrics[0].len();
        let mut splits = Vec::with_capacity(n_metrics * 2);
        for metric in 0..n_metrics {
            for &weight in &[1.0, self.config.match_class_weight] {
                if let Some(split) = self.best_split_for_metric(subset, metric, weight) {
                    splits.push(split);
                }
            }
        }
        splits.sort_by(|a, b| a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal));
        splits.truncate(self.config.beam_width);
        splits
    }

    /// Emits a rule for a subset if it is pure and large enough.
    fn try_emit(&self, subset: &[u32], path: &[Condition], rules: &mut Vec<Rule>) {
        if subset.len() < self.config.min_leaf_size || path.is_empty() {
            return;
        }
        let counts = self.raw_counts(subset);
        if counts.minority_fraction() <= self.config.impurity_threshold {
            let target = Label::from_bool(counts.majority_is_match());
            let purity = 1.0 - counts.minority_fraction();
            rules.push(Rule::new(path.to_vec(), target, subset.len(), purity));
        }
    }

    /// Recursive construction (the `ConstructTree` procedure of Algorithm 1).
    fn construct(&self, subset: &[u32], depth: usize, path: &mut Vec<Condition>, rules: &mut Vec<Rule>) {
        if subset.len() < 2 * self.config.min_leaf_size {
            self.try_emit(subset, path, rules);
            return;
        }
        if depth >= self.config.max_depth {
            self.try_emit(subset, path, rules);
            return;
        }
        let splits = self.candidate_splits(subset);
        if splits.is_empty() {
            self.try_emit(subset, path, rules);
            return;
        }
        for split in splits {
            let cond_le = split.condition;
            let cond_gt = cond_le.negated();
            let (le_side, gt_side): (Vec<u32>, Vec<u32>) = subset
                .iter()
                .partition(|&&i| cond_le.matches(&self.metrics[i as usize]));
            if le_side.len() < self.config.min_leaf_size || gt_side.len() < self.config.min_leaf_size {
                continue;
            }
            let le_counts = self.raw_counts(&le_side);
            let gt_counts = self.raw_counts(&gt_side);
            let tau = self.config.impurity_threshold;
            let (le_imp, gt_imp) = (le_counts.minority_fraction(), gt_counts.minority_fraction());

            // Qualified (pure) sides become rules.
            if le_imp <= tau {
                path.push(cond_le);
                self.try_emit(&le_side, path, rules);
                path.pop();
            }
            if gt_imp <= tau {
                path.push(cond_gt);
                self.try_emit(&gt_side, path, rules);
                path.pop();
            }

            // Stop recursion when both sides are pure or both are impure
            // beyond saving (τ_min >= τ handled by pure-emission above);
            // otherwise recurse into the impure side (Algorithm 1, lines 14-21).
            let recurse_into_le = le_imp > tau && gt_imp <= tau;
            let recurse_into_gt = gt_imp > tau && le_imp <= tau;
            // When both are impure, follow the side preferred by the one-sided
            // Gini so that the search keeps carving out the purer region.
            let both_impure = le_imp > tau && gt_imp > tau;
            let prefer_le = one_sided_prefers_left(le_counts, gt_counts, self.config.lambda);

            if recurse_into_le || (both_impure && prefer_le) {
                path.push(cond_le);
                self.construct(&le_side, depth + 1, path, rules);
                path.pop();
            }
            if recurse_into_gt || (both_impure && !prefer_le) {
                path.push(cond_gt);
                self.construct(&gt_side, depth + 1, path, rules);
                path.pop();
            }
        }
    }
}

/// Convenience wrapper: generates one-sided rules from a metric matrix.
pub fn generate_rules(metrics: &[Vec<f64>], labels: &[Label], config: OneSidedTreeConfig) -> Vec<Rule> {
    OneSidedTreeBuilder::new(metrics, labels, config).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;
    use rand::Rng;

    /// Synthetic metric matrix with two informative metrics:
    /// metric 0 ≈ title similarity (high ⇒ match), metric 1 = year mismatch
    /// indicator (1 ⇒ unmatch).  Metric 2 is noise.
    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Label>) {
        let mut rng = seeded(seed);
        let mut metrics = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let is_match = rng.gen_bool(0.3);
            let sim: f64 = if is_match {
                rng.gen_range(0.7..1.0)
            } else {
                rng.gen_range(0.0..0.65)
            };
            let year_diff = if is_match {
                if rng.gen_bool(0.05) {
                    1.0
                } else {
                    0.0
                }
            } else if rng.gen_bool(0.7) {
                1.0
            } else {
                0.0
            };
            let noise: f64 = rng.gen_range(0.0..1.0);
            metrics.push(vec![sim, year_diff, noise]);
            labels.push(Label::from_bool(is_match));
        }
        (metrics, labels)
    }

    #[test]
    fn generates_rules_for_both_classes() {
        let (metrics, labels) = synthetic(600, 1);
        let rules = generate_rules(&metrics, &labels, OneSidedTreeConfig::default());
        assert!(!rules.is_empty(), "no rules generated");
        assert!(rules.iter().any(|r| r.target == Label::Equivalent), "no matching rules");
        assert!(
            rules.iter().any(|r| r.target == Label::Inequivalent),
            "no unmatching rules"
        );
        // All rules satisfy the purity and support constraints.
        for r in &rules {
            assert!(r.purity >= 1.0 - OneSidedTreeConfig::default().impurity_threshold - 1e-9);
            assert!(r.support >= OneSidedTreeConfig::default().min_leaf_size);
            assert!(r.depth() <= OneSidedTreeConfig::default().max_depth);
        }
    }

    #[test]
    fn rules_pick_the_informative_metrics() {
        let (metrics, labels) = synthetic(600, 2);
        let rules = generate_rules(&metrics, &labels, OneSidedTreeConfig::default());
        // Single-condition rules should use metric 0 or 1, not the noise metric 2.
        let shallow: Vec<&Rule> = rules.iter().filter(|r| r.depth() == 1).collect();
        assert!(!shallow.is_empty(), "expected some single-condition rules");
        for r in shallow {
            assert_ne!(
                r.conditions[0].metric_index, 2,
                "noise metric used as a top rule: {r:?}"
            );
        }
    }

    #[test]
    fn rule_accuracy_holds_out_of_sample() {
        let (train_m, train_l) = synthetic(500, 3);
        let (test_m, test_l) = synthetic(500, 4);
        let rules = generate_rules(&train_m, &train_l, OneSidedTreeConfig::default());
        // On unseen data, each well-supported rule should remain predominantly
        // correct. Rules at the minimum support (5-6 pairs) can be pure by
        // chance on a noise metric; Algorithm 1 admits them and relies on risk
        // training (Eq. 13-17) to down-weight them, so they carry no
        // out-of-sample guarantee and are excluded here.
        let mut checked = 0;
        for r in rules.iter().filter(|r| r.support >= 15) {
            let covered: Vec<usize> = (0..test_m.len()).filter(|&i| r.covers(&test_m[i])).collect();
            if covered.len() < 10 {
                continue;
            }
            let correct = covered.iter().filter(|&&i| test_l[i] == r.target).count() as f64 / covered.len() as f64;
            assert!(correct > 0.75, "rule generalizes poorly ({correct:.2}): {r:?}");
            checked += 1;
        }
        assert!(
            checked > 0,
            "support/coverage filters left no rule to check — the test became vacuous"
        );
    }

    #[test]
    fn purity_threshold_filters_rules() {
        let (metrics, labels) = synthetic(400, 5);
        let strict = generate_rules(
            &metrics,
            &labels,
            OneSidedTreeConfig {
                impurity_threshold: 0.0,
                ..Default::default()
            },
        );
        let lenient = generate_rules(
            &metrics,
            &labels,
            OneSidedTreeConfig {
                impurity_threshold: 0.2,
                ..Default::default()
            },
        );
        assert!(lenient.len() >= strict.len());
        for r in &strict {
            assert!((r.purity - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let rules = generate_rules(&[], &[], OneSidedTreeConfig::default());
        assert!(rules.is_empty());
        // All-same-class data: no split can satisfy min size on both sides of
        // any threshold (values identical), so no rules — and no panic.
        let metrics = vec![vec![0.5]; 20];
        let labels = vec![Label::Equivalent; 20];
        let rules = generate_rules(&metrics, &labels, OneSidedTreeConfig::default());
        assert!(rules.iter().all(|r| r.target == Label::Equivalent));
    }

    #[test]
    fn min_leaf_size_is_respected() {
        let (metrics, labels) = synthetic(300, 6);
        let config = OneSidedTreeConfig {
            min_leaf_size: 40,
            ..Default::default()
        };
        let rules = generate_rules(&metrics, &labels, config);
        for r in &rules {
            assert!(r.support >= 40, "rule support {} below min leaf size", r.support);
        }
    }

    #[test]
    fn exhaustive_beam_finds_at_least_as_many_rules() {
        let (metrics, labels) = synthetic(300, 7);
        let narrow = generate_rules(
            &metrics,
            &labels,
            OneSidedTreeConfig {
                beam_width: 2,
                ..Default::default()
            },
        );
        let wide = generate_rules(
            &metrics,
            &labels,
            OneSidedTreeConfig {
                beam_width: usize::MAX,
                ..Default::default()
            },
        );
        assert!(wide.len() >= narrow.len());
    }
}
