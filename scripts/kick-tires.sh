#!/usr/bin/env bash
# Smoke tier ("kick the tires"): build the workspace in release mode, then run
# every er-bench figure/table binary at its smallest usable configuration,
# writing each binary's output under out/. Completes in a couple of minutes on
# a laptop; CI runs it on every push. The full reproduction tier lives in
# scripts/full.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

# Smallest workload scale at which every pipeline stage still has data
# (non-empty splits, mislabeled pairs to rank, rules to generate).
SCALE="${KICK_TIRES_SCALE:-0.012}"
OUT=out/kick-tires
BINARIES=(table2 fig9 fig10 fig11 fig12 fig13 fig14 ablation serve_bench train_bench)

# serve_bench and train_bench also emit machine-readable results (the
# BENCH_*.json perf trajectory); keep them at stable paths so future PRs can
# diff serving and training performance.
export SERVE_BENCH_JSON=out/serve_bench.json
export TRAIN_BENCH_JSON=out/train_bench.json

echo "== kick-tires: release build =="
cargo build --release -p er-bench

rm -rf "$OUT"
mkdir -p "$OUT"

echo "== kick-tires: running ${#BINARIES[@]} binaries at scale $SCALE =="
for bin in "${BINARIES[@]}"; do
    echo "-- $bin"
    ./target/release/"$bin" "$SCALE" >"$OUT/$bin.txt"
done

echo "== kick-tires: outputs =="
ls -l "$OUT"
test -s "$SERVE_BENCH_JSON" || { echo "missing $SERVE_BENCH_JSON" >&2; exit 1; }
test -s "$TRAIN_BENCH_JSON" || { echo "missing $TRAIN_BENCH_JSON" >&2; exit 1; }
echo "serve_bench JSON at $SERVE_BENCH_JSON"
echo "train_bench JSON at $TRAIN_BENCH_JSON"

# The serve_bench run above is also the HTTP front-end smoke: it starts the
# score server on an ephemeral port, replays traffic over raw sockets,
# hot-reloads a retrained artifact mid-replay, and runs the deliberate
# backpressure phase — exiting non-zero on any non-2xx outside that phase,
# any score-bit divergence, or a dropped request. Assert the evidence landed
# in the JSON so a silently skipped front-end phase cannot pass this tier.
grep -q '"frontend"' "$SERVE_BENCH_JSON" || { echo "serve_bench JSON is missing the frontend block" >&2; exit 1; }
grep -q '"bit_exact": true' "$SERVE_BENCH_JSON" || { echo "front-end replay did not attest bit-exactness" >&2; exit 1; }
grep -q '"bit_exact_per_version": true' "$SERVE_BENCH_JSON" \
    || { echo "mid-replay reload did not attest per-version bit-exactness" >&2; exit 1; }
echo "front-end replay + mid-replay reload + backpressure smoke OK"

# Informational perf diff against the committed baseline (the CI perf-gate
# job runs the same diff fatally; locally a regression only warns, since dev
# hardware legitimately differs from the baseline machine).
if [[ -f out/baseline/serve_bench.json && -f out/baseline/train_bench.json ]]; then
    echo "== kick-tires: perf diff vs out/baseline (informational) =="
    ./target/release/bench_diff \
        || echo "kick-tires: WARNING — bench_diff reported regressions; CI perf-gate will fail"
fi
echo "kick-tires OK"
