//! Per-backend health: periodic `GET /healthz` probes, consecutive-failure
//! ejection, automatic restore on recovery.
//!
//! An ejected backend's vnodes are skipped on the ring walk
//! ([`crate::ring::HashRing::route`] with the health eligibility check), so
//! ejection remaps only the keys that hashed to the dead backend. The probe
//! also scrapes the backend's `model_version` and `model_digest`, which is
//! how the canary controller attests which artifact each backend actually
//! serves — version numbers are per-process counters and can't be compared
//! across backends, digests can.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Observed state of one backend.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BackendHealth {
    /// Routable right now?
    pub healthy: bool,
    /// Probe failures since the last success.
    pub consecutive_failures: u32,
    /// Times this backend transitioned healthy → ejected.
    pub ejections: u64,
    /// The backend's own `/reload` counter (process-local, monotonically
    /// increasing — not comparable across backends).
    pub model_version: u64,
    /// Content digest of the model the backend serves (comparable across
    /// backends: equal digest ⇔ equal trained parameters).
    pub model_digest: String,
}

impl BackendHealth {
    fn unknown() -> Self {
        Self {
            healthy: false,
            consecutive_failures: 0,
            ejections: 0,
            model_version: 0,
            model_digest: String::new(),
        }
    }
}

/// Health table over a fixed backend set.
pub struct HealthState {
    backends: Vec<SocketAddr>,
    states: RwLock<Vec<BackendHealth>>,
    eject_after: u32,
    probe_timeout: Duration,
}

impl HealthState {
    /// A table where every backend starts unknown/unhealthy; call
    /// [`Self::probe_all`] once at startup to prime it before taking
    /// traffic.
    pub fn new(backends: Vec<SocketAddr>, eject_after: u32, probe_timeout: Duration) -> Self {
        let states = (0..backends.len()).map(|_| BackendHealth::unknown()).collect();
        Self {
            backends,
            states: RwLock::new(states),
            eject_after: eject_after.max(1),
            probe_timeout,
        }
    }

    /// The probed backend addresses, in index order.
    pub fn backends(&self) -> &[SocketAddr] {
        &self.backends
    }

    /// Probes every backend once, updating the table. Probes run
    /// concurrently (scoped threads) so one unresponsive backend cannot
    /// stretch the sweep to `backends × probe_timeout` and delay the
    /// ejection or re-admission of the others; the call still returns only
    /// after every probe has resolved.
    pub fn probe_all(&self) {
        if self.backends.len() == 1 {
            return self.probe_one(0);
        }
        std::thread::scope(|scope| {
            for index in 0..self.backends.len() {
                scope.spawn(move || self.probe_one(index));
            }
        });
    }

    /// Probes one backend and folds the outcome into its state.
    pub fn probe_one(&self, index: usize) {
        let outcome = probe(self.backends[index], self.probe_timeout);
        let mut states = self.states.write().unwrap_or_else(|e| e.into_inner());
        let state = &mut states[index];
        match outcome {
            Ok((version, digest)) => {
                state.healthy = true;
                state.consecutive_failures = 0;
                state.model_version = version;
                state.model_digest = digest;
            }
            Err(_) => {
                state.consecutive_failures = state.consecutive_failures.saturating_add(1);
                if state.healthy && state.consecutive_failures >= self.eject_after {
                    state.healthy = false;
                    state.ejections += 1;
                }
                // A backend that never probed healthy stays unroutable
                // without counting an ejection.
                if state.consecutive_failures >= self.eject_after {
                    state.healthy = false;
                }
            }
        }
    }

    /// Is the backend currently routable?
    pub fn is_healthy(&self, index: usize) -> bool {
        self.states.read().unwrap_or_else(|e| e.into_inner())[index].healthy
    }

    /// Snapshot of every backend's state, in index order.
    pub fn snapshot(&self) -> Vec<BackendHealth> {
        self.states.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of currently routable backends.
    pub fn healthy_count(&self) -> usize {
        self.states
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|s| s.healthy)
            .count()
    }
}

/// One blocking `GET /healthz` probe; returns the backend's
/// `(model_version, model_digest)`.
fn probe(addr: SocketAddr, timeout: Duration) -> io::Result<(u64, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let response = er_serve::http_roundtrip(&mut stream, "GET", "/healthz", None)?;
    if response.status != 200 {
        return Err(io::Error::other(format!("healthz returned {}", response.status)));
    }
    let value =
        serde::json::parse(&response.body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let version: u64 = value
        .get("model_version")
        .and_then(|v| serde::from_value(v).ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "healthz body lacks model_version"))?;
    let digest: String = value
        .get("model_digest")
        .and_then(|v| serde::from_value(v).ok())
        .unwrap_or_default();
    Ok((version, digest))
}

/// Spawns the background monitor: probes every backend each `interval`
/// until `shutdown` flips. Join the handle after flipping to stop cleanly.
pub fn spawn_monitor(
    state: Arc<HealthState>,
    interval: Duration,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("gw-health".to_string())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                state.probe_all();
                // Sleep in small slices so shutdown is prompt even with
                // multi-second probe intervals.
                let mut remaining = interval;
                while !shutdown.load(Ordering::SeqCst) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(50));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead_addr() -> SocketAddr {
        // Bind-then-drop: the port is almost surely closed afterwards.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    }

    #[test]
    fn unprobed_backends_are_not_routable() {
        let state = HealthState::new(vec![dead_addr()], 2, Duration::from_millis(200));
        assert!(!state.is_healthy(0));
        assert_eq!(state.healthy_count(), 0);
    }

    #[test]
    fn repeated_failures_eject_without_counting_phantom_ejections() {
        let state = HealthState::new(vec![dead_addr()], 2, Duration::from_millis(100));
        for _ in 0..3 {
            state.probe_all();
        }
        let snapshot = state.snapshot();
        assert!(!snapshot[0].healthy);
        assert!(snapshot[0].consecutive_failures >= 3);
        // Never was healthy, so nothing to eject.
        assert_eq!(snapshot[0].ejections, 0);
    }
}
