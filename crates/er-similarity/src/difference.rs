//! Difference metrics (Section 5.1 and Figure 5 of the paper).
//!
//! Similarity metrics focus on the *common* part of two values; difference
//! metrics directly capture what *differs*, which the paper finds more
//! effective for reasoning about inequivalence.  We implement the full
//! taxonomy of Figure 5:
//!
//! * **Entity name** — `non-substring`, `non-prefix`, `non-suffix` and their
//!   first-letter-abbreviation variants.
//! * **Entity set** — `diff-cardinality`, `distinct-entity`.
//! * **Text description** — `diff-key-token`.
//! * **Numeric** — absolute and relative difference, inequality indicator.
//!
//! All metrics return a number where *larger means more different*; indicator
//! metrics return `0.0` or `1.0`.

use crate::token_sim::IdfTable;
use crate::tokenize::{abbreviation, entities, normalize, tokens};
use std::collections::HashSet;

/// Indicator that neither normalized value is a substring of the other.
///
/// A value of `1.0` strongly suggests the two entity names denote different
/// entities.
pub fn non_substring(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() || nb.is_empty() {
        // A missing value carries no difference evidence.
        return 0.0;
    }
    if na.contains(&nb) || nb.contains(&na) {
        0.0
    } else {
        1.0
    }
}

/// Indicator that neither value is a prefix of the other.
pub fn non_prefix(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    if na.starts_with(&nb) || nb.starts_with(&na) {
        0.0
    } else {
        1.0
    }
}

/// Indicator that neither value is a suffix of the other.
pub fn non_suffix(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    if na.ends_with(&nb) || nb.ends_with(&na) {
        0.0
    } else {
        1.0
    }
}

/// Abbreviation-aware variant of [`non_substring`]: compares each value's
/// first-letter abbreviation against the other value's abbreviation *and*
/// against the other raw value, so `"VLDB"` matches
/// `"Very Large Data Bases"`.
pub fn abbr_non_substring(a: &str, b: &str) -> f64 {
    let na = normalize(a).replace(' ', "");
    let nb = normalize(b).replace(' ', "");
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    let aa = abbreviation(a);
    let ab = abbreviation(b);
    let contained = aa.contains(&nb)
        || nb.contains(&aa)
        || ab.contains(&na)
        || na.contains(&ab)
        || (!aa.is_empty() && !ab.is_empty() && (aa.contains(&ab) || ab.contains(&aa)));
    if contained {
        0.0
    } else {
        1.0
    }
}

/// Abbreviation-aware variant of [`non_prefix`].
pub fn abbr_non_prefix(a: &str, b: &str) -> f64 {
    let na = normalize(a).replace(' ', "");
    let nb = normalize(b).replace(' ', "");
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    let aa = abbreviation(a);
    let ab = abbreviation(b);
    let ok = aa.starts_with(&ab)
        || ab.starts_with(&aa)
        || aa.starts_with(&nb)
        || nb.starts_with(&aa)
        || ab.starts_with(&na)
        || na.starts_with(&ab);
    if ok {
        0.0
    } else {
        1.0
    }
}

/// Abbreviation-aware variant of [`non_suffix`].
pub fn abbr_non_suffix(a: &str, b: &str) -> f64 {
    let na = normalize(a).replace(' ', "");
    let nb = normalize(b).replace(' ', "");
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    let aa = abbreviation(a);
    let ab = abbreviation(b);
    let ok = aa.ends_with(&ab)
        || ab.ends_with(&aa)
        || aa.ends_with(&nb)
        || nb.ends_with(&aa)
        || ab.ends_with(&na)
        || na.ends_with(&ab);
    if ok {
        0.0
    } else {
        1.0
    }
}

/// Indicator that two entity sets have different cardinalities
/// (`diff-cardinality` in the paper).
pub fn diff_cardinality(a: &str, b: &str) -> f64 {
    let ea = entities(a);
    let eb = entities(b);
    if ea.is_empty() || eb.is_empty() {
        return 0.0;
    }
    if ea.len() == eb.len() {
        0.0
    } else {
        1.0
    }
}

/// Number of *distinct entities*: entity names occurring in exactly one of the
/// two sets (`distinct-entity` in the paper).
///
/// Entity names are matched approximately (Jaro–Winkler ≥ 0.9 or containment)
/// so that `"H Kriegel"` and `"Hans-Peter Kriegel"` do not count as distinct.
pub fn distinct_entity(a: &str, b: &str) -> f64 {
    let ea = entities(a);
    let eb = entities(b);
    if ea.is_empty() || eb.is_empty() {
        return 0.0;
    }
    let unmatched = |xs: &[String], ys: &[String]| -> usize {
        xs.iter()
            .filter(|x| !ys.iter().any(|y| entity_names_match(x, y)))
            .count()
    };
    (unmatched(&ea, &eb) + unmatched(&eb, &ea)) as f64
}

/// Approximate entity-name equality used by [`distinct_entity`].
fn entity_names_match(a: &str, b: &str) -> bool {
    if a == b || a.contains(b) || b.contains(a) {
        return true;
    }
    // Compare surnames (last token) plus fuzzy whole-name match.
    let la = a.split(' ').next_back().unwrap_or(a);
    let lb = b.split(' ').next_back().unwrap_or(b);
    if la == lb {
        return true;
    }
    crate::edit::jaro_winkler(a, b) >= 0.9
}

/// Number of *key* (discriminating) tokens contained in exactly one of the two
/// text values (`diff-key-token` in the paper).
///
/// A token is a key token when it is rare in the corpus (per the [`IdfTable`])
/// or intrinsically specific (contains digits / long).
pub fn diff_key_token(a: &str, b: &str, idf: &IdfTable, max_df_ratio: f64) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let sa: HashSet<&str> = ta.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = tb.iter().map(String::as_str).collect();
    let count_one_sided = |xs: &HashSet<&str>, ys: &HashSet<&str>| -> usize {
        xs.iter()
            .filter(|t| !ys.contains(*t) && idf.is_key_token(t, max_df_ratio))
            .count()
    };
    (count_one_sided(&sa, &sb) + count_one_sided(&sb, &sa)) as f64
}

/// Variant of [`diff_key_token`] without corpus statistics: only intrinsically
/// specific tokens count.
pub fn diff_specific_token(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let sa: HashSet<&str> = ta.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = tb.iter().map(String::as_str).collect();
    let one_sided = |xs: &HashSet<&str>, ys: &HashSet<&str>| -> usize {
        xs.iter()
            .filter(|t| !ys.contains(*t) && crate::tokenize::is_specific_token(t))
            .count()
    };
    (one_sided(&sa, &sb) + one_sided(&sb, &sa)) as f64
}

/// Absolute numeric difference; 0 when either value is missing.
pub fn numeric_abs_diff(a: Option<f64>, b: Option<f64>) -> f64 {
    match (a, b) {
        (Some(x), Some(y)) => (x - y).abs(),
        _ => 0.0,
    }
}

/// Relative numeric difference `|a-b| / max(|a|, |b|)`; 0 when either value is
/// missing or both are zero.
pub fn numeric_rel_diff(a: Option<f64>, b: Option<f64>) -> f64 {
    match (a, b) {
        (Some(x), Some(y)) => {
            let denom = x.abs().max(y.abs());
            if denom == 0.0 {
                0.0
            } else {
                (x - y).abs() / denom
            }
        }
        _ => 0.0,
    }
}

/// Indicator that two numeric values differ (the paper's running-example rule
/// `r1[Year] != r2[Year] -> inequivalent`).
pub fn numeric_not_equal(a: Option<f64>, b: Option<f64>) -> f64 {
    match (a, b) {
        (Some(x), Some(y)) => {
            if (x - y).abs() < 1e-9 {
                0.0
            } else {
                1.0
            }
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokens as tok;

    #[test]
    fn non_substring_detects_unrelated_names() {
        assert_eq!(non_substring("SIGMOD Conference", "SIGMOD"), 0.0);
        assert_eq!(non_substring("SIGMOD", "VLDB"), 1.0);
        // Missing values give no evidence.
        assert_eq!(non_substring("", "VLDB"), 0.0);
    }

    #[test]
    fn non_prefix_and_suffix() {
        assert_eq!(non_prefix("inter", "international"), 0.0);
        assert_eq!(non_prefix("national", "international"), 1.0);
        assert_eq!(non_suffix("national", "international"), 0.0);
        assert_eq!(non_suffix("inter", "international"), 1.0);
        assert_eq!(non_prefix("", ""), 0.0);
    }

    #[test]
    fn abbreviation_variants_accept_acronyms() {
        assert_eq!(abbr_non_substring("VLDB", "Very Large Data Bases"), 0.0);
        assert_eq!(abbr_non_prefix("VLDB", "Very Large Data Bases"), 0.0);
        assert_eq!(abbr_non_suffix("VLDB", "Very Large Data Bases"), 0.0);
        assert_eq!(abbr_non_substring("ICDE", "Very Large Data Bases"), 1.0);
        assert_eq!(abbr_non_substring("", "x"), 0.0);
    }

    #[test]
    fn abbr_matches_two_abbreviations() {
        // Both sides abbreviate to similar acronyms.
        assert_eq!(
            abbr_non_substring(
                "Intl Conf on Data Engineering",
                "International Conference on Data Engineering"
            ),
            0.0
        );
    }

    #[test]
    fn diff_cardinality_counts_set_sizes() {
        assert_eq!(diff_cardinality("A Smith, B Jones", "A Smith, B Jones"), 0.0);
        assert_eq!(diff_cardinality("A Smith, B Jones, C Wu", "A Smith, B Jones"), 1.0);
        assert_eq!(diff_cardinality("", "A Smith"), 0.0);
    }

    #[test]
    fn paper_example_distinct_entity() {
        // Example 1 of the paper: "R Schneider" appears in only one list.
        let s1 = "T Brinkhoff, H Kriegel, R Schneider, B Seeger";
        let s2 = "T Brinkhoff, H Kriegel, B Seeger";
        assert!((distinct_entity(s1, s2) - 1.0).abs() < 1e-12);
        assert_eq!(distinct_entity(s1, s1), 0.0);
    }

    #[test]
    fn distinct_entity_tolerates_name_variants() {
        let full = "Hans Peter Kriegel, Bernhard Seeger";
        let abbrev = "H Kriegel, B Seeger";
        // Surname matching keeps these equivalent: zero distinct entities.
        assert_eq!(distinct_entity(full, abbrev), 0.0);
        let different = "Hans Peter Kriegel, Michael Stonebraker";
        assert!(distinct_entity(full, different) >= 2.0);
    }

    #[test]
    fn diff_key_token_uses_idf() {
        let mut idf = IdfTable::new();
        for _ in 0..20 {
            idf.add_document(&tok("apple ipod nano"));
        }
        idf.add_document(&tok("apple ipod nano red edition"));
        idf.add_document(&tok("apple ipod nano blue edition"));
        // "red"/"blue" are rare -> key tokens that differ.
        let d = diff_key_token(
            "apple ipod nano red edition",
            "apple ipod nano blue edition",
            &idf,
            0.25,
        );
        assert!((d - 2.0).abs() < 1e-12);
        // Same values -> no difference.
        assert_eq!(diff_key_token("apple ipod nano", "apple ipod nano", &idf, 0.25), 0.0);
        assert_eq!(diff_key_token("", "apple", &idf, 0.25), 0.0);
    }

    #[test]
    fn diff_specific_token_counts_model_numbers() {
        assert!((diff_specific_token("canon eos 450d camera", "canon eos 500d camera") - 2.0).abs() < 1e-12);
        assert_eq!(diff_specific_token("canon camera", "canon camera"), 0.0);
    }

    #[test]
    fn numeric_differences() {
        assert_eq!(numeric_abs_diff(Some(1999.0), Some(2001.0)), 2.0);
        assert_eq!(numeric_abs_diff(None, Some(2001.0)), 0.0);
        assert!((numeric_rel_diff(Some(100.0), Some(150.0)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(numeric_rel_diff(Some(0.0), Some(0.0)), 0.0);
        assert_eq!(numeric_not_equal(Some(1999.0), Some(1999.0)), 0.0);
        assert_eq!(numeric_not_equal(Some(1999.0), Some(2000.0)), 1.0);
        assert_eq!(numeric_not_equal(None, Some(2000.0)), 0.0);
    }
}
