//! One-sided rules: conjunctions of conditions implying a class.

use crate::condition::Condition;
use er_base::Label;
use er_similarity::AttrMetric;
use serde::{Deserialize, Serialize};

/// A one-sided rule: if all conditions hold on a pair's basic-metric vector,
/// the pair very likely belongs to `target`; nothing is implied otherwise
/// (Section 5 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Conjunction of conditions (the path from the tree root to the leaf).
    pub conditions: Vec<Condition>,
    /// The class implied when the conditions hold.
    pub target: Label,
    /// Number of training pairs satisfying the conditions.
    pub support: usize,
    /// Fraction of supporting training pairs whose label equals `target`.
    pub purity: f64,
}

impl Rule {
    /// Creates a rule.
    pub fn new(conditions: Vec<Condition>, target: Label, support: usize, purity: f64) -> Self {
        Self {
            conditions,
            target,
            support,
            purity,
        }
    }

    /// Whether a pair (given its basic-metric vector) satisfies the rule.
    pub fn covers(&self, metrics: &[f64]) -> bool {
        self.conditions.iter().all(|c| c.matches(metrics))
    }

    /// Number of conditions (tree depth of the leaf).
    pub fn depth(&self) -> usize {
        self.conditions.len()
    }

    /// Renders the rule in the paper's notation, e.g.
    /// `"num_not_equal(year) > 0.500 -> inequivalent  [support=120, purity=0.98]"`.
    pub fn render(&self, metrics: &[AttrMetric]) -> String {
        let lhs = self
            .conditions
            .iter()
            .map(|c| c.render(metrics))
            .collect::<Vec<_>>()
            .join(" AND ");
        let rhs = match self.target {
            Label::Equivalent => "equivalent",
            Label::Inequivalent => "inequivalent",
        };
        format!("{lhs} -> {rhs}  [support={}, purity={:.2}]", self.support, self.purity)
    }

    /// Whether two rules have the same condition set and target (used for
    /// deduplication; condition order is irrelevant).
    pub fn is_duplicate_of(&self, other: &Rule) -> bool {
        if self.target != other.target || self.conditions.len() != other.conditions.len() {
            return false;
        }
        self.conditions
            .iter()
            .all(|c| other.conditions.iter().any(|o| c.approx_eq(o)))
    }
}

/// Removes duplicate rules (same conditions and target), keeping the first
/// occurrence (Algorithm 1, line 5).
pub fn dedup_rules(rules: Vec<Rule>) -> Vec<Rule> {
    let mut out: Vec<Rule> = Vec::with_capacity(rules.len());
    for rule in rules {
        if !out.iter().any(|r| r.is_duplicate_of(&rule)) {
            out.push(rule);
        }
    }
    out
}

/// Fraction of pairs (rows of the metric matrix) covered by at least one rule.
pub fn coverage(rules: &[Rule], metric_rows: &[Vec<f64>]) -> f64 {
    if metric_rows.is_empty() {
        return 0.0;
    }
    let covered = metric_rows
        .iter()
        .filter(|row| rules.iter().any(|r| r.covers(row)))
        .count();
    covered as f64 / metric_rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CmpOp;

    fn rule(target: Label) -> Rule {
        Rule::new(
            vec![Condition::new(0, CmpOp::Gt, 0.5), Condition::new(1, CmpOp::Le, 0.2)],
            target,
            30,
            0.97,
        )
    }

    #[test]
    fn coverage_requires_all_conditions() {
        let r = rule(Label::Inequivalent);
        assert!(r.covers(&[0.9, 0.1]));
        assert!(!r.covers(&[0.9, 0.5]));
        assert!(!r.covers(&[0.2, 0.1]));
        assert_eq!(r.depth(), 2);
    }

    #[test]
    fn rendering_mentions_both_sides() {
        let metrics = vec![
            AttrMetric {
                attr_index: 0,
                attr_name: "title".into(),
                kind: er_similarity::MetricKind::Jaccard,
            },
            AttrMetric {
                attr_index: 3,
                attr_name: "year".into(),
                kind: er_similarity::MetricKind::NumericNotEqual,
            },
        ];
        let text = rule(Label::Equivalent).render(&metrics);
        assert!(text.contains("jaccard(title) > 0.500"));
        assert!(text.contains("AND"));
        assert!(text.contains("-> equivalent"));
        assert!(text.contains("purity=0.97"));
        let text2 = rule(Label::Inequivalent).render(&metrics);
        assert!(text2.contains("-> inequivalent"));
    }

    #[test]
    fn duplicate_detection_ignores_order() {
        let a = Rule::new(
            vec![Condition::new(0, CmpOp::Gt, 0.5), Condition::new(1, CmpOp::Le, 0.2)],
            Label::Equivalent,
            10,
            0.9,
        );
        let b = Rule::new(
            vec![Condition::new(1, CmpOp::Le, 0.2), Condition::new(0, CmpOp::Gt, 0.5)],
            Label::Equivalent,
            99,
            0.8,
        );
        let c = Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Equivalent, 10, 0.9);
        assert!(a.is_duplicate_of(&b));
        assert!(!a.is_duplicate_of(&c));
        let deduped = dedup_rules(vec![a.clone(), b, c]);
        assert_eq!(deduped.len(), 2);
        assert_eq!(deduped[0].support, 10, "first occurrence wins");
    }

    #[test]
    fn workload_coverage() {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Equivalent, 5, 1.0),
            Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Inequivalent, 5, 1.0),
        ];
        let rows = vec![vec![0.9, 0.0], vec![0.0, 0.9], vec![0.0, 0.0], vec![0.9, 0.9]];
        assert!((coverage(&rules, &rows) - 0.75).abs() < 1e-12);
        assert_eq!(coverage(&rules, &[]), 0.0);
    }
}
