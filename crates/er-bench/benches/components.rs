//! Criterion micro-benchmarks of the performance-sensitive building blocks:
//! similarity metrics, one-sided rule generation, risk-model training and
//! risk scoring.  These complement the figure binaries (which regenerate the
//! paper's result series) by tracking the runtime of each stage.

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};
use er_base::{Label, SplitRatio};
use er_datasets::{generate_benchmark, BenchmarkId};
use er_eval::build_inputs_from_labeled;
use er_rulegen::{generate_rules, OneSidedTreeConfig};
use er_similarity::MetricEvaluator;
use learnrisk_core::{train as train_risk, LearnRiskModel, RiskFeatureSet, RiskModelConfig, RiskTrainConfig};
use std::sync::Arc;

fn bench_metric_evaluation(c: &mut Criterion) {
    let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.02, 7);
    let pairs = ds.workload.pairs();
    let evaluator = MetricEvaluator::from_pairs(Arc::clone(&ds.workload.left_schema), pairs);
    c.bench_function("similarity/basic_metrics_per_pair", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = &pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(evaluator.eval_all(&p.left, &p.right))
        })
    });
}

fn bench_rule_generation(c: &mut Criterion) {
    let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.03, 8);
    let pairs = ds.workload.pairs();
    let evaluator = MetricEvaluator::from_pairs(Arc::clone(&ds.workload.left_schema), pairs);
    let rows = evaluator.eval_pairs(pairs);
    let labels: Vec<Label> = pairs.iter().map(|p| p.truth).collect();
    let mut group = c.benchmark_group("rulegen/one_sided_tree");
    group.sample_size(10);
    for &n in &[200usize, 500, 1000] {
        let n = n.min(rows.len());
        group.bench_with_input(CriterionId::from_parameter(n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(generate_rules(&rows[..n], &labels[..n], OneSidedTreeConfig::default())))
        });
    }
    group.finish();
}

fn bench_risk_training_and_scoring(c: &mut Criterion) {
    let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.03, 9);
    let workload = &ds.workload;
    let mut rng = er_base::rng::seeded(11);
    let split = workload.split_by_ratio(SplitRatio::new(3, 2, 5), &mut rng);
    let train = workload.select(&split.train);
    let valid = workload.select(&split.valid);
    let evaluator = MetricEvaluator::from_pairs(Arc::clone(&workload.left_schema), &train);
    let rows = evaluator.eval_pairs(&train);
    let labels: Vec<Label> = train.iter().map(|p| p.truth).collect();
    let rules = generate_rules(&rows, &labels, OneSidedTreeConfig::default());
    let feature_set = RiskFeatureSet::from_training(rules, evaluator.metrics().to_vec(), &rows, &labels);

    // Labeled validation data (synthetic classifier: mostly right).
    let probs: Vec<f64> = valid
        .iter()
        .map(|p| if p.truth.is_match() { 0.85 } else { 0.15 })
        .collect();
    let labeled = er_base::LabeledWorkload::from_probabilities("bench", valid.clone(), &probs);
    let model = LearnRiskModel::new(feature_set, RiskModelConfig::default());
    let inputs = build_inputs_from_labeled(&evaluator, &model.features, &labeled);

    let mut group = c.benchmark_group("learnrisk");
    group.sample_size(10);
    group.bench_function("risk_training_50_epochs", |b| {
        b.iter(|| {
            let mut m = model.clone();
            train_risk(
                &mut m,
                &inputs,
                &RiskTrainConfig {
                    epochs: 50,
                    ..Default::default()
                },
            );
            std::hint::black_box(m.rule_weights.len())
        })
    });
    group.bench_function("risk_scoring_per_1000_pairs", |b| {
        b.iter(|| {
            let scores: Vec<f64> = inputs.iter().cycle().take(1000).map(|i| model.risk_score(i)).collect();
            std::hint::black_box(scores)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_metric_evaluation,
    bench_rule_generation,
    bench_risk_training_and_scoring
);
criterion_main!(benches);
