//! Sequence similarity metrics: longest common subsequence and substring.

/// Length of the longest common subsequence of two strings (character level).
pub fn lcs_length(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev = vec![0usize; short.len() + 1];
    let mut cur = vec![0usize; short.len() + 1];
    for &lc in long.iter() {
        for (j, &sc) in short.iter().enumerate() {
            cur[j + 1] = if lc == sc { prev[j] + 1 } else { prev[j + 1].max(cur[j]) };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.iter_mut().for_each(|x| *x = 0);
    }
    prev[short.len()]
}

/// Normalized LCS similarity in `[0, 1]`: `lcs / max(|a|, |b|)`.
///
/// This is the `LCS` comparison used in the paper's example rules (Figure 6).
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    lcs_length(a, b) as f64 / max_len as f64
}

/// Length of the longest common contiguous substring (character level).
pub fn longest_common_substring(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    let mut best = 0usize;
    for &ca in a.iter() {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Normalized longest-common-substring similarity in `[0, 1]`, relative to the
/// shorter string.  A value of 1 means one value is fully contained in the
/// other.
pub fn substring_similarity(a: &str, b: &str) -> f64 {
    let min_len = a.chars().count().min(b.chars().count());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() { 1.0 } else { 0.0 };
    }
    longest_common_substring(a, b) as f64 / min_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_length_basic() {
        assert_eq!(lcs_length("abcde", "ace"), 3);
        assert_eq!(lcs_length("abc", "abc"), 3);
        assert_eq!(lcs_length("abc", "def"), 0);
        assert_eq!(lcs_length("", "abc"), 0);
    }

    #[test]
    fn lcs_similarity_range() {
        assert!((lcs_similarity("", "") - 1.0).abs() < 1e-12);
        assert!((lcs_similarity("abcd", "abcd") - 1.0).abs() < 1e-12);
        assert!((lcs_similarity("abcde", "ace") - 0.6).abs() < 1e-12);
        let near = lcs_similarity("spatial join processing", "spatial join procesing");
        assert!(near > 0.9);
    }

    #[test]
    fn lcs_is_symmetric() {
        for (a, b) in [("database", "databse"), ("query optimizer", "optimizer"), ("x", "")] {
            assert_eq!(lcs_length(a, b), lcs_length(b, a));
        }
    }

    #[test]
    fn longest_common_substring_basic() {
        assert_eq!(longest_common_substring("abcdef", "zcdefy"), 4);
        assert_eq!(longest_common_substring("abc", "abc"), 3);
        assert_eq!(longest_common_substring("abc", "xyz"), 0);
        assert_eq!(longest_common_substring("", "x"), 0);
    }

    #[test]
    fn substring_similarity_containment() {
        assert!((substring_similarity("ipod nano", "apple ipod nano 4gb") - 1.0).abs() < 1e-12);
        assert!((substring_similarity("", "") - 1.0).abs() < 1e-12);
        assert_eq!(substring_similarity("", "x"), 0.0);
        assert!(substring_similarity("canon", "nikon") < 0.5);
    }
}
