//! # er-baselines
//!
//! The non-learnable risk-analysis baselines the paper compares against:
//!
//! * [`simple`] — `Baseline` (classifier-output ambiguity) and `Uncertainty`
//!   (bootstrap-ensemble disagreement).
//! * [`trust_score`] — `TrustScore` (cluster-distance ratio).
//! * [`static_risk`] — `StaticRisk` (Bayesian posterior + CVaR).
//! * [`holoclean`] — HoloClean adapted to risk analysis via weighted-rule
//!   log-linear inference over two-sided labeling rules.

#![warn(missing_docs)]

pub mod holoclean;
pub mod simple;
pub mod static_risk;
pub mod trust_score;

pub use holoclean::{HoloCleanConfig, HoloCleanRisk};
pub use simple::{baseline_scores, UncertaintyScorer};
pub use static_risk::{StaticRisk, StaticRiskConfig};
pub use trust_score::{TrustScore, TrustScoreConfig};
