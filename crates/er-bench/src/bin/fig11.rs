//! Regenerates Figure 11 (comparison with HoloClean on sampled workloads).
use er_eval::{render_auroc_table, run_fig11};

fn main() {
    let config = er_bench::config_from_args(0.05);
    let results = run_fig11(&config, 3);
    println!(
        "{}",
        render_auroc_table(
            &format!(
                "Figure 11 — LearnRisk vs HoloClean (scale {}, 3 subsets averaged)",
                config.scale
            ),
            &results
        )
    );
}
