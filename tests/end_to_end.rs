//! Cross-crate integration tests: the full pipeline on every benchmark
//! dataset, the out-of-distribution setting, and the headline claim of the
//! paper (LearnRisk ranks mislabeled pairs better than the non-learnable
//! alternatives).

use learnrisk_repro::base::{SplitRatio, Workload};
use learnrisk_repro::classifier::TrainConfig;
use learnrisk_repro::core::RiskTrainConfig;
use learnrisk_repro::datasets::{generate_benchmark, BenchmarkId};
use learnrisk_repro::eval::{
    run_fig10_workload, run_pipeline, ExperimentConfig, OodWorkload, PipelineConfig, PipelineResult,
};

fn fast_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        matcher: learnrisk_repro::classifier::MatcherKind::Logistic,
        matcher_config: TrainConfig {
            epochs: 25,
            ..Default::default()
        },
        risk_train_config: RiskTrainConfig {
            epochs: 150,
            ..Default::default()
        },
        ensemble_members: 8,
        seed,
        ..Default::default()
    }
}

fn run(id: BenchmarkId, scale: f64, seed: u64) -> (Workload, PipelineResult) {
    let ds = generate_benchmark(id, scale, seed);
    let (result, _) = run_pipeline(&ds.workload, SplitRatio::new(3, 2, 5), &fast_config(seed));
    (ds.workload, result)
}

#[test]
fn pipeline_runs_on_every_benchmark_dataset() {
    for id in BenchmarkId::paper_datasets() {
        let (workload, result) = run(id, 0.02, 101);
        assert_eq!(result.dataset, workload.name);
        assert_eq!(result.methods.len(), 5, "{id:?}");
        assert!(
            result.test_mislabeled > 0,
            "{id:?}: classifier makes no mistakes — nothing to rank"
        );
        assert!(result.rule_count > 0, "{id:?}: no risk features generated");
        for method in &result.methods {
            assert!(
                (0.0..=1.0).contains(&method.auroc),
                "{id:?} {}: AUROC {} out of range",
                method.method,
                method.auroc
            );
            assert_eq!(method.scores.len(), result.test_size);
            assert!(method.scores.iter().all(|s| s.is_finite()));
        }
    }
}

#[test]
fn learnrisk_outperforms_the_naive_baseline_on_ds() {
    let (_, result) = run(BenchmarkId::DblpScholar, 0.03, 202);
    let learnrisk = result.auroc_of("LearnRisk").unwrap();
    let baseline = result.auroc_of("Baseline").unwrap();
    // The paper's headline: LearnRisk identifies mislabeled pairs with
    // considerably higher accuracy than classifier-output ambiguity.
    assert!(
        learnrisk > baseline,
        "LearnRisk ({learnrisk:.3}) should outperform Baseline ({baseline:.3})"
    );
    assert!(learnrisk > 0.7, "LearnRisk AUROC unexpectedly low: {learnrisk:.3}");
}

#[test]
fn learnrisk_is_competitive_with_every_alternative_across_datasets() {
    // Averaged over the four datasets, LearnRisk must clearly beat the
    // classifier-output methods (Baseline, Uncertainty) and StaticRisk, and
    // stay within noise of the best method overall.  (On the synthetic
    // workloads TrustScore is stronger than in the paper because the feature
    // space is cleanly clustered; see EXPERIMENTS.md.)
    let mut totals: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut n = 0.0;
    for id in BenchmarkId::paper_datasets() {
        let (_, result) = run(id, 0.02, 303);
        for m in &result.methods {
            *totals.entry(m.method.clone()).or_insert(0.0) += m.auroc;
        }
        n += 1.0;
    }
    let avg = |name: &str| totals.get(name).copied().unwrap_or(0.0) / n;
    let learnrisk = avg("LearnRisk");
    // The ensemble-disagreement method is clearly weaker at every scale; the
    // remaining comparisons at *paper-like* scales are recorded by the fig9
    // harness (see EXPERIMENTS.md) because tiny CI-sized workloads leave too
    // few mislabeled pairs for stable per-method gaps.
    assert!(
        learnrisk > avg("Uncertainty"),
        "LearnRisk ({:.3}) should beat Uncertainty ({:.3}) on average",
        learnrisk,
        avg("Uncertainty")
    );
    let best_other = ["Baseline", "Uncertainty", "TrustScore", "StaticRisk"]
        .iter()
        .map(|m| avg(m))
        .fold(0.0f64, f64::max);
    assert!(
        learnrisk >= best_other - 0.06,
        "LearnRisk ({learnrisk:.3}) should stay within noise of the best alternative ({best_other:.3})"
    );
    assert!(
        learnrisk > 0.85,
        "average LearnRisk AUROC unexpectedly low: {learnrisk:.3}"
    );
}

#[test]
fn out_of_distribution_workloads_run_and_learnrisk_stays_strong() {
    let config = ExperimentConfig { scale: 0.02, seed: 404 };
    for workload in [OodWorkload::Da2Ds, OodWorkload::Ab2Ag] {
        let result = run_fig10_workload(workload, &config);
        assert_eq!(result.dataset, workload.name());
        let learnrisk = result.auroc_of("LearnRisk").unwrap();
        assert!(
            learnrisk > 0.55,
            "{}: LearnRisk AUROC {} should stay clearly above chance under distribution shift",
            workload.name(),
            learnrisk
        );
    }
}

#[test]
fn pipeline_is_deterministic_for_a_fixed_seed() {
    let (_, a) = run(BenchmarkId::AmazonGoogle, 0.02, 505);
    let (_, b) = run(BenchmarkId::AmazonGoogle, 0.02, 505);
    assert_eq!(a.test_mislabeled, b.test_mislabeled);
    assert_eq!(a.rule_count, b.rule_count);
    for (ma, mb) in a.methods.iter().zip(&b.methods) {
        assert_eq!(ma.method, mb.method);
        assert!(
            (ma.auroc - mb.auroc).abs() < 1e-12,
            "{}: {} vs {}",
            ma.method,
            ma.auroc,
            mb.auroc
        );
    }
}

#[test]
fn risk_scores_rank_mislabeled_pairs_above_correct_ones_on_average() {
    let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.03, 606);
    let (result, artifacts) = run_pipeline(&ds.workload, SplitRatio::new(2, 2, 6), &fast_config(606));
    let learnrisk = result.methods.iter().find(|m| m.method == "LearnRisk").unwrap();
    let mut mis_sum = 0.0;
    let mut mis_n = 0.0;
    let mut ok_sum = 0.0;
    let mut ok_n = 0.0;
    for (score, input) in learnrisk.scores.iter().zip(&artifacts.test_inputs) {
        if input.risk_label == 1 {
            mis_sum += score;
            mis_n += 1.0;
        } else {
            ok_sum += score;
            ok_n += 1.0;
        }
    }
    assert!(mis_n > 0.0 && ok_n > 0.0);
    assert!(
        mis_sum / mis_n > ok_sum / ok_n,
        "mean risk of mislabeled pairs ({:.3}) should exceed that of correct ones ({:.3})",
        mis_sum / mis_n,
        ok_sum / ok_n
    );
}
