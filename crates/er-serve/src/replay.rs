//! Traffic replay: Zipf-skewed synthetic request streams and a closed-loop
//! load harness.
//!
//! Real ER serving traffic is heavily skewed — a small set of contested
//! pairs (popular products, prolific authors) is re-scored far more often
//! than the long tail — so the generator draws pairs from a Zipf
//! distribution over a seeded permutation of the pool. The harness replays
//! the stream through a [`ShardedExecutor`] with one closed loop per worker
//! thread, timing every request, and reports throughput plus p50/p95/p99
//! latency.

use crate::engine::ScoreRequest;
use crate::executor::ShardedExecutor;
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Shape of a synthetic request stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Zipf exponent `s` (popularity of rank `r` ∝ `1/r^s`); 0 is uniform,
    /// ~1 matches typical web-workload skew.
    pub zipf_exponent: f64,
    /// Seed of the popularity permutation and the draw stream.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            requests: 40_000,
            zipf_exponent: 1.1,
            seed: 2020,
        }
    }
}

/// Generates a Zipf-skewed stream of requests drawn from `pool`.
///
/// Popularity ranks are assigned by a seeded permutation of the pool, so two
/// streams with the same seed hit the same hot pairs. Panics if the pool is
/// empty.
pub fn zipf_stream(pool: &[ScoreRequest], config: &ReplayConfig) -> Vec<ScoreRequest> {
    assert!(!pool.is_empty(), "cannot generate traffic from an empty pool");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Rank → pool index, via a seeded shuffle.
    let mut ranked: Vec<usize> = (0..pool.len()).collect();
    ranked.shuffle(&mut rng);

    // Cumulative popularity mass of 1/(rank+1)^s.
    let mut cdf = Vec::with_capacity(pool.len());
    let mut total = 0.0f64;
    for rank in 0..pool.len() {
        total += 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent);
        cdf.push(total);
    }

    (0..config.requests)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            let rank = cdf.partition_point(|&c| c < u).min(pool.len() - 1);
            pool[ranked[rank]].clone()
        })
        .collect()
}

/// Latency percentiles of one replay run, in microseconds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median request latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Mean latency.
    pub mean_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
}

/// Result of replaying one stream through an executor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Worker threads used.
    pub threads: usize,
    /// Requests replayed.
    pub requests: usize,
    /// Wall-clock duration of the replay.
    pub elapsed_secs: f64,
    /// Requests per second across all workers.
    pub throughput_rps: f64,
    /// Per-request service-latency percentiles.
    pub latency: LatencySummary,
    /// Fraction of requests answered from the score cache.
    pub cache_hit_rate: f64,
}

/// Replays `stream` through the executor (closed loop, one worker per
/// configured thread) and reports throughput and latency percentiles.
pub fn run_replay(executor: &ShardedExecutor, stream: &[ScoreRequest]) -> ReplayReport {
    let threads = executor.config().threads.max(1);
    executor.reset_cache_stats();
    let start = Instant::now();
    let mut latencies_ns: Vec<u64> = if stream.is_empty() {
        Vec::new()
    } else if threads == 1 {
        replay_worker(executor, stream)
    } else {
        let chunk = stream.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = stream
                .chunks(chunk)
                .map(|chunk| scope.spawn(move || replay_worker(executor, chunk)))
                .collect();
            let mut all = Vec::with_capacity(stream.len());
            for handle in handles {
                // A replay worker only unwinds when scoring itself paniced;
                // re-raise rather than report a truncated latency series.
                all.extend(handle.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
            all
        })
    };
    let elapsed = start.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();
    ReplayReport {
        threads,
        requests: stream.len(),
        elapsed_secs: elapsed,
        throughput_rps: if elapsed > 0.0 {
            stream.len() as f64 / elapsed
        } else {
            0.0
        },
        latency: summarize(&latencies_ns),
        cache_hit_rate: executor.cache_stats().hit_rate(),
    }
}

/// Sorts raw per-request latencies (nanoseconds) and summarizes them with
/// the same percentile definitions the in-process replay reports — shared
/// with `serve_bench`'s HTTP front-end replay so socket and in-process
/// latency series are directly comparable.
pub fn summarize_latencies(latencies_ns: &mut [u64]) -> LatencySummary {
    latencies_ns.sort_unstable();
    summarize(latencies_ns)
}

fn replay_worker(executor: &ShardedExecutor, requests: &[ScoreRequest]) -> Vec<u64> {
    let mut scratch = executor.engine().scratch();
    let mut latencies = Vec::with_capacity(requests.len());
    for request in requests {
        let t0 = Instant::now();
        std::hint::black_box(executor.score_one(request, &mut scratch));
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    latencies
}

fn summarize(sorted_ns: &[u64]) -> LatencySummary {
    if sorted_ns.is_empty() {
        return LatencySummary {
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
            mean_us: 0.0,
            max_us: 0.0,
        };
    }
    let pct = |q: f64| -> f64 {
        let idx = ((q * (sorted_ns.len() - 1) as f64).round() as usize).min(sorted_ns.len() - 1);
        sorted_ns[idx] as f64 / 1_000.0
    };
    let mean_ns = sorted_ns.iter().sum::<u64>() as f64 / sorted_ns.len() as f64;
    LatencySummary {
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us: mean_ns / 1_000.0,
        // The empty case returned above, so `last` always exists.
        max_us: sorted_ns.last().copied().unwrap_or_default() as f64 / 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScoringEngine;
    use crate::executor::ServeConfig;
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};
    use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};

    fn pool(n: usize) -> Vec<ScoreRequest> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.61).fract();
                ScoreRequest {
                    pair_id: i as u64,
                    metric_row: vec![x, 1.0 - x],
                    classifier_output: x,
                    machine_says_match: x >= 0.5,
                }
            })
            .collect()
    }

    fn executor(threads: usize) -> ShardedExecutor {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.97),
            Rule::new(vec![Condition::new(1, CmpOp::Le, 0.3)], Label::Equivalent, 15, 0.93),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.92],
            support: vec![20, 15],
        };
        let engine = ScoringEngine::new(LearnRiskModel::new(fs, RiskModelConfig::default()));
        ShardedExecutor::new(engine, ServeConfig::default().with_threads(threads))
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_skewed() {
        let pool = pool(200);
        let config = ReplayConfig {
            requests: 5_000,
            zipf_exponent: 1.2,
            seed: 7,
        };
        let a = zipf_stream(&pool, &config);
        let b = zipf_stream(&pool, &config);
        assert_eq!(a.len(), 5_000);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.pair_id == y.pair_id),
            "same seed, same stream"
        );
        let c = zipf_stream(&pool, &ReplayConfig { seed: 8, ..config });
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.pair_id != y.pair_id),
            "different seed differs"
        );

        // Skew: the most popular pair dominates a uniform share by a wide
        // margin.
        let mut counts = vec![0usize; 200];
        for r in &a {
            counts[r.pair_id as usize] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        assert!(max > 5_000 / 200 * 10, "hot pair only drew {max} of 5000");
    }

    #[test]
    fn zipf_exponent_zero_is_roughly_uniform() {
        let pool = pool(10);
        let stream = zipf_stream(
            &pool,
            &ReplayConfig {
                requests: 10_000,
                zipf_exponent: 0.0,
                seed: 3,
            },
        );
        let mut counts = [0usize; 10];
        for r in &stream {
            counts[r.pair_id as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "pair {i} drew {c} of 10000");
        }
    }

    #[test]
    fn replay_reports_sane_numbers() {
        let pool = pool(50);
        let stream = zipf_stream(
            &pool,
            &ReplayConfig {
                requests: 2_000,
                ..Default::default()
            },
        );
        for threads in [1, 2] {
            let exec = executor(threads);
            let report = run_replay(&exec, &stream);
            assert_eq!(report.threads, threads);
            assert_eq!(report.requests, 2_000);
            assert!(report.throughput_rps > 0.0);
            assert!(report.elapsed_secs > 0.0);
            assert!(report.latency.p50_us <= report.latency.p95_us);
            assert!(report.latency.p95_us <= report.latency.p99_us);
            assert!(report.latency.p99_us <= report.latency.max_us);
            assert!(report.cache_hit_rate > 0.5, "zipf stream over 50 pairs must mostly hit");
        }
    }

    #[test]
    fn empty_stream_reports_zeroes() {
        let exec = executor(2);
        let report = run_replay(&exec, &[]);
        assert_eq!(report.requests, 0);
        assert_eq!(report.latency.p99_us, 0.0);
    }
}
