//! No-op stand-ins for `serde_derive`'s `Serialize` / `Deserialize` derives.
//!
//! The workspace only uses serde derives as annotations (no code in the tree
//! performs actual serialization), and the build environment has no network
//! access to crates.io, so these derives expand to nothing. Swapping the
//! `vendor/serde*` path dependencies for the real crates re-enables full
//! serialization support without touching any other source file.

use proc_macro::TokenStream;

/// Accepts everything `#[derive(Serialize)]` accepts and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts everything `#[derive(Deserialize)]` accepts and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
