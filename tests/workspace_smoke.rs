//! Workspace-wiring smoke test: every façade re-export must resolve, and a
//! minimal end-to-end round-trip (generate → match → rule-gen → risk-train →
//! score) must run through `er-eval::pipeline`. This guards the Cargo
//! workspace itself — manifest edges, façade re-exports, feature wiring —
//! independently of the heavier integration tests in `end_to_end.rs`.

use learnrisk_repro::base::{auroc, SplitRatio};
use learnrisk_repro::baselines::baseline_scores;
use learnrisk_repro::classifier::{MatcherKind, TrainConfig};
use learnrisk_repro::core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig, RiskTrainConfig};
use learnrisk_repro::datasets::{generate_benchmark, BenchmarkId};
use learnrisk_repro::eval::{run_pipeline, PipelineConfig};
use learnrisk_repro::rulegen::OneSidedTreeConfig;
use learnrisk_repro::serve::{ModelArtifact, ScoringEngine, ServeConfig, ShardedExecutor, FORMAT_VERSION};
use learnrisk_repro::similarity::edit::jaro_winkler;

/// Every workspace crate is reachable through the façade under its
/// re-exported name, and basic items from each resolve.
#[test]
fn facade_reexports_resolve() {
    // er-similarity
    assert!((jaro_winkler("learnrisk", "learnrisk") - 1.0).abs() < 1e-12);
    // er-base
    let a = auroc(&[0.9, 0.1], &[1, 0]);
    assert!((a - 1.0).abs() < 1e-12);
    // er-rulegen
    let rule_config = OneSidedTreeConfig::default();
    assert!(rule_config.max_depth >= 1);
    // learnrisk-core: a model is constructible from an empty feature set.
    let model = LearnRiskModel::new(RiskFeatureSet::default(), RiskModelConfig::default());
    assert_eq!(model.rule_weights.len(), 0);
    // er-baselines
    assert_eq!(baseline_scores(&[0.5, 0.9]).len(), 2);
    // er-serve
    assert_eq!(FORMAT_VERSION, 1);
}

/// One tiny train/eval round-trip through `er-eval::pipeline`.
#[test]
fn tiny_pipeline_round_trip() {
    let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.012, 7);
    let config = PipelineConfig {
        matcher: MatcherKind::Logistic,
        matcher_config: TrainConfig {
            epochs: 10,
            ..Default::default()
        },
        risk_train_config: RiskTrainConfig {
            epochs: 30,
            ..Default::default()
        },
        ensemble_members: 3,
        ..Default::default()
    };
    let (result, artifacts) = run_pipeline(&ds.workload, SplitRatio::new(3, 2, 5), &config);
    assert_eq!(result.dataset, ds.workload.name);
    assert!(result.test_size > 0);
    assert!(!result.methods.is_empty(), "pipeline produced no method results");
    for method in &result.methods {
        assert!(
            (0.0..=1.0).contains(&method.auroc),
            "{}: AUROC {} out of range",
            method.method,
            method.auroc
        );
        assert_eq!(method.scores.len(), result.test_size);
    }
    // The trained risk model scores the test inputs to finite values.
    for input in &artifacts.test_inputs {
        assert!(artifacts.risk_model.risk_score(input).is_finite());
    }

    // ...and serves through the façade: artifact round trip, compiled engine,
    // sharded executor — bit-identical to the in-memory model.
    let artifact = ModelArtifact::new(artifacts.risk_model.clone());
    let reloaded = ModelArtifact::from_json(&artifact.to_json()).expect("artifact round trip");
    let engine = ScoringEngine::new(reloaded.model);
    let executor = ShardedExecutor::new(engine.clone(), ServeConfig::default().with_threads(2));
    let pool = learnrisk_repro::eval::build_score_requests(
        &artifacts.evaluator,
        &artifacts.matcher,
        &ds.workload.pairs()[..ds.workload.len().min(50)],
    );
    let served = executor.score_batch(&pool);
    let direct = ScoringEngine::new(artifacts.risk_model.clone()).score_batch(&pool);
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(s.to_bits(), d.to_bits(), "served score diverged from the trained model");
    }
}
