//! The metric registry: basic similarity/difference metrics per attribute.
//!
//! Rule generation (Section 5.2 of the paper) searches over *basic metrics*
//! applied to attribute value pairs.  This module defines the metric kinds,
//! evaluates them over a pair of records and builds the default metric set for
//! a schema, following the Figure 5 taxonomy: the metric mix depends on the
//! attribute type.

use crate::difference as diff;
use crate::edit;
use crate::sequence;
use crate::token_sim::{self, IdfTable};
use crate::tokenize::{entities, tokens};
use er_base::{AttrType, AttrValue, Pair, Record, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a metric computed over one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    // ---- similarity metrics (higher = more similar) ----
    /// Normalized Levenshtein similarity.
    EditSimilarity,
    /// Jaro–Winkler similarity.
    JaroWinkler,
    /// Token Jaccard index.
    Jaccard,
    /// Token Dice coefficient.
    Dice,
    /// Token overlap coefficient.
    Overlap,
    /// Term-frequency cosine similarity.
    CosineTf,
    /// TF-IDF cosine similarity (requires corpus statistics).
    CosineTfIdf,
    /// Symmetric Monge–Elkan similarity.
    MongeElkan,
    /// Normalized longest-common-subsequence similarity.
    Lcs,
    /// Normalized longest-common-substring similarity.
    SubstringSim,
    /// Entity-level Jaccard over entity sets.
    EntityJaccard,
    /// Numeric equality indicator (1 = equal).
    NumericEqual,
    /// Negated normalized absolute numeric difference (1 = identical).
    NumericSimilarity,
    // ---- difference metrics (higher = more different) ----
    /// Neither value is a substring of the other.
    NonSubstring,
    /// Neither value is a prefix of the other.
    NonPrefix,
    /// Neither value is a suffix of the other.
    NonSuffix,
    /// Abbreviation-aware non-substring.
    AbbrNonSubstring,
    /// Abbreviation-aware non-prefix.
    AbbrNonPrefix,
    /// Abbreviation-aware non-suffix.
    AbbrNonSuffix,
    /// Entity sets have different cardinalities.
    DiffCardinality,
    /// Number of entities present in only one set.
    DistinctEntity,
    /// Number of key tokens present in only one value.
    DiffKeyToken,
    /// Numeric values differ.
    NumericNotEqual,
    /// Absolute numeric difference.
    NumericAbsDiff,
    /// Relative numeric difference.
    NumericRelDiff,
}

impl MetricKind {
    /// Whether larger values indicate *difference* (a difference metric) as
    /// opposed to similarity.
    pub fn is_difference(self) -> bool {
        matches!(
            self,
            MetricKind::NonSubstring
                | MetricKind::NonPrefix
                | MetricKind::NonSuffix
                | MetricKind::AbbrNonSubstring
                | MetricKind::AbbrNonPrefix
                | MetricKind::AbbrNonSuffix
                | MetricKind::DiffCardinality
                | MetricKind::DistinctEntity
                | MetricKind::DiffKeyToken
                | MetricKind::NumericNotEqual
                | MetricKind::NumericAbsDiff
                | MetricKind::NumericRelDiff
        )
    }

    /// Stable snake-case name, used when rendering rules.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::EditSimilarity => "edit_sim",
            MetricKind::JaroWinkler => "jaro_winkler",
            MetricKind::Jaccard => "jaccard",
            MetricKind::Dice => "dice",
            MetricKind::Overlap => "overlap",
            MetricKind::CosineTf => "cosine_tf",
            MetricKind::CosineTfIdf => "cosine_tfidf",
            MetricKind::MongeElkan => "monge_elkan",
            MetricKind::Lcs => "lcs",
            MetricKind::SubstringSim => "substring_sim",
            MetricKind::EntityJaccard => "entity_jaccard",
            MetricKind::NumericEqual => "num_equal",
            MetricKind::NumericSimilarity => "num_sim",
            MetricKind::NonSubstring => "non_substring",
            MetricKind::NonPrefix => "non_prefix",
            MetricKind::NonSuffix => "non_suffix",
            MetricKind::AbbrNonSubstring => "abbr_non_substring",
            MetricKind::AbbrNonPrefix => "abbr_non_prefix",
            MetricKind::AbbrNonSuffix => "abbr_non_suffix",
            MetricKind::DiffCardinality => "diff_cardinality",
            MetricKind::DistinctEntity => "distinct_entity",
            MetricKind::DiffKeyToken => "diff_key_token",
            MetricKind::NumericNotEqual => "num_not_equal",
            MetricKind::NumericAbsDiff => "num_abs_diff",
            MetricKind::NumericRelDiff => "num_rel_diff",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A basic metric bound to an attribute: the unit the rule generator searches
/// over (`sim(r1[A], r2[A])` / `diff(r1[A], r2[A])`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttrMetric {
    /// Index of the attribute in the schema.
    pub attr_index: usize,
    /// Attribute name (for interpretable rendering).
    pub attr_name: String,
    /// Metric kind.
    pub kind: MetricKind,
}

impl fmt::Display for AttrMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind, self.attr_name)
    }
}

/// Evaluates basic metrics over record pairs, with shared corpus statistics
/// (IDF tables per text attribute) collected once per workload.
#[derive(Debug, Clone)]
pub struct MetricEvaluator {
    schema: Arc<Schema>,
    metrics: Vec<AttrMetric>,
    /// One IDF table per attribute (empty tables for non-text attributes).
    idf: Vec<IdfTable>,
    /// Document-frequency ratio below which a token counts as a key token.
    pub key_token_max_df: f64,
}

impl MetricEvaluator {
    /// Builds an evaluator with the default metric set for the schema and
    /// corpus statistics gathered from the provided records.
    pub fn new<'a, I>(schema: Arc<Schema>, corpus: I) -> Self
    where
        I: IntoIterator<Item = &'a Record>,
        I::IntoIter: Clone,
    {
        let metrics = default_metrics(&schema);
        let mut idf = vec![IdfTable::new(); schema.len()];
        let iter = corpus.into_iter();
        for record in iter {
            for (i, attr) in schema.iter() {
                if attr.ty.is_string() {
                    if let Some(s) = record.values[i].as_str() {
                        idf[i].add_document(&tokens(s));
                    }
                }
            }
        }
        Self {
            schema,
            metrics,
            idf,
            key_token_max_df: 0.05,
        }
    }

    /// Builds an evaluator gathering corpus statistics from the records of a
    /// pair list (both sides).
    pub fn from_pairs(schema: Arc<Schema>, pairs: &[Pair]) -> Self {
        let mut evaluator = Self::new(Arc::clone(&schema), std::iter::empty::<&Record>());
        for p in pairs {
            for rec in [&p.left, &p.right] {
                for (i, attr) in schema.iter() {
                    if attr.ty.is_string() {
                        if let Some(s) = rec.values[i].as_str() {
                            evaluator.idf[i].add_document(&tokens(s));
                        }
                    }
                }
            }
        }
        evaluator
    }

    /// The metrics this evaluator computes, in order.
    pub fn metrics(&self) -> &[AttrMetric] {
        &self.metrics
    }

    /// The schema the evaluator was built for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of basic metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metrics are configured.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Restricts the evaluator to a custom metric list (used by tests and by
    /// dataset-specific configurations mirroring the paper's per-dataset
    /// metric counts).
    pub fn with_metrics(mut self, metrics: Vec<AttrMetric>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Evaluates a single metric on a pair of records.
    pub fn eval_metric(&self, metric: &AttrMetric, left: &Record, right: &Record) -> f64 {
        let a = &left.values[metric.attr_index];
        let b = &right.values[metric.attr_index];
        self.eval_values(metric, a, b)
    }

    /// Evaluates a single metric on two attribute values.
    pub fn eval_values(&self, metric: &AttrMetric, a: &AttrValue, b: &AttrValue) -> f64 {
        let idf = &self.idf[metric.attr_index];
        eval_metric_kind(metric.kind, a, b, idf, self.key_token_max_df)
    }

    /// Evaluates every configured metric on a pair of records, producing the
    /// basic-metric vector used by rule generation and classification.
    pub fn eval_all(&self, left: &Record, right: &Record) -> Vec<f64> {
        self.metrics.iter().map(|m| self.eval_metric(m, left, right)).collect()
    }

    /// Evaluates every metric for each pair, producing a row-major matrix.
    pub fn eval_pairs(&self, pairs: &[Pair]) -> Vec<Vec<f64>> {
        pairs.iter().map(|p| self.eval_all(&p.left, &p.right)).collect()
    }
}

/// Evaluates a metric kind over two attribute values.
///
/// Missing values yield a neutral result: similarity metrics return 0.5 (no
/// evidence either way would be ideal, but classifiers benefit from a constant
/// mid value) and difference metrics return 0 (no difference evidence), as
/// discussed in Section 5.1 of the paper.
pub fn eval_metric_kind(kind: MetricKind, a: &AttrValue, b: &AttrValue, idf: &IdfTable, key_df: f64) -> f64 {
    use MetricKind::*;
    // Numeric metrics read numbers; everything else reads strings.
    match kind {
        NumericEqual => {
            let (x, y) = (a.as_num(), b.as_num());
            match (x, y) {
                (Some(x), Some(y)) => {
                    if (x - y).abs() < 1e-9 {
                        1.0
                    } else {
                        0.0
                    }
                }
                _ => 0.5,
            }
        }
        NumericSimilarity => {
            let (x, y) = (a.as_num(), b.as_num());
            match (x, y) {
                (Some(x), Some(y)) => {
                    let denom = x.abs().max(y.abs());
                    if denom == 0.0 {
                        1.0
                    } else {
                        (1.0 - (x - y).abs() / denom).max(0.0)
                    }
                }
                _ => 0.5,
            }
        }
        NumericNotEqual => diff::numeric_not_equal(a.as_num(), b.as_num()),
        NumericAbsDiff => diff::numeric_abs_diff(a.as_num(), b.as_num()),
        NumericRelDiff => diff::numeric_rel_diff(a.as_num(), b.as_num()),
        _ => {
            let (sa, sb) = match (a.as_str(), b.as_str()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return if kind.is_difference() { 0.0 } else { 0.5 };
                }
            };
            match kind {
                EditSimilarity => edit::edit_similarity(sa, sb),
                JaroWinkler => edit::jaro_winkler(sa, sb),
                Jaccard => token_sim::jaccard(&tokens(sa), &tokens(sb)),
                Dice => token_sim::dice(&tokens(sa), &tokens(sb)),
                Overlap => token_sim::overlap(&tokens(sa), &tokens(sb)),
                CosineTf => token_sim::cosine_tf(&tokens(sa), &tokens(sb)),
                CosineTfIdf => idf.cosine_tfidf(&tokens(sa), &tokens(sb)),
                MongeElkan => token_sim::monge_elkan_sym(&tokens(sa), &tokens(sb)),
                Lcs => sequence::lcs_similarity(sa, sb),
                SubstringSim => sequence::substring_similarity(sa, sb),
                EntityJaccard => token_sim::jaccard(&entities(sa), &entities(sb)),
                NonSubstring => diff::non_substring(sa, sb),
                NonPrefix => diff::non_prefix(sa, sb),
                NonSuffix => diff::non_suffix(sa, sb),
                AbbrNonSubstring => diff::abbr_non_substring(sa, sb),
                AbbrNonPrefix => diff::abbr_non_prefix(sa, sb),
                AbbrNonSuffix => diff::abbr_non_suffix(sa, sb),
                DiffCardinality => diff::diff_cardinality(sa, sb),
                DistinctEntity => diff::distinct_entity(sa, sb),
                DiffKeyToken => diff::diff_key_token(sa, sb, idf, key_df),
                NumericEqual | NumericSimilarity | NumericNotEqual | NumericAbsDiff | NumericRelDiff => {
                    unreachable!("numeric kinds handled above")
                }
            }
        }
    }
}

/// Builds the default metric set for a schema, following the Figure 5 taxonomy.
pub fn default_metrics(schema: &Schema) -> Vec<AttrMetric> {
    let mut out = Vec::new();
    for (i, attr) in schema.iter() {
        let kinds: &[MetricKind] = match attr.ty {
            AttrType::EntityName => &[
                MetricKind::JaroWinkler,
                MetricKind::EditSimilarity,
                MetricKind::Jaccard,
                MetricKind::NonSubstring,
                MetricKind::AbbrNonSubstring,
                MetricKind::NonPrefix,
            ],
            AttrType::EntitySet => &[
                MetricKind::EntityJaccard,
                MetricKind::MongeElkan,
                MetricKind::DiffCardinality,
                MetricKind::DistinctEntity,
            ],
            AttrType::Text => &[
                MetricKind::Jaccard,
                MetricKind::CosineTfIdf,
                MetricKind::Lcs,
                MetricKind::EditSimilarity,
                MetricKind::DiffKeyToken,
            ],
            AttrType::Numeric => &[
                MetricKind::NumericEqual,
                MetricKind::NumericNotEqual,
                MetricKind::NumericRelDiff,
            ],
            AttrType::Categorical => &[MetricKind::EditSimilarity, MetricKind::NonSubstring],
        };
        for &kind in kinds {
            out.push(AttrMetric {
                attr_index: i,
                attr_name: attr.name.clone(),
                kind,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::{AttrDef, RecordId};

    fn paper_schema() -> Schema {
        Schema::new(vec![
            AttrDef::new("title", AttrType::Text),
            AttrDef::new("authors", AttrType::EntitySet),
            AttrDef::new("venue", AttrType::EntityName),
            AttrDef::new("year", AttrType::Numeric),
        ])
    }

    fn record(id: u32, title: &str, authors: &str, venue: &str, year: Option<f64>) -> Record {
        Record::new(
            RecordId(id),
            vec![
                AttrValue::from(title),
                AttrValue::from(authors),
                AttrValue::from(venue),
                year.map(AttrValue::Num).unwrap_or(AttrValue::Null),
            ],
        )
    }

    #[test]
    fn default_metric_mix_follows_attribute_types() {
        let schema = paper_schema();
        let metrics = default_metrics(&schema);
        // Text: 5, EntitySet: 4, EntityName: 6, Numeric: 3.
        assert_eq!(metrics.len(), 18);
        assert!(metrics
            .iter()
            .any(|m| m.attr_name == "year" && m.kind == MetricKind::NumericNotEqual));
        assert!(metrics
            .iter()
            .any(|m| m.attr_name == "authors" && m.kind == MetricKind::DistinctEntity));
        assert!(metrics
            .iter()
            .any(|m| m.attr_name == "title" && m.kind == MetricKind::DiffKeyToken));
        assert!(metrics
            .iter()
            .any(|m| m.attr_name == "venue" && m.kind == MetricKind::AbbrNonSubstring));
    }

    #[test]
    fn evaluator_computes_all_metrics() {
        let schema = Arc::new(paper_schema());
        let r1 = record(
            0,
            "Efficient Processing of Spatial Joins",
            "T Brinkhoff, H Kriegel, B Seeger",
            "SIGMOD",
            Some(1993.0),
        );
        let r2 = record(
            1,
            "Efficient Processing of Spatial Joins Using R-Trees",
            "T Brinkhoff, H Kriegel, B Seeger",
            "SIGMOD Conference",
            Some(1993.0),
        );
        let r3 = record(
            2,
            "The Design of Postgres",
            "M Stonebraker, L Rowe",
            "SIGMOD",
            Some(1986.0),
        );
        let corpus = [r1.clone(), r2.clone(), r3.clone()];
        let evaluator = MetricEvaluator::new(Arc::clone(&schema), corpus.iter());
        let v12 = evaluator.eval_all(&r1, &r2);
        let v13 = evaluator.eval_all(&r1, &r3);
        assert_eq!(v12.len(), evaluator.len());
        // Find jaccard(title) position and compare.
        let idx_jaccard = evaluator
            .metrics()
            .iter()
            .position(|m| m.attr_name == "title" && m.kind == MetricKind::Jaccard)
            .unwrap();
        assert!(v12[idx_jaccard] > v13[idx_jaccard]);
        // Year inequality fires for the unrelated pair only.
        let idx_year = evaluator
            .metrics()
            .iter()
            .position(|m| m.attr_name == "year" && m.kind == MetricKind::NumericNotEqual)
            .unwrap();
        assert_eq!(v12[idx_year], 0.0);
        assert_eq!(v13[idx_year], 1.0);
    }

    #[test]
    fn missing_values_are_neutral() {
        let schema = Arc::new(paper_schema());
        let evaluator = MetricEvaluator::new(Arc::clone(&schema), std::iter::empty::<&Record>());
        let full = record(0, "A Title", "A Smith", "VLDB", Some(2000.0));
        let hole = Record::new(
            RecordId(1),
            vec![AttrValue::Null, AttrValue::Null, AttrValue::Null, AttrValue::Null],
        );
        for (metric, value) in evaluator.metrics().iter().zip(evaluator.eval_all(&full, &hole)) {
            if metric.kind.is_difference() {
                assert_eq!(
                    value, 0.0,
                    "difference metric {metric} should give no evidence on nulls"
                );
            } else {
                assert_eq!(value, 0.5, "similarity metric {metric} should be neutral on nulls");
            }
        }
    }

    #[test]
    fn metric_kind_classification() {
        assert!(MetricKind::DistinctEntity.is_difference());
        assert!(MetricKind::NumericNotEqual.is_difference());
        assert!(!MetricKind::Jaccard.is_difference());
        assert!(!MetricKind::NumericEqual.is_difference());
        assert_eq!(MetricKind::Lcs.name(), "lcs");
        assert_eq!(format!("{}", MetricKind::DiffKeyToken), "diff_key_token");
    }

    #[test]
    fn attr_metric_display() {
        let m = AttrMetric {
            attr_index: 3,
            attr_name: "year".into(),
            kind: MetricKind::NumericNotEqual,
        };
        assert_eq!(m.to_string(), "num_not_equal(year)");
    }

    #[test]
    fn evaluator_from_pairs_builds_idf() {
        let schema = Arc::new(paper_schema());
        let r1 = Arc::new(record(0, "rare gem title", "A", "V", Some(1.0)));
        let r2 = Arc::new(record(1, "common words here", "B", "V", Some(1.0)));
        let pairs = vec![Pair::new(er_base::PairId(0), r1, r2, er_base::Label::Inequivalent)];
        let ev = MetricEvaluator::from_pairs(Arc::clone(&schema), &pairs);
        assert_eq!(ev.eval_pairs(&pairs).len(), 1);
        assert!(!ev.is_empty());
    }
}
