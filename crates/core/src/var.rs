//! Value-at-Risk (VaR) and Conditional Value-at-Risk (CVaR) risk metrics
//! (Section 6.1 of the paper).
//!
//! Given a pair's equivalence-probability distribution and the machine's
//! label, VaR at confidence θ is the largest mislabeling probability after
//! excluding the worst `1 − θ` of outcomes:
//!
//! * machine label *unmatching*: loss = equivalence probability, so
//!   `VaR = F⁻¹(θ)` (Eq. 9);
//! * machine label *matching*: loss = 1 − equivalence probability, so
//!   `VaR = 1 − F⁻¹(1 − θ)` (Eq. 10).

use crate::distribution::{Normal, TruncatedNormal};
use serde::{Deserialize, Serialize};

/// Which risk metric quantifies the loss distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RiskMetric {
    /// Value at Risk at the configured confidence level (the paper's choice).
    ValueAtRisk,
    /// Conditional Value at Risk (expected loss beyond the VaR quantile),
    /// the metric used by the StaticRisk baseline.
    ConditionalValueAtRisk,
    /// Plain expected loss (ignores variance) — the ablation showing why the
    /// distributional view matters.
    Expectation,
}

/// Computes the mislabeling risk of a pair from its equivalence-probability
/// distribution (`mean`, `std`, truncated to `[0,1]`), the machine label and
/// the confidence level θ.
pub fn pair_risk(metric: RiskMetric, mean: f64, std: f64, machine_says_match: bool, theta: f64) -> f64 {
    assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
    let dist = TruncatedNormal::unit(Normal::new(mean, std.max(0.0)));
    match metric {
        RiskMetric::ValueAtRisk => {
            if machine_says_match {
                1.0 - dist.quantile(1.0 - theta)
            } else {
                dist.quantile(theta)
            }
        }
        RiskMetric::ConditionalValueAtRisk => cvar(&dist, machine_says_match, theta),
        RiskMetric::Expectation => {
            let m = dist.mean();
            if machine_says_match {
                1.0 - m
            } else {
                m
            }
        }
    }
}

/// CVaR: the expected loss conditional on the loss exceeding its θ-quantile,
/// approximated by averaging the quantile function over `[θ, 1]`.
fn cvar(dist: &TruncatedNormal, machine_says_match: bool, theta: f64) -> f64 {
    const STEPS: usize = 32;
    let mut total = 0.0;
    for k in 0..STEPS {
        let p = theta + (1.0 - theta) * (k as f64 + 0.5) / STEPS as f64;
        let loss = if machine_says_match {
            1.0 - dist.quantile(1.0 - p)
        } else {
            dist.quantile(p)
        };
        total += loss;
    }
    total / STEPS as f64
}

/// The *training-time* risk score: the same VaR formula but computed on the
/// untruncated normal so it is differentiable everywhere.
///
/// For a machine label of unmatching, `γ = μ + z_θ σ`; for matching,
/// `γ = (1 − μ) + z_θ σ`.  Clamping to `[0,1]` (the truncation) is applied
/// only when reporting final scores, not during optimization, so gradients do
/// not vanish at the boundary.
pub fn training_risk_score(mean: f64, std: f64, machine_says_match: bool, z_theta: f64) -> f64 {
    if machine_says_match {
        (1.0 - mean) + z_theta * std
    } else {
        mean + z_theta * std
    }
}

/// Gradients of [`training_risk_score`] with respect to the pair's mean and
/// standard deviation.
pub fn training_risk_gradients(machine_says_match: bool, z_theta: f64) -> (f64, f64) {
    let d_mean = if machine_says_match { -1.0 } else { 1.0 };
    (d_mean, z_theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::stats::std_normal_quantile;

    #[test]
    fn var_direction_follows_machine_label() {
        // A pair labeled unmatching with a high equivalence expectation is risky.
        let risky = pair_risk(RiskMetric::ValueAtRisk, 0.8, 0.05, false, 0.9);
        let safe = pair_risk(RiskMetric::ValueAtRisk, 0.1, 0.05, false, 0.9);
        assert!(risky > safe);
        // A pair labeled matching with low equivalence expectation is risky.
        let risky_m = pair_risk(RiskMetric::ValueAtRisk, 0.2, 0.05, true, 0.9);
        let safe_m = pair_risk(RiskMetric::ValueAtRisk, 0.95, 0.05, true, 0.9);
        assert!(risky_m > safe_m);
    }

    #[test]
    fn variance_increases_var_risk() {
        // Same expectation, larger fluctuation ⇒ larger VaR (the fluctuation
        // risk the paper argues DNN output misses).
        let low_var = pair_risk(RiskMetric::ValueAtRisk, 0.3, 0.02, false, 0.9);
        let high_var = pair_risk(RiskMetric::ValueAtRisk, 0.3, 0.25, false, 0.9);
        assert!(high_var > low_var);
    }

    #[test]
    fn var_is_bounded_in_unit_interval() {
        for &(mean, std, label) in &[(0.0, 0.5, true), (1.0, 0.5, false), (0.5, 1.5, true), (0.9, 0.0, false)] {
            let v = pair_risk(RiskMetric::ValueAtRisk, mean, std, label, 0.9);
            assert!((0.0..=1.0).contains(&v), "VaR {v} out of range");
        }
    }

    #[test]
    fn paper_figure7_example_shape() {
        // Figure 7: an unmatching-labeled pair whose distribution puts θ = the
        // area left of ~0.757; VaR is the θ-quantile.  Reproduce the shape: the
        // quantile of the truncated distribution at θ=0.9.
        let dist = TruncatedNormal::unit(Normal::new(0.6, 0.12));
        let var = pair_risk(RiskMetric::ValueAtRisk, 0.6, 0.12, false, 0.9);
        assert!((dist.quantile(0.9) - var).abs() < 1e-12);
        assert!(var > 0.6 && var < 1.0);
    }

    #[test]
    fn cvar_dominates_var() {
        // CVaR averages the tail beyond VaR, so it is at least as large.
        for &(mean, std) in &[(0.4, 0.1), (0.7, 0.2), (0.2, 0.05)] {
            let var = pair_risk(RiskMetric::ValueAtRisk, mean, std, false, 0.9);
            let cvar = pair_risk(RiskMetric::ConditionalValueAtRisk, mean, std, false, 0.9);
            assert!(cvar >= var - 1e-9, "CVaR {cvar} < VaR {var}");
        }
    }

    #[test]
    fn expectation_metric_ignores_variance() {
        let a = pair_risk(RiskMetric::Expectation, 0.3, 0.01, false, 0.9);
        let b = pair_risk(RiskMetric::Expectation, 0.3, 0.01, true, 0.9);
        assert!(a < 0.5 && b > 0.5);
        // For a (near-)symmetric in-range distribution the truncated mean is
        // essentially the mean, regardless of θ.
        assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_score_matches_untruncated_quantile() {
        let z = std_normal_quantile(0.9);
        let score = training_risk_score(0.4, 0.1, false, z);
        assert!((score - (0.4 + z * 0.1)).abs() < 1e-12);
        let score_m = training_risk_score(0.4, 0.1, true, z);
        assert!((score_m - (0.6 + z * 0.1)).abs() < 1e-12);
        let (dm, ds) = training_risk_gradients(false, z);
        assert_eq!(dm, 1.0);
        assert_eq!(ds, z);
        let (dm, _) = training_risk_gradients(true, z);
        assert_eq!(dm, -1.0);
    }

    #[test]
    fn training_score_agrees_with_var_away_from_boundaries() {
        // When the distribution is well inside [0,1], the truncated and
        // untruncated quantiles coincide closely.
        let z = std_normal_quantile(0.9);
        let var = pair_risk(RiskMetric::ValueAtRisk, 0.5, 0.05, false, 0.9);
        let train = training_risk_score(0.5, 0.05, false, z);
        assert!((var - train).abs() < 1e-3, "{var} vs {train}");
    }
}
