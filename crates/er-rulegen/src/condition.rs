//! Rule conditions: threshold comparisons over basic metric values.

use er_similarity::AttrMetric;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator of a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Metric value strictly greater than the threshold.
    Gt,
    /// Metric value less than or equal to the threshold.
    Le,
}

impl CmpOp {
    /// The opposite operator (used for the sibling branch of a split).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Le => CmpOp::Gt,
        }
    }

    /// Symbol for rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
        }
    }
}

/// A single condition `metric(attr) <op> threshold` over the basic-metric
/// vector of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Index into the basic-metric vector.
    pub metric_index: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Threshold value chosen by the tree builder.
    pub threshold: f64,
}

impl Condition {
    /// Creates a condition.
    pub fn new(metric_index: usize, op: CmpOp, threshold: f64) -> Self {
        Self {
            metric_index,
            op,
            threshold,
        }
    }

    /// Whether a metric vector satisfies the condition.
    pub fn matches(&self, metrics: &[f64]) -> bool {
        let v = metrics[self.metric_index];
        match self.op {
            CmpOp::Gt => v > self.threshold,
            CmpOp::Le => v <= self.threshold,
        }
    }

    /// The sibling condition (same split, other side).
    pub fn negated(&self) -> Condition {
        Condition {
            metric_index: self.metric_index,
            op: self.op.negated(),
            threshold: self.threshold,
        }
    }

    /// Renders the condition using metric metadata, e.g.
    /// `"num_not_equal(year) > 0.500"`.
    pub fn render(&self, metrics: &[AttrMetric]) -> String {
        let m = &metrics[self.metric_index];
        format!(
            "{}({}) {} {:.3}",
            m.kind.name(),
            m.attr_name,
            self.op.symbol(),
            self.threshold
        )
    }

    /// Approximate equality used for rule deduplication.
    pub fn approx_eq(&self, other: &Condition) -> bool {
        self.metric_index == other.metric_index
            && self.op == other.op
            && (self.threshold - other.threshold).abs() < 1e-9
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{} {} {:.3}", self.metric_index, self.op.symbol(), self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_similarity::MetricKind;

    #[test]
    fn matching_semantics() {
        let c = Condition::new(1, CmpOp::Gt, 0.5);
        assert!(c.matches(&[0.0, 0.7]));
        assert!(!c.matches(&[0.0, 0.5]));
        let n = c.negated();
        assert_eq!(n.op, CmpOp::Le);
        assert!(n.matches(&[0.0, 0.5]));
        assert!(!n.matches(&[0.0, 0.7]));
    }

    #[test]
    fn rendering_uses_metric_names() {
        let metrics = vec![AttrMetric {
            attr_index: 3,
            attr_name: "year".into(),
            kind: MetricKind::NumericNotEqual,
        }];
        let c = Condition::new(0, CmpOp::Gt, 0.5);
        assert_eq!(c.render(&metrics), "num_not_equal(year) > 0.500");
        assert_eq!(c.to_string(), "m0 > 0.500");
        assert_eq!(CmpOp::Le.symbol(), "<=");
    }

    #[test]
    fn approx_equality() {
        let a = Condition::new(2, CmpOp::Le, 0.25);
        let b = Condition::new(2, CmpOp::Le, 0.25 + 1e-12);
        let c = Condition::new(2, CmpOp::Gt, 0.25);
        assert!(a.approx_eq(&b));
        assert!(!a.approx_eq(&c));
    }
}
