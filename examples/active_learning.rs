//! Risk-driven active learning (the paper's Figure 14 / Section 8 scenario):
//! starting from a 128-pair seed, iteratively acquire 64-pair batches chosen
//! by LeastConfidence, Entropy or LearnRisk, and compare the resulting F1
//! learning curves of the ER classifier.
//!
//! ```bash
//! cargo run --release --example active_learning
//! ```

use learnrisk_repro::classifier::TrainConfig;
use learnrisk_repro::datasets::{generate_benchmark, BenchmarkId};
use learnrisk_repro::eval::{run_active_learning, ActiveLearningConfig, SelectionStrategy};

fn main() {
    let dataset = generate_benchmark(BenchmarkId::DblpScholar, 0.03, 11);
    let pairs = dataset.workload.pairs();
    let pool_size = pairs.len() * 6 / 10;
    let pool = &pairs[..pool_size];
    let test = &pairs[pool_size..];
    println!(
        "Pool: {} unlabeled pairs; test: {} pairs; seed 128, batch 64",
        pool.len(),
        test.len()
    );

    let config = ActiveLearningConfig {
        rounds: 6,
        matcher_config: TrainConfig {
            epochs: 30,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut curves = Vec::new();
    for strategy in [
        SelectionStrategy::LeastConfidence,
        SelectionStrategy::Entropy,
        SelectionStrategy::LearnRisk,
    ] {
        let curve = run_active_learning(dataset.workload.left_schema.clone(), pool, test, strategy, &config);
        curves.push(curve);
    }

    println!("\n{:<18} F1 per labeled-set size", "Strategy");
    for curve in &curves {
        print!("{:<18}", curve.strategy);
        for point in &curve.points {
            print!(" {}→{:.3}", point.labeled, point.f1);
        }
        println!("   (mean F1 {:.3})", curve.mean_f1());
    }

    let best = curves
        .iter()
        .max_by(|a, b| a.mean_f1().partial_cmp(&b.mean_f1()).unwrap())
        .expect("at least one curve");
    println!("\nMost label-efficient strategy on this workload: {}", best.strategy);
}
