//! Integration tests of the dataset substrate: the synthetic benchmarks must
//! reproduce the paper's Table 2 shapes and produce workloads on which a
//! trained classifier is good but imperfect (otherwise the risk-analysis
//! experiments would be vacuous).

use learnrisk_repro::base::SplitRatio;
use learnrisk_repro::classifier::{ErMatcher, MatcherKind, TrainConfig};
use learnrisk_repro::datasets::{benchmark_config, generate_benchmark, table2, BenchmarkId};
use learnrisk_repro::similarity::MetricEvaluator;
use std::sync::Arc;

#[test]
fn table2_shapes_match_the_paper() {
    let rows = table2(0.02, 9);
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert_eq!(row.generated_attributes, row.paper_attributes, "{}", row.dataset);
        // Match rates of the generated workloads are in the same low regime as
        // the paper's (well under 50%), and never zero.
        let rate = row.generated_matches as f64 / row.generated_size as f64;
        assert!(rate > 0.0 && rate < 0.3, "{}: match rate {rate}", row.dataset);
    }
    // Relative dataset ordering by paper size is preserved in the configs.
    assert!(BenchmarkId::Songs.paper_size() > BenchmarkId::AbtBuy.paper_size());
    assert!(BenchmarkId::AbtBuy.paper_size() > BenchmarkId::DblpScholar.paper_size());
    assert!(BenchmarkId::DblpScholar.paper_size() > BenchmarkId::AmazonGoogle.paper_size());
}

#[test]
fn scale_one_configs_reproduce_paper_sizes() {
    for id in BenchmarkId::paper_datasets() {
        let config = benchmark_config(id, 1.0, 1);
        assert_eq!(config.target_pairs, id.paper_size(), "{id:?}");
    }
}

#[test]
fn every_benchmark_yields_an_imperfect_but_useful_classifier() {
    for id in BenchmarkId::paper_datasets() {
        let ds = generate_benchmark(id, 0.02, 77);
        let workload = &ds.workload;
        let mut rng = learnrisk_repro::base::rng::seeded(77);
        let split = workload.split_by_ratio(SplitRatio::new(3, 2, 5), &mut rng);
        let train = workload.select(&split.train);
        let test = workload.select(&split.test);
        let evaluator = MetricEvaluator::from_pairs(Arc::clone(&workload.left_schema), &train);
        let mut matcher = ErMatcher::new(
            evaluator,
            MatcherKind::Logistic,
            TrainConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        matcher.train(&train);
        let labeled = matcher.label_workload("it", &test);
        let accuracy = labeled.classifier_accuracy();
        assert!(accuracy > 0.75, "{id:?}: classifier accuracy too low ({accuracy:.3})");
        assert!(
            labeled.mislabeled_count() > 0,
            "{id:?}: classifier is perfect — workload too easy for risk analysis"
        );
        let f1 = labeled.classifier_f1();
        assert!(f1 > 0.3, "{id:?}: classifier F1 too low ({f1:.3})");
    }
}

#[test]
fn blocking_keeps_workloads_far_below_the_cross_product() {
    let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.02, 5);
    let cross_product = ds.left.len() * ds.right.len();
    assert!(
        ds.workload.len() * 10 < cross_product,
        "candidate set ({}) should be much smaller than the cross product ({})",
        ds.workload.len(),
        cross_product
    );
}

#[test]
fn dedup_workload_never_pairs_a_record_with_itself() {
    let ds = generate_benchmark(BenchmarkId::Songs, 0.01, 6);
    for pair in ds.workload.pairs() {
        assert!(
            !(std::sync::Arc::ptr_eq(&pair.left, &pair.right)),
            "dedup workload contains a self pair"
        );
    }
}
