//! Ablation study of the design choices called out in `DESIGN.md`:
//!
//! 1. risk metric — VaR (paper) vs plain expectation vs CVaR;
//! 2. classifier-output influence feature — with vs without;
//! 3. learnable parameters — trained vs prior-only (fixed weights/variances);
//! 4. rule features — one-sided rules (paper) vs none (classifier output only).
//!
//! Prints LearnRisk AUROC for each variant on a DS-style workload.

use er_base::SplitRatio;
use er_datasets::{generate_benchmark, BenchmarkId};
use er_eval::{build_inputs_from_labeled, PipelineConfig};
use er_similarity::MetricEvaluator;
use learnrisk_core::{
    evaluate_auroc, train as train_risk, LearnRiskModel, PairRiskInput, RiskFeatureSet, RiskMetric, RiskModelConfig,
    RiskTrainConfig,
};
use std::sync::Arc;

fn main() {
    let config = er_bench::config_from_args(0.05);
    let ds = generate_benchmark(BenchmarkId::DblpScholar, config.scale, config.seed);
    let workload = &ds.workload;
    let mut rng = er_base::rng::substream(config.seed, 0xE0);
    let split = workload.split_by_ratio(SplitRatio::new(3, 2, 5), &mut rng);
    let train = workload.select(&split.train);
    let valid = workload.select(&split.valid);
    let test = workload.select(&split.test);

    // Shared classifier and rule generation.
    let pipeline = PipelineConfig::default();
    let evaluator = MetricEvaluator::from_pairs(Arc::clone(&workload.left_schema), &train);
    let mut matcher = er_classifier::ErMatcher::new(evaluator.clone(), pipeline.matcher, pipeline.matcher_config);
    matcher.train(&train);
    let valid_labeled = matcher.label_workload("ablation-valid", &valid);
    let test_labeled = matcher.label_workload("ablation-test", &test);

    let train_rows = evaluator.eval_pairs(&train);
    let train_labels: Vec<er_base::Label> = train.iter().map(|p| p.truth).collect();
    let rules = er_rulegen::generate_rules(&train_rows, &train_labels, pipeline.rule_config);
    let feature_set = RiskFeatureSet::from_training(rules, evaluator.metrics().to_vec(), &train_rows, &train_labels);

    println!("Ablation study on {} (scale {}):", workload.name, config.scale);
    println!("  classifier F1 on test: {:.3}", test_labeled.classifier_f1());
    println!("  mislabeled test pairs: {}", test_labeled.mislabeled_count());
    println!("  generated rules: {}", feature_set.len());
    println!();
    println!("{:<44} {:>8}", "Variant", "AUROC");

    let variants: Vec<(&str, RiskModelConfig, bool, bool)> = vec![
        (
            "LearnRisk (VaR, trained, rules+output)",
            RiskModelConfig::default(),
            true,
            true,
        ),
        (
            "risk metric = expectation (no variance)",
            RiskModelConfig {
                metric: RiskMetric::Expectation,
                ..Default::default()
            },
            true,
            true,
        ),
        (
            "risk metric = CVaR",
            RiskModelConfig {
                metric: RiskMetric::ConditionalValueAtRisk,
                ..Default::default()
            },
            true,
            true,
        ),
        ("prior only (no risk training)", RiskModelConfig::default(), false, true),
        (
            "classifier output only (no rules)",
            RiskModelConfig::default(),
            true,
            false,
        ),
    ];

    for (name, risk_config, do_train, use_rules) in variants {
        let fs = if use_rules {
            feature_set.clone()
        } else {
            RiskFeatureSet {
                rules: vec![],
                metrics: vec![],
                expectations: vec![],
                support: vec![],
            }
        };
        let mut model = LearnRiskModel::new(fs, risk_config);
        let valid_inputs: Vec<PairRiskInput> = build_inputs_from_labeled(&evaluator, &model.features, &valid_labeled);
        let test_inputs: Vec<PairRiskInput> = build_inputs_from_labeled(&evaluator, &model.features, &test_labeled);
        if do_train {
            train_risk(
                &mut model,
                &valid_inputs,
                &RiskTrainConfig {
                    epochs: 120,
                    ..Default::default()
                },
            );
        }
        let auroc = evaluate_auroc(&model, &test_inputs);
        println!("{name:<44} {auroc:>8.3}");
    }
}
