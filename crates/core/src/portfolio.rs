//! Portfolio aggregation of risk-feature distributions (Eq. 2–3 of the paper).
//!
//! Each labeled pair is a *portfolio* whose component *stocks* are its risk
//! features.  The pair's equivalence-probability distribution is the weighted
//! aggregate of the feature distributions:
//!
//! ```text
//! μ_i  = Σ_j x_ij w_j μ_j   /  Σ_j x_ij w_j
//! σ_i² = Σ_j x_ij w_j² σ_j² / (Σ_j x_ij w_j)²
//! ```
//!
//! The division by the total active weight keeps μ a convex combination of the
//! feature expectations (and hence a valid probability); the paper's Eq. 2–3
//! assume the weights of the active features are already normalized — this
//! module performs that normalization explicitly.
//!
//! # Layouts and the canonical reduction order
//!
//! Aggregation is evaluated once per pair per forward/gradient pass, which
//! makes it the dominant per-input cost in both training and serving.  Two
//! layouts implement the *identical* arithmetic:
//!
//! * **AoS** — [`aggregate`] / [`component_gradients`] over
//!   `&[PortfolioComponent]`: the reference path, kept for interpretation
//!   output and as the bit-compared oracle in the property tests;
//! * **SoA** — [`ComponentBlock`]: weights, means and standard deviations in
//!   three separate contiguous `f64` slabs, reduced in one fused pass the
//!   compiler can autovectorize (contiguous lane-wide loads instead of
//!   strided struct gathers).
//!
//! Both reduce in the same canonical *chunk order*: [`LANES`] independent
//! lane accumulators over chunks of [`LANES`] components, the lanes combined
//! pairwise in a fixed tree, then the tail components folded in index order.
//! Because every accumulator chain performs the same operations in the same
//! order in both layouts, SoA results are bit-identical to AoS results — the
//! property suite in `crates/core/tests/portfolio_properties.rs` asserts
//! exactly that.

use serde::{Deserialize, Serialize};

/// Lane width of the canonical chunked reduction.  Four `f64` lanes fill a
/// 256-bit vector register (and two 128-bit ones on baseline x86-64), which
/// is what lets the compiler turn the lane loop into SIMD adds without any
/// nightly intrinsics.
pub const LANES: usize = 4;

// The pairwise lane-combination tree below requires a power-of-two width.
const _: () = assert!(LANES.is_power_of_two());

/// Combines the lane accumulators in a fixed pairwise tree (adjacent pairs,
/// then pairs of pairs) — the canonical order both layouts share.  Deriving
/// the tree from [`LANES`] (instead of spelling out four lanes) means
/// retuning the lane width for a wider ISA cannot silently drop lanes.
#[inline]
fn combine_lanes(lanes: [f64; LANES]) -> f64 {
    let mut vals = lanes;
    let mut width = LANES;
    while width > 1 {
        width /= 2;
        for i in 0..width {
            vals[i] = vals[2 * i] + vals[2 * i + 1];
        }
    }
    vals[0]
}

/// One active feature of a pair's portfolio: its weight and distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioComponent {
    /// Feature weight `w_j > 0`.
    pub weight: f64,
    /// Feature expectation `μ_j ∈ [0, 1]`.
    pub mean: f64,
    /// Feature standard deviation `σ_j ≥ 0`.
    pub std: f64,
}

/// The aggregated distribution of a pair plus the intermediate sums needed for
/// analytic gradients during training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioDistribution {
    /// Aggregated expectation μ_i.
    pub mean: f64,
    /// Aggregated variance σ_i².
    pub variance: f64,
    /// Sum of active weights `s = Σ x_ij w_j`.
    pub weight_sum: f64,
}

impl PortfolioDistribution {
    /// Aggregated standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// Why a portfolio could not be aggregated.
///
/// The panicking [`aggregate`] paths are fine for trusted in-process data,
/// but the serving engine scores externally supplied artifacts and requests,
/// where a malformed portfolio must degrade to a request error instead of
/// killing a worker thread — that path uses [`try_aggregate`] /
/// [`ComponentBlock::try_aggregate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PortfolioError {
    /// The portfolio has no components.
    Empty,
    /// The total active weight is not `> 0` (zero, negative, or NaN).
    NonPositiveWeight {
        /// The offending total weight.
        weight_sum: f64,
    },
}

impl std::fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortfolioError::Empty => write!(f, "a portfolio needs at least one component"),
            PortfolioError::NonPositiveWeight { weight_sum } => {
                write!(f, "total portfolio weight must be positive, got {weight_sum}")
            }
        }
    }
}

impl std::error::Error for PortfolioError {}

/// Canonical chunk-order sum of `f(component)` over an AoS slice: [`LANES`]
/// lane accumulators over full chunks, lanes combined in a fixed pairwise
/// tree, tail folded in index order.  The SoA kernels perform the identical
/// chains, which is what makes the two layouts bit-comparable.
#[inline]
fn chunked_sum(components: &[PortfolioComponent], f: impl Fn(&PortfolioComponent) -> f64) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut chunks = components.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, c) in lanes.iter_mut().zip(chunk) {
            *lane += f(c);
        }
    }
    let mut total = combine_lanes(lanes);
    for c in chunks.remainder() {
        total += f(c);
    }
    total
}

/// Builds the aggregate from the three canonical sums.
#[inline]
fn distribution_from_sums(weight_sum: f64, weighted_mean_sum: f64, weighted_var_sum: f64) -> PortfolioDistribution {
    PortfolioDistribution {
        mean: weighted_mean_sum / weight_sum,
        variance: weighted_var_sum / (weight_sum * weight_sum),
        weight_sum,
    }
}

/// Aggregates the component distributions of a pair (AoS reference path).
///
/// # Panics
/// Panics when `components` is empty or the total weight is not positive.
/// [`try_aggregate`] is the non-panicking form.
#[inline]
pub fn aggregate(components: &[PortfolioComponent]) -> PortfolioDistribution {
    match try_aggregate(components) {
        Ok(distribution) => distribution,
        Err(PortfolioError::Empty) => panic!("a portfolio needs at least one component"),
        Err(PortfolioError::NonPositiveWeight { .. }) => panic!("total portfolio weight must be positive"),
    }
}

/// Fallible [`aggregate`]: an empty portfolio or a non-positive total weight
/// becomes a [`PortfolioError`] instead of a panic.
#[inline]
pub fn try_aggregate(components: &[PortfolioComponent]) -> Result<PortfolioDistribution, PortfolioError> {
    if components.is_empty() {
        return Err(PortfolioError::Empty);
    }
    let weight_sum = chunked_sum(components, |c| c.weight);
    // NaN compares Greater to nothing, so a poisoned sum also lands here.
    if weight_sum.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(PortfolioError::NonPositiveWeight { weight_sum });
    }
    let weighted_mean_sum = chunked_sum(components, |c| c.weight * c.mean);
    let weighted_var_sum = chunked_sum(components, |c| c.weight * c.weight * c.std * c.std);
    Ok(distribution_from_sums(weight_sum, weighted_mean_sum, weighted_var_sum))
}

/// Gradients of the aggregated `(μ_i, σ_i)` with respect to one component's
/// weight, mean and standard deviation.  Used by the risk-model trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentGradients {
    /// ∂μ_i / ∂w_j
    pub d_mean_d_weight: f64,
    /// ∂σ_i / ∂w_j
    pub d_std_d_weight: f64,
    /// ∂σ_i / ∂σ_j
    pub d_std_d_component_std: f64,
    /// ∂μ_i / ∂μ_j
    pub d_mean_d_component_mean: f64,
}

/// The per-portfolio constants of the canonical gradient formulas: the
/// divisions of the textbook forms are hoisted into three reciprocals
/// computed once per aggregate, leaving the per-component terms
/// multiply-only (≈5 divisions per component in the pre-SoA formulas, the
/// dominant cost of the gradient pass).  Both layouts derive the identical
/// constants from the identical aggregate, so hoisting preserves the
/// AoS-vs-SoA bit-exactness guarantee.
#[derive(Debug, Clone, Copy)]
struct GradientConstants {
    inv_s: f64,
    inv_ss: f64,
    inv_two_sigma: f64,
}

impl GradientConstants {
    #[inline]
    fn of(aggregate: &PortfolioDistribution) -> Self {
        let inv_s = 1.0 / aggregate.weight_sum;
        Self {
            inv_s,
            inv_ss: inv_s * inv_s,
            inv_two_sigma: 1.0 / (2.0 * aggregate.std().max(1e-9)),
        }
    }
}

/// The gradient formulas, shared verbatim by the AoS and SoA paths so the
/// two layouts produce bit-identical derivatives.
#[inline]
fn gradients_for(
    weight: f64,
    mean: f64,
    std: f64,
    aggregate: &PortfolioDistribution,
    k: GradientConstants,
) -> ComponentGradients {
    let s = aggregate.weight_sum;
    // μ_i = Σ w μ / s  ⇒  ∂μ_i/∂w_j = (μ_j - μ_i) / s.
    let d_mean_d_weight = (mean - aggregate.mean) * k.inv_s;
    // σ_i² = A / s² with A = Σ w² σ² ⇒
    // ∂σ_i²/∂w_j = 2 w_j σ_j² / s² − 2 A / s³ = 2 (w_j σ_j² − s σ_i²) / s²,
    // and ∂σ_i/∂w_j = ∂σ_i²/∂w_j / (2 σ_i).
    let d_std_d_weight = 2.0 * (weight * std * std - s * aggregate.variance) * k.inv_ss * k.inv_two_sigma;
    // ∂σ_i²/∂σ_j = 2 w_j² σ_j / s²  ⇒  ∂σ_i/∂σ_j = ∂σ_i²/∂σ_j / (2 σ_i).
    let d_std_d_component_std = 2.0 * weight * weight * std * k.inv_ss * k.inv_two_sigma;
    // ∂μ_i/∂μ_j = w_j / s.
    let d_mean_d_component_mean = weight * k.inv_s;
    ComponentGradients {
        d_mean_d_weight,
        d_std_d_weight,
        d_std_d_component_std,
        d_mean_d_component_mean,
    }
}

/// Computes the gradients of the aggregate with respect to component `j`
/// (AoS reference path).
#[inline]
pub fn component_gradients(
    components: &[PortfolioComponent],
    aggregate: &PortfolioDistribution,
    j: usize,
) -> ComponentGradients {
    let c = components[j];
    gradients_for(c.weight, c.mean, c.std, aggregate, GradientConstants::of(aggregate))
}

/// A portfolio in structure-of-arrays layout: weights, means and standard
/// deviations in three separate contiguous `f64` slabs.
///
/// This is the hot-path form of a component list: the trainer's forward and
/// gradient passes and the serving engine fill a reusable block per pair and
/// aggregate it with [`ComponentBlock::aggregate`], whose fused chunked
/// reduction the compiler autovectorizes.  All arithmetic is bit-identical
/// to the AoS reference ([`aggregate`] / [`component_gradients`]); see the
/// module docs for the canonical reduction order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentBlock {
    weights: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ComponentBlock {
    /// Creates an empty block; the slabs grow on first fill and are reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a block with pre-allocated slab capacity.
    pub fn with_capacity(components: usize) -> Self {
        Self {
            weights: Vec::with_capacity(components),
            means: Vec::with_capacity(components),
            stds: Vec::with_capacity(components),
        }
    }

    /// Removes every component, keeping the slab allocations.
    pub fn clear(&mut self) {
        self.weights.clear();
        self.means.clear();
        self.stds.clear();
    }

    /// Reserves slab capacity for at least `additional` more components.
    pub fn reserve(&mut self, additional: usize) {
        self.weights.reserve(additional);
        self.means.reserve(additional);
        self.stds.reserve(additional);
    }

    /// Appends one component.
    #[inline]
    pub fn push(&mut self, weight: f64, mean: f64, std: f64) {
        self.weights.push(weight);
        self.means.push(mean);
        self.stds.push(std);
    }

    /// Number of components in the block.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the block holds no components.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight slab.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The expectation slab.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The standard-deviation slab.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Component `j` in AoS form (for interpretation and tests; the hot paths
    /// read the slabs directly).
    pub fn component(&self, j: usize) -> PortfolioComponent {
        PortfolioComponent {
            weight: self.weights[j],
            mean: self.means[j],
            std: self.stds[j],
        }
    }

    /// Refills the block from an AoS component list (cleared first).
    pub fn copy_from(&mut self, components: &[PortfolioComponent]) {
        self.clear();
        self.reserve(components.len());
        for c in components {
            self.push(c.weight, c.mean, c.std);
        }
    }

    /// The canonical chunked sums: `(Σ w, Σ w μ, Σ w² σ²)` in one fused pass
    /// over the three slabs.  Each accumulator chain is identical to the AoS
    /// [`chunked_sum`] chain for the corresponding quantity, so the fusion
    /// changes memory traffic but not one bit of the result.
    #[inline]
    fn fused_sums(&self) -> (f64, f64, f64) {
        let mut weight_lanes = [0.0f64; LANES];
        let mut mean_lanes = [0.0f64; LANES];
        let mut var_lanes = [0.0f64; LANES];
        let mut weight_chunks = self.weights.chunks_exact(LANES);
        let mut mean_chunks = self.means.chunks_exact(LANES);
        let mut std_chunks = self.stds.chunks_exact(LANES);
        for ((w4, m4), s4) in (&mut weight_chunks).zip(&mut mean_chunks).zip(&mut std_chunks) {
            for lane in 0..LANES {
                let w = w4[lane];
                weight_lanes[lane] += w;
                mean_lanes[lane] += w * m4[lane];
                var_lanes[lane] += w * w * s4[lane] * s4[lane];
            }
        }
        let mut weight_sum = combine_lanes(weight_lanes);
        let mut weighted_mean_sum = combine_lanes(mean_lanes);
        let mut weighted_var_sum = combine_lanes(var_lanes);
        for ((&w, &m), &s) in weight_chunks
            .remainder()
            .iter()
            .zip(mean_chunks.remainder())
            .zip(std_chunks.remainder())
        {
            weight_sum += w;
            weighted_mean_sum += w * m;
            weighted_var_sum += w * w * s * s;
        }
        (weight_sum, weighted_mean_sum, weighted_var_sum)
    }

    /// Aggregates the block (SoA fast path, bit-identical to [`aggregate`]).
    ///
    /// # Panics
    /// Panics when the block is empty or the total weight is not positive;
    /// [`ComponentBlock::try_aggregate`] is the non-panicking form.
    #[inline]
    pub fn aggregate(&self) -> PortfolioDistribution {
        match self.try_aggregate() {
            Ok(distribution) => distribution,
            Err(PortfolioError::Empty) => panic!("a portfolio needs at least one component"),
            Err(PortfolioError::NonPositiveWeight { .. }) => panic!("total portfolio weight must be positive"),
        }
    }

    /// Fallible [`ComponentBlock::aggregate`]: an empty block or non-positive
    /// total weight becomes a [`PortfolioError`] instead of a panic.  The
    /// serving request path uses this so a malformed artifact or request
    /// degrades to an error response.
    #[inline]
    pub fn try_aggregate(&self) -> Result<PortfolioDistribution, PortfolioError> {
        if self.is_empty() {
            return Err(PortfolioError::Empty);
        }
        let (weight_sum, weighted_mean_sum, weighted_var_sum) = self.fused_sums();
        // NaN compares Greater to nothing, so a poisoned sum also lands here.
        if weight_sum.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(PortfolioError::NonPositiveWeight { weight_sum });
        }
        Ok(distribution_from_sums(weight_sum, weighted_mean_sum, weighted_var_sum))
    }

    /// Gradients of the aggregate with respect to component `j` — the same
    /// scalar formulas as the AoS [`component_gradients`], reading the slabs.
    #[inline]
    pub fn component_gradients(&self, aggregate: &PortfolioDistribution, j: usize) -> ComponentGradients {
        gradients_for(
            self.weights[j],
            self.means[j],
            self.stds[j],
            aggregate,
            GradientConstants::of(aggregate),
        )
    }

    /// Computes the gradient terms of *every* component in one elementwise
    /// pass into `out` (cleared and resized first).  Each element applies the
    /// exact per-component formulas of [`component_gradients`] — including
    /// the hoisted per-portfolio reciprocals, so the loop body is
    /// multiply-only — making the bulk pass bit-identical to `len()` scalar
    /// calls while letting the compiler vectorize the slab arithmetic; the
    /// trainer's gradient pass consumes the terms from here.
    pub fn component_gradients_into(&self, aggregate: &PortfolioDistribution, out: &mut GradientBlock) {
        let n = self.len();
        out.resize(n);
        let k = GradientConstants::of(aggregate);
        let (mean_i, var_i, s) = (aggregate.mean, aggregate.variance, aggregate.weight_sum);
        // Explicit equal-length subslices let the compiler drop the bounds
        // checks and vectorize the multiply-only loop body.
        let (weights, means, stds) = (&self.weights[..n], &self.means[..n], &self.stds[..n]);
        let d_mean_d_weight = &mut out.d_mean_d_weight[..n];
        let d_std_d_weight = &mut out.d_std_d_weight[..n];
        let d_std_d_component_std = &mut out.d_std_d_component_std[..n];
        let d_mean_d_component_mean = &mut out.d_mean_d_component_mean[..n];
        for j in 0..n {
            let (w, m, sd) = (weights[j], means[j], stds[j]);
            d_mean_d_weight[j] = (m - mean_i) * k.inv_s;
            d_std_d_weight[j] = 2.0 * (w * sd * sd - s * var_i) * k.inv_ss * k.inv_two_sigma;
            d_std_d_component_std[j] = 2.0 * w * w * sd * k.inv_ss * k.inv_two_sigma;
            d_mean_d_component_mean[j] = w * k.inv_s;
        }
    }
}

/// Per-component gradient terms of a whole portfolio in SoA layout — the
/// output of [`ComponentBlock::component_gradients_into`], one slab per
/// [`ComponentGradients`] field.
#[derive(Debug, Clone, Default)]
pub struct GradientBlock {
    /// ∂μ_i / ∂w_j per component.
    pub d_mean_d_weight: Vec<f64>,
    /// ∂σ_i / ∂w_j per component.
    pub d_std_d_weight: Vec<f64>,
    /// ∂σ_i / ∂σ_j per component.
    pub d_std_d_component_std: Vec<f64>,
    /// ∂μ_i / ∂μ_j per component.
    pub d_mean_d_component_mean: Vec<f64>,
}

impl GradientBlock {
    /// Creates an empty block; the slabs grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of components the block currently holds terms for.
    pub fn len(&self) -> usize {
        self.d_mean_d_weight.len()
    }

    /// Whether the block holds no terms.
    pub fn is_empty(&self) -> bool {
        self.d_mean_d_weight.is_empty()
    }

    /// The terms of component `j` in scalar form.
    pub fn gradients(&self, j: usize) -> ComponentGradients {
        ComponentGradients {
            d_mean_d_weight: self.d_mean_d_weight[j],
            d_std_d_weight: self.d_std_d_weight[j],
            d_std_d_component_std: self.d_std_d_component_std[j],
            d_mean_d_component_mean: self.d_mean_d_component_mean[j],
        }
    }

    fn resize(&mut self, n: usize) {
        for slab in [
            &mut self.d_mean_d_weight,
            &mut self.d_std_d_weight,
            &mut self.d_std_d_component_std,
            &mut self.d_mean_d_component_mean,
        ] {
            // The caller overwrites every element, so same-size reuse (the
            // common case across a gradient pass) must not pay a zero-fill.
            if slab.len() != n {
                slab.resize(n, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Vec<PortfolioComponent> {
        vec![
            PortfolioComponent {
                weight: 1.0,
                mean: 0.9,
                std: 0.05,
            },
            PortfolioComponent {
                weight: 2.0,
                mean: 0.1,
                std: 0.20,
            },
            PortfolioComponent {
                weight: 0.5,
                mean: 0.5,
                std: 0.10,
            },
        ]
    }

    fn block_of(components: &[PortfolioComponent]) -> ComponentBlock {
        let mut block = ComponentBlock::new();
        block.copy_from(components);
        block
    }

    #[test]
    fn aggregate_is_a_weighted_average() {
        let agg = aggregate(&example());
        let expected_mean = (1.0 * 0.9 + 2.0 * 0.1 + 0.5 * 0.5) / 3.5;
        assert!((agg.mean - expected_mean).abs() < 1e-12);
        let expected_var = (1.0 * 0.0025 + 4.0 * 0.04 + 0.25 * 0.01) / (3.5 * 3.5);
        assert!((agg.variance - expected_var).abs() < 1e-12);
        assert!((agg.weight_sum - 3.5).abs() < 1e-12);
        assert!((agg.std() - expected_var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregate_mean_stays_in_unit_interval() {
        let agg = aggregate(&example());
        assert!((0.0..=1.0).contains(&agg.mean));
        // Single component: aggregate equals the component.
        let single = aggregate(&[PortfolioComponent {
            weight: 3.0,
            mean: 0.7,
            std: 0.2,
        }]);
        assert!((single.mean - 0.7).abs() < 1e-12);
        assert!((single.std() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn higher_weight_pulls_mean_toward_component() {
        let mut comps = example();
        let before = aggregate(&comps).mean;
        comps[0].weight = 10.0; // component with mean 0.9
        let after = aggregate(&comps).mean;
        assert!(after > before);
    }

    #[test]
    fn soa_aggregate_is_bit_identical_to_aos() {
        // Lengths straddling the lane width exercise the full-chunk loop, the
        // fixed lane-combination tree and the tail fold.
        for n in 1..=3 * LANES + 1 {
            let comps: Vec<PortfolioComponent> = (0..n)
                .map(|i| PortfolioComponent {
                    weight: 0.3 + 0.7 * i as f64,
                    mean: (i as f64 * 0.37).fract(),
                    std: (i as f64 * 0.11).fract() * 0.5,
                })
                .collect();
            let aos = aggregate(&comps);
            let soa = block_of(&comps).aggregate();
            assert_eq!(aos.mean.to_bits(), soa.mean.to_bits(), "n = {n}");
            assert_eq!(aos.variance.to_bits(), soa.variance.to_bits(), "n = {n}");
            assert_eq!(aos.weight_sum.to_bits(), soa.weight_sum.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn soa_gradients_are_bit_identical_to_aos() {
        let comps: Vec<PortfolioComponent> = (0..11)
            .map(|i| PortfolioComponent {
                weight: 0.1 + i as f64,
                mean: (i as f64 * 0.29).fract(),
                std: 0.05 + (i as f64 * 0.13).fract() * 0.3,
            })
            .collect();
        let agg = aggregate(&comps);
        let block = block_of(&comps);
        let mut bulk = GradientBlock::new();
        block.component_gradients_into(&agg, &mut bulk);
        assert_eq!(bulk.len(), comps.len());
        for j in 0..comps.len() {
            let aos = component_gradients(&comps, &agg, j);
            let soa = block.component_gradients(&agg, j);
            assert_eq!(aos, soa, "scalar SoA gradients diverged at j = {j}");
            assert_eq!(aos, bulk.gradients(j), "bulk SoA gradients diverged at j = {j}");
        }
    }

    #[test]
    fn block_reuse_is_stateless() {
        let mut block = ComponentBlock::with_capacity(8);
        block.copy_from(&example());
        let first = block.aggregate();
        block.copy_from(&example());
        let again = block.aggregate();
        assert_eq!(first.mean.to_bits(), again.mean.to_bits());
        assert_eq!(block.len(), 3);
        assert_eq!(block.component(1).weight, 2.0);
        block.clear();
        assert!(block.is_empty());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let comps = example();
        let agg = aggregate(&comps);
        let eps = 1e-6;
        for j in 0..comps.len() {
            let grads = component_gradients(&comps, &agg, j);
            // Weight perturbation.
            let mut plus = comps.clone();
            plus[j].weight += eps;
            let mut minus = comps.clone();
            minus[j].weight -= eps;
            let num_mean = (aggregate(&plus).mean - aggregate(&minus).mean) / (2.0 * eps);
            let num_std = (aggregate(&plus).std() - aggregate(&minus).std()) / (2.0 * eps);
            assert!((num_mean - grads.d_mean_d_weight).abs() < 1e-5, "j={j}");
            assert!((num_std - grads.d_std_d_weight).abs() < 1e-5, "j={j}");
            // Component std perturbation.
            let mut plus = comps.clone();
            plus[j].std += eps;
            let mut minus = comps.clone();
            minus[j].std -= eps;
            let num = (aggregate(&plus).std() - aggregate(&minus).std()) / (2.0 * eps);
            assert!((num - grads.d_std_d_component_std).abs() < 1e-5, "j={j}");
            // Component mean perturbation.
            let mut plus = comps.clone();
            plus[j].mean += eps;
            let mut minus = comps.clone();
            minus[j].mean -= eps;
            let num = (aggregate(&plus).mean - aggregate(&minus).mean) / (2.0 * eps);
            assert!((num - grads.d_mean_d_component_mean).abs() < 1e-5, "j={j}");
        }
    }

    #[test]
    fn try_aggregate_reports_empty_and_non_positive_portfolios() {
        assert_eq!(try_aggregate(&[]), Err(PortfolioError::Empty));
        assert_eq!(ComponentBlock::new().try_aggregate(), Err(PortfolioError::Empty));
        let zero = [PortfolioComponent {
            weight: 0.0,
            mean: 0.5,
            std: 0.1,
        }];
        assert!(matches!(
            try_aggregate(&zero),
            Err(PortfolioError::NonPositiveWeight { weight_sum }) if weight_sum == 0.0
        ));
        assert!(matches!(
            block_of(&zero).try_aggregate(),
            Err(PortfolioError::NonPositiveWeight { weight_sum }) if weight_sum == 0.0
        ));
        // NaN weights poison the sum: also a non-positive-weight error.
        let nan = [PortfolioComponent {
            weight: f64::NAN,
            mean: 0.5,
            std: 0.1,
        }];
        assert!(matches!(
            try_aggregate(&nan),
            Err(PortfolioError::NonPositiveWeight { .. })
        ));
        // Error messages stay descriptive for request-level reporting.
        assert!(PortfolioError::Empty.to_string().contains("at least one component"));
        assert!(PortfolioError::NonPositiveWeight { weight_sum: -1.0 }
            .to_string()
            .contains("positive"));
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_portfolio_panics() {
        aggregate(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_portfolio_panics() {
        aggregate(&[PortfolioComponent {
            weight: 0.0,
            mean: 0.5,
            std: 0.1,
        }]);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_block_panics() {
        ComponentBlock::new().aggregate();
    }
}
