//! Criterion micro-benchmarks of the factorized training epoch's inner
//! loops — the forward-score pass and the gradient pass separately, plus the
//! λ sweep and the per-pair reference epoch — so a regression in either pass
//! is visible without running the full `train_bench` binary.  The passes run
//! on the SoA (`ComponentBlock`) hot path; `benches/aggregation.rs` isolates
//! the underlying portfolio kernels against the AoS reference.

use criterion::{criterion_group, criterion_main, Criterion};
use er_eval::ExperimentConfig;
use learnrisk_core::{
    loss_and_gradient, sample_rank_pairs, ComponentBlock, EpochScratch, GradientBlock, LearnRiskModel, PairRiskInput,
    RiskTrainConfig,
};

/// DS-style risk-training setup shared by every bench (and with the
/// `train_bench` binary, via [`er_bench::train_workload`]): a trained-shape
/// model plus inputs from a synthetic ~80%-accurate classifier, so mislabeled
/// pairs exist and the rank-pair list is non-trivial.
fn setup() -> (LearnRiskModel, Vec<PairRiskInput>, Vec<(u32, u32)>) {
    let workload = er_bench::train_workload(&ExperimentConfig { scale: 0.03, seed: 9 }, 0.8);
    let rank_pairs = sample_rank_pairs(&workload.inputs, 4000, &mut er_base::rng::seeded(10));
    assert!(!rank_pairs.is_empty(), "bench workload must yield rank pairs");
    (workload.model, workload.inputs, rank_pairs)
}

fn bench_train_epoch(c: &mut Criterion) {
    let (model, inputs, rank_pairs) = setup();
    let config = RiskTrainConfig::default();
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);

    group.bench_function("forward_pass", |b| {
        let mut scratch = EpochScratch::new();
        b.iter(|| {
            scratch.forward_pass(&model, &inputs, 1);
            criterion::black_box(scratch.scores().len())
        })
    });

    group.bench_function("lambda_pass", |b| {
        let mut scratch = EpochScratch::new();
        scratch.forward_pass(&model, &inputs, 1);
        b.iter(|| criterion::black_box(scratch.lambda_pass(&inputs, &rank_pairs)))
    });

    group.bench_function("gradient_pass", |b| {
        let mut scratch = EpochScratch::new();
        scratch.forward_pass(&model, &inputs, 1);
        scratch.lambda_pass(&inputs, &rank_pairs);
        let mut grad = vec![0.0; model.param_count()];
        b.iter(|| {
            scratch.gradient_pass(&model, &inputs, 1, &mut grad);
            criterion::black_box(grad[0])
        })
    });

    group.bench_function("factorized_epoch", |b| {
        let mut scratch = EpochScratch::new();
        let mut grad = vec![0.0; model.param_count()];
        b.iter(|| {
            criterion::black_box(scratch.factorized_loss_and_gradient(
                &model,
                &inputs,
                &rank_pairs,
                &config,
                1,
                &mut grad,
            ))
        })
    });

    group.bench_function("per_pair_reference_epoch", |b| {
        b.iter(|| criterion::black_box(loss_and_gradient(&model, &inputs, &rank_pairs, &config)))
    });

    // The per-input portfolio math of the gradient pass in isolation (SoA
    // fill + fused aggregate + bulk gradient terms) — the kernel the SoA
    // refactor rebuilt, over the same inputs as the full passes above.
    group.bench_function("portfolio_math_per_input", |b| {
        let mut block = ComponentBlock::new();
        let mut terms = GradientBlock::new();
        b.iter(|| {
            let mut acc = 0.0;
            for input in &inputs {
                model.components_into_block(input, &mut block);
                let agg = block.aggregate();
                block.component_gradients_into(&agg, &mut terms);
                acc += agg.mean + terms.d_std_d_weight.iter().sum::<f64>();
            }
            criterion::black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_train_epoch);
criterion_main!(benches);
