//! Standalone gateway: consistent-hash routing, hedging and canary
//! promotion across a fleet of `er-serve` backends.
//!
//! ```text
//! er-gateway --backend 127.0.0.1:7101 --backend 127.0.0.1:7102 \
//!            --baseline out/model.json [--canary 1] [--listen 127.0.0.1:0] \
//!            [--hedge-after-ms 30] [--health-interval-ms 500] [--eject-after 3] \
//!            [--shadow-sample-bp 2000] [--min-samples 64] \
//!            [--divergence-threshold 1e-9] [--ladder 500,2500,5000] \
//!            [--no-auto-advance]
//! ```
//!
//! Prints a single machine-readable `LISTENING <addr> backends=<n>` line on
//! stdout once bound, then serves until killed. `--canary` takes a backend
//! *index* (repeatable) naming which backends hold candidate artifacts
//! during a canary; without it `/reload` refuses and the gateway is a plain
//! router.

use er_gateway::{CanaryConfig, GatewayConfig, GatewayServer};
use std::io::Write;
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: er-gateway --backend <addr:port>... --baseline <model.json> \
         [--canary <backend-index>]... [--listen <addr:port>] [--hedge-after-ms <n|0>] \
         [--upstream-timeout-ms <n>] [--health-interval-ms <n>] [--eject-after <n>] \
         [--shadow-sample-bp <n>] [--min-samples <n>] [--divergence-threshold <f>] \
         [--ladder <bp,bp,...>] [--no-auto-advance]"
    );
    std::process::exit(2);
}

fn parse_config() -> GatewayConfig {
    let mut config = GatewayConfig::default();
    let mut canary = CanaryConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--backend" => {
                let raw = value("--backend");
                match raw.parse::<SocketAddr>() {
                    Ok(addr) => config.backends.push(addr),
                    Err(e) => {
                        eprintln!("bad --backend {raw:?}: {e}");
                        usage();
                    }
                }
            }
            "--canary" => match value("--canary").parse::<usize>() {
                Ok(index) => config.canary_backends.push(index),
                Err(_) => usage(),
            },
            "--baseline" => config.baseline_artifact = value("--baseline"),
            "--listen" => config.listen = value("--listen"),
            "--hedge-after-ms" => {
                let ms: u64 = value("--hedge-after-ms").parse().unwrap_or(30);
                config.hedge_after = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--upstream-timeout-ms" => {
                let ms: u64 = value("--upstream-timeout-ms").parse().unwrap_or(10_000);
                config.upstream_timeout = Duration::from_millis(ms.max(1));
            }
            "--health-interval-ms" => {
                let ms: u64 = value("--health-interval-ms").parse().unwrap_or(500);
                config.health_interval = Duration::from_millis(ms.max(10));
            }
            "--eject-after" => config.eject_after = value("--eject-after").parse().unwrap_or(3),
            "--vnodes" => config.vnodes = value("--vnodes").parse().unwrap_or(128),
            "--shadow-sample-bp" => canary.shadow_sample_bp = value("--shadow-sample-bp").parse().unwrap_or(2_000),
            "--min-samples" => canary.min_samples = value("--min-samples").parse().unwrap_or(64),
            "--divergence-threshold" => {
                canary.divergence_threshold = value("--divergence-threshold").parse().unwrap_or(1e-9)
            }
            "--ladder" => {
                let parsed: Option<Vec<u32>> = value("--ladder").split(',').map(|r| r.trim().parse().ok()).collect();
                match parsed {
                    Some(ladder) if !ladder.is_empty() => canary.ladder = ladder,
                    _ => usage(),
                }
            }
            "--no-auto-advance" => canary.auto_advance = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if config.backends.is_empty() {
        eprintln!("--backend is required (repeat once per er-serve process)");
        usage();
    }
    if config.baseline_artifact.is_empty() {
        eprintln!("--baseline is required (the artifact path rollbacks restore)");
        usage();
    }
    config.canary = canary;
    config
}

fn main() {
    let config = parse_config();
    let backends = config.backends.len();
    let server = match GatewayServer::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("er-gateway: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // The one line a supervising parent scrapes to learn the bound port.
    println!("LISTENING {} backends={backends}", server.local_addr());
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}
