//! Cross-cutting properties of the factorized risk trainer:
//!
//! * **factorization correctness** — for random models and risk-training
//!   inputs, the factorized epoch (`EpochScratch`) reproduces the per-pair
//!   reference `loss_and_gradient` within 1e-9 on the loss and on every
//!   gradient component;
//! * **thread determinism** — training with 1 thread and with N threads
//!   produces bit-identical loss curves and final parameters (the sharded
//!   gradient reduction runs in fixed chunk order).

use er_base::Label;
use er_rulegen::{CmpOp, Condition, Rule};
use learnrisk_core::{
    flatten_params, loss_and_gradient, sample_rank_pairs, train_with_threads, EpochScratch, LearnRiskModel,
    PairRiskInput, RiskFeatureSet, RiskModelConfig, RiskTrainConfig,
};
use proptest::prelude::*;

/// Rule features every generated model carries.
const RULES: usize = 3;

/// A model over [`RULES`] toy rules with learnable parameters drawn from
/// their feasible ranges (the same ranges the trainer projects onto).
fn model_from(weights: Vec<f64>, rsds: Vec<f64>, alpha: f64, beta: f64) -> LearnRiskModel {
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 50, 0.95),
        Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Equivalent, 40, 0.95),
        Rule::new(vec![Condition::new(0, CmpOp::Le, 0.2)], Label::Equivalent, 30, 0.9),
    ];
    let fs = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.05, 0.95, 0.8],
        support: vec![50, 40, 30],
    };
    let mut model = LearnRiskModel::new(
        fs,
        RiskModelConfig {
            output_buckets: 4,
            ..Default::default()
        },
    );
    model.rule_weights = weights;
    model.rule_rsd = rsds;
    model.influence.alpha = alpha;
    model.influence.beta = beta;
    model
}

/// Decodes `(rule bitmask, classifier output, flags)` rows into risk inputs.
fn inputs_from(rows: Vec<(usize, f64, u8, u8)>) -> Vec<PairRiskInput> {
    rows.into_iter()
        .map(|(mask, output, says, label)| PairRiskInput {
            rule_indices: (0..RULES as u32).filter(|i| mask & (1 << i) != 0).collect(),
            classifier_output: output,
            machine_says_match: says == 1,
            risk_label: label % 2,
        })
        .collect()
}

fn arb_case() -> impl Strategy<Value = (LearnRiskModel, Vec<PairRiskInput>)> {
    (
        proptest::collection::vec((0usize..(1 << RULES), 0.0f64..1.0, 0u8..2, 0u8..2), 8..120),
        proptest::collection::vec(1e-3f64..5.0, RULES..RULES + 1),
        proptest::collection::vec(1e-3f64..1.5, RULES..RULES + 1),
        (0.05f64..2.0, 0.0f64..10.0),
    )
        .prop_map(|(rows, weights, rsds, (alpha, beta))| (model_from(weights, rsds, alpha, beta), inputs_from(rows)))
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factorized_epoch_matches_per_pair_reference(case in arb_case(), seed in 0u64..1000) {
        let (model, inputs) = &case;
        let mut rng = er_base::rng::seeded(seed);
        let rank_pairs = sample_rank_pairs(inputs, 400, &mut rng);
        if rank_pairs.is_empty() {
            // Degenerate label draw (all-correct or all-mislabeled): nothing
            // to rank, nothing to compare.
            return Ok(());
        }
        let config = RiskTrainConfig::default();
        let (loss_ref, grad_ref) = loss_and_gradient(model, inputs, &rank_pairs, &config);
        let mut scratch = EpochScratch::new();
        let mut grad = vec![0.0; model.param_count()];
        for threads in [1usize, 4] {
            let loss = scratch.factorized_loss_and_gradient(model, inputs, &rank_pairs, &config, threads, &mut grad);
            prop_assert!((loss - loss_ref).abs() < 1e-9, "threads {}: loss {} vs {}", threads, loss, loss_ref);
            for (idx, (f, r)) in grad.iter().zip(&grad_ref).enumerate() {
                prop_assert!((f - r).abs() < 1e-9, "threads {}, param {}: {} vs {}", threads, idx, f, r);
            }
        }
    }

    #[test]
    fn training_is_bit_deterministic_across_thread_counts(case in arb_case(), threads in 2usize..8) {
        let (model, inputs) = &case;
        let config = RiskTrainConfig {
            epochs: 8,
            max_rank_pairs: 300,
            ..Default::default()
        };
        let mut single = model.clone();
        let single_report = train_with_threads(&mut single, inputs, &config, 1);
        let mut multi = model.clone();
        let multi_report = train_with_threads(&mut multi, inputs, &config, threads);
        prop_assert_eq!(bits(&single_report.losses), bits(&multi_report.losses));
        prop_assert_eq!(bits(&flatten_params(&single)), bits(&flatten_params(&multi)));
        prop_assert_eq!(single_report.rank_pair_counts, multi_report.rank_pair_counts);
    }
}
