//! Regenerates Figure 13 (scalability of rule generation and risk training).
use er_eval::{render_scalability, run_fig13};

fn main() {
    let config = er_bench::config_from_args(0.05);
    let sizes = [500, 1000, 2000, 3000, 4000, 6000];
    let points = run_fig13(&config, &sizes);
    println!("{}", render_scalability(&points));
}
