//! Cross-cutting properties of the factorized risk trainer:
//!
//! * **factorization correctness** — for random models and risk-training
//!   inputs, the factorized epoch (`EpochScratch`) reproduces the per-pair
//!   reference `loss_and_gradient` within 1e-9 on the loss and on every
//!   gradient component;
//! * **thread determinism** — training with 1 thread and with N threads
//!   produces bit-identical loss curves and final parameters (the sharded
//!   gradient reduction runs in fixed chunk order);
//! * **layout invariance** — the SoA (`ComponentBlock`) trainer reproduces
//!   an AoS-layout replica of the factorized epoch *bit-exactly*: the
//!   structure-of-arrays refactor changes memory layout, never one bit of
//!   the learned parameters.

use er_base::rng::substream;
use er_base::stats::{clamp_prob, safe_ln, sigmoid};
use er_base::Label;
use er_rulegen::{CmpOp, Condition, Rule};
use learnrisk_core::var::{training_risk_gradients, training_risk_score};
use learnrisk_core::{
    aggregate, component_gradients, flatten_params, loss_and_gradient, sample_rank_pairs, train_with_threads,
    unflatten_params, EpochScratch, LearnRiskModel, PairRiskInput, RankPairSampler, RiskFeatureSet, RiskModelConfig,
    RiskTrainConfig, TrainReport,
};
use proptest::prelude::*;

/// Rule features every generated model carries.
const RULES: usize = 3;

/// A model over [`RULES`] toy rules with learnable parameters drawn from
/// their feasible ranges (the same ranges the trainer projects onto).
fn model_from(weights: Vec<f64>, rsds: Vec<f64>, alpha: f64, beta: f64) -> LearnRiskModel {
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 50, 0.95),
        Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Equivalent, 40, 0.95),
        Rule::new(vec![Condition::new(0, CmpOp::Le, 0.2)], Label::Equivalent, 30, 0.9),
    ];
    let fs = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.05, 0.95, 0.8],
        support: vec![50, 40, 30],
    };
    let mut model = LearnRiskModel::new(
        fs,
        RiskModelConfig {
            output_buckets: 4,
            ..Default::default()
        },
    );
    model.rule_weights = weights;
    model.rule_rsd = rsds;
    model.influence.alpha = alpha;
    model.influence.beta = beta;
    model
}

/// Decodes `(rule bitmask, classifier output, flags)` rows into risk inputs.
fn inputs_from(rows: Vec<(usize, f64, u8, u8)>) -> Vec<PairRiskInput> {
    rows.into_iter()
        .map(|(mask, output, says, label)| PairRiskInput {
            rule_indices: (0..RULES as u32).filter(|i| mask & (1 << i) != 0).collect(),
            classifier_output: output,
            machine_says_match: says == 1,
            risk_label: label % 2,
        })
        .collect()
}

fn arb_case() -> impl Strategy<Value = (LearnRiskModel, Vec<PairRiskInput>)> {
    (
        proptest::collection::vec((0usize..(1 << RULES), 0.0f64..1.0, 0u8..2, 0u8..2), 8..120),
        proptest::collection::vec(1e-3f64..5.0, RULES..RULES + 1),
        proptest::collection::vec(1e-3f64..1.5, RULES..RULES + 1),
        (0.05f64..2.0, 0.0f64..10.0),
    )
        .prop_map(|(rows, weights, rsds, (alpha, beta))| (model_from(weights, rsds, alpha, beta), inputs_from(rows)))
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Mirrors the trainer's private gradient-chunk size: the chunk grid is part
/// of the canonical reduction order, so the AoS replica must shard the same
/// way to be bit-comparable.
const GRAD_CHUNK: usize = 128;

/// Scatters `scale · ∂γ/∂θ` of one input into `grad` from AoS components —
/// a line-for-line replica of the trainer's scatter, reading per-slot
/// gradients through the AoS `component_gradients` reference.
fn aos_scatter(
    model: &LearnRiskModel,
    input: &PairRiskInput,
    comps: &[learnrisk_core::PortfolioComponent],
    agg: &learnrisk_core::PortfolioDistribution,
    z_theta: f64,
    scale: f64,
    grad: &mut [f64],
) {
    let (d_gamma_d_mean, d_gamma_d_std) = training_risk_gradients(input.machine_says_match, z_theta);
    let n = model.features.len();
    for (slot, &ri) in input.rule_indices.iter().enumerate() {
        let j = ri as usize;
        let g = component_gradients(comps, agg, slot);
        let d_w = d_gamma_d_mean * g.d_mean_d_weight + d_gamma_d_std * g.d_std_d_weight;
        grad[j] += scale * d_w;
        let mu_j = model.features.expectations[j];
        let d_rsd = d_gamma_d_std * g.d_std_d_component_std * mu_j;
        grad[n + j] += scale * d_rsd;
    }
    let g = component_gradients(comps, agg, comps.len() - 1);
    let p = input.classifier_output.clamp(0.0, 1.0);
    let d_weight = d_gamma_d_mean * g.d_mean_d_weight + d_gamma_d_std * g.d_std_d_weight;
    grad[2 * n] += scale * d_weight * model.influence.d_weight_d_alpha(p);
    grad[2 * n + 1] += scale * d_weight * model.influence.d_weight_d_beta();
    let bucket = model.output_bucket(p);
    grad[2 * n + 2 + bucket] += scale * d_gamma_d_std * g.d_std_d_component_std * p;
}

/// One factorized epoch in AoS layout: forward scores through `components` +
/// `aggregate`, the λ sweep, chunk-sharded gradient accumulation through the
/// AoS scatter, and the L1/L2 regularizer — the pre-SoA hot path, kept here
/// as the layout-invariance oracle.
fn aos_factorized_epoch(
    model: &LearnRiskModel,
    inputs: &[PairRiskInput],
    rank_pairs: &[(u32, u32)],
    config: &RiskTrainConfig,
    grad: &mut [f64],
) -> f64 {
    let z = model.z_theta();
    let mut scores = vec![0.0; inputs.len()];
    for (score, input) in scores.iter_mut().zip(inputs) {
        let agg = aggregate(&model.components(input));
        *score = training_risk_score(agg.mean, agg.std(), input.machine_says_match, z);
    }
    let n_pairs = rank_pairs.len().max(1) as f64;
    let mut lambdas = vec![0.0; inputs.len()];
    let mut loss = 0.0;
    for &(a, b) in rank_pairs {
        let (a, b) = (a as usize, b as usize);
        let p_ab = clamp_prob(sigmoid(scores[a] - scores[b]));
        let target = 0.5 * (1.0 + inputs[a].risk_label as f64 - inputs[b].risk_label as f64);
        loss += -(target * safe_ln(p_ab) + (1.0 - target) * safe_ln(1.0 - p_ab));
        let d = (p_ab - target) / n_pairs;
        lambdas[a] += d;
        lambdas[b] -= d;
    }
    let mut loss = loss / n_pairs;
    // λ-active chunks only, each accumulated into its own shard, shards
    // reduced in ascending chunk order — the trainer's canonical grid.
    grad.iter_mut().for_each(|g| *g = 0.0);
    let mut shards = Vec::new();
    for chunk in 0..inputs.len().div_ceil(GRAD_CHUNK) {
        let start = chunk * GRAD_CHUNK;
        let end = (start + GRAD_CHUNK).min(inputs.len());
        if lambdas[start..end].iter().all(|&l| l == 0.0) {
            continue;
        }
        let mut shard = vec![0.0; grad.len()];
        for i in start..end {
            if lambdas[i] == 0.0 {
                continue;
            }
            let comps = model.components(&inputs[i]);
            let agg = aggregate(&comps);
            aos_scatter(model, &inputs[i], &comps, &agg, z, lambdas[i], &mut shard);
        }
        shards.push(shard);
    }
    for shard in &shards {
        for (g, s) in grad.iter_mut().zip(shard) {
            *g += s;
        }
    }
    for (g, &w) in grad.iter_mut().zip(&model.rule_weights).take(model.features.len()) {
        loss += config.l1 * w.abs() + config.l2 * w * w;
        *g += config.l1 * w.signum() + 2.0 * config.l2 * w;
    }
    loss
}

/// The full trainer loop (same sampling stream, same Adam optimizer as
/// `train_with_threads`) over the AoS factorized epoch.
fn aos_train(model: &mut LearnRiskModel, inputs: &[PairRiskInput], config: &RiskTrainConfig) -> TrainReport {
    let mut report = TrainReport::default();
    if inputs.is_empty() {
        return report;
    }
    let mut rng = substream(config.seed, 0x71);
    let sampler = RankPairSampler::new(inputs);
    let mut params = flatten_params(model);
    let mut grad = vec![0.0; params.len()];
    let mut rank_pairs: Vec<(u32, u32)> = Vec::new();
    let mut m = vec![0.0; params.len()];
    let mut v = vec![0.0; params.len()];
    let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    for epoch in 0..config.epochs {
        sampler.sample_into(config.max_rank_pairs, &mut rng, &mut rank_pairs);
        if rank_pairs.is_empty() {
            break;
        }
        report.rank_pair_counts.push(rank_pairs.len());
        report.rank_pairs_per_epoch = rank_pairs.len();
        let loss = aos_factorized_epoch(model, inputs, &rank_pairs, config, &mut grad);
        report.losses.push(loss);
        if config.use_adam {
            let t = (epoch + 1) as i32;
            let bc1 = 1.0 - beta1.powi(t);
            let bc2 = 1.0 - beta2.powi(t);
            for i in 0..params.len() {
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                params[i] -= config.learning_rate * (m[i] / bc1) / ((v[i] / bc2).sqrt() + eps);
            }
        } else {
            for (p, g) in params.iter_mut().zip(&grad) {
                *p -= config.learning_rate * g;
            }
        }
        unflatten_params(model, &params);
        params = flatten_params(model);
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factorized_epoch_matches_per_pair_reference(case in arb_case(), seed in 0u64..1000) {
        let (model, inputs) = &case;
        let mut rng = er_base::rng::seeded(seed);
        let rank_pairs = sample_rank_pairs(inputs, 400, &mut rng);
        if rank_pairs.is_empty() {
            // Degenerate label draw (all-correct or all-mislabeled): nothing
            // to rank, nothing to compare.
            return Ok(());
        }
        let config = RiskTrainConfig::default();
        let (loss_ref, grad_ref) = loss_and_gradient(model, inputs, &rank_pairs, &config);
        let mut scratch = EpochScratch::new();
        let mut grad = vec![0.0; model.param_count()];
        for threads in [1usize, 4] {
            let loss = scratch.factorized_loss_and_gradient(model, inputs, &rank_pairs, &config, threads, &mut grad);
            prop_assert!((loss - loss_ref).abs() < 1e-9, "threads {}: loss {} vs {}", threads, loss, loss_ref);
            for (idx, (f, r)) in grad.iter().zip(&grad_ref).enumerate() {
                prop_assert!((f - r).abs() < 1e-9, "threads {}, param {}: {} vs {}", threads, idx, f, r);
            }
        }
    }

    #[test]
    fn soa_training_reproduces_the_aos_factorized_trainer_bitwise(case in arb_case(), threads in 1usize..5) {
        // The tentpole guarantee of the SoA refactor: switching the portfolio
        // layout from AoS to ComponentBlock changes *nothing* about what the
        // trainer learns — losses and final parameters are bit-identical to
        // the AoS factorized epoch, at every thread count.
        let (model, inputs) = &case;
        let config = RiskTrainConfig {
            epochs: 6,
            max_rank_pairs: 300,
            ..Default::default()
        };
        let mut aos_model = model.clone();
        let aos_report = aos_train(&mut aos_model, inputs, &config);
        let mut soa_model = model.clone();
        let soa_report = train_with_threads(&mut soa_model, inputs, &config, threads);
        prop_assert_eq!(bits(&aos_report.losses), bits(&soa_report.losses));
        prop_assert_eq!(bits(&flatten_params(&aos_model)), bits(&flatten_params(&soa_model)));
        prop_assert_eq!(aos_report.rank_pair_counts, soa_report.rank_pair_counts);
    }

    #[test]
    fn training_is_bit_deterministic_across_thread_counts(case in arb_case(), threads in 2usize..8) {
        let (model, inputs) = &case;
        let config = RiskTrainConfig {
            epochs: 8,
            max_rank_pairs: 300,
            ..Default::default()
        };
        let mut single = model.clone();
        let single_report = train_with_threads(&mut single, inputs, &config, 1);
        let mut multi = model.clone();
        let multi_report = train_with_threads(&mut multi, inputs, &config, threads);
        prop_assert_eq!(bits(&single_report.losses), bits(&multi_report.losses));
        prop_assert_eq!(bits(&flatten_params(&single)), bits(&flatten_params(&multi)));
        prop_assert_eq!(single_report.rank_pair_counts, multi_report.rank_pair_counts);
    }
}
