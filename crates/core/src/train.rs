//! Risk-model training: pairwise learning-to-rank with analytic gradients
//! (Section 6.2 of the paper).
//!
//! The trainer tunes the rule weights, the rule RSDs, the influence-function
//! shape `(α, β)` and the classifier-output bucket RSDs so that mislabeled
//! pairs are ranked above correctly labeled ones.  The loss is the pairwise
//! cross entropy of Eq. 13–15; the paper optimizes it with gradient descent on
//! TensorFlow — here the gradients are derived analytically (portfolio
//! aggregation → differentiable VaR score → RankNet-style loss) and verified
//! against finite differences in the test suite.

use crate::feature::PairRiskInput;
use crate::model::LearnRiskModel;
use crate::portfolio::{aggregate, component_gradients, PortfolioComponent};
use crate::var::{training_risk_gradients, training_risk_score};
use er_base::rng::substream;
use er_base::stats::{clamp_prob, safe_ln, sigmoid};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of risk-model training.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RiskTrainConfig {
    /// Number of optimization epochs (the paper uses 1000).
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L1 regularization on rule weights.
    pub l1: f64,
    /// L2 regularization on rule weights.
    pub l2: f64,
    /// Maximum number of ranking pairs sampled per epoch.
    pub max_rank_pairs: usize,
    /// Whether to use Adam (otherwise plain gradient descent, as in Eq. 16-17).
    pub use_adam: bool,
    /// Random seed for pair sampling.
    pub seed: u64,
}

impl Default for RiskTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 0.02,
            l1: 1e-4,
            l2: 1e-3,
            max_rank_pairs: 4000,
            use_adam: true,
            seed: 23,
        }
    }
}

/// Flat parameter vector layout:
/// `[rule_weights | rule_rsd | alpha | beta | output_rsd]`.
pub fn flatten_params(model: &LearnRiskModel) -> Vec<f64> {
    let mut out = Vec::with_capacity(model.param_count());
    out.extend_from_slice(&model.rule_weights);
    out.extend_from_slice(&model.rule_rsd);
    out.push(model.influence.alpha);
    out.push(model.influence.beta);
    out.extend_from_slice(&model.output_rsd);
    out
}

/// Writes a flat parameter vector back into the model, projecting every
/// parameter onto its feasible range.
pub fn unflatten_params(model: &mut LearnRiskModel, params: &[f64]) {
    let n = model.features.len();
    let k = model.output_rsd.len();
    assert_eq!(params.len(), 2 * n + 2 + k);
    for (w, &p) in model.rule_weights.iter_mut().zip(&params[..n]) {
        *w = p.clamp(1e-3, 1e3);
    }
    for (r, &p) in model.rule_rsd.iter_mut().zip(&params[n..2 * n]) {
        *r = p.clamp(1e-3, 2.0);
    }
    model.influence.alpha = params[2 * n].clamp(0.05, 2.0);
    model.influence.beta = params[2 * n + 1].clamp(0.0, 100.0);
    for (r, &p) in model.output_rsd.iter_mut().zip(&params[2 * n + 2..]) {
        *r = p.clamp(1e-3, 2.0);
    }
}

/// The differentiable training risk score γ of one pair, plus its gradient
/// with respect to the flat parameter vector (accumulated into `grad` scaled
/// by `scale`).
fn score_with_gradient(model: &LearnRiskModel, input: &PairRiskInput, scale: f64, grad: &mut [f64]) -> f64 {
    let comps: Vec<PortfolioComponent> = model.components(input);
    let agg = aggregate(&comps);
    let z = model.z_theta();
    let score = training_risk_score(agg.mean, agg.std(), input.machine_says_match, z);
    if scale == 0.0 {
        return score;
    }
    let (d_gamma_d_mean, d_gamma_d_std) = training_risk_gradients(input.machine_says_match, z);
    let n = model.features.len();

    // Rule-feature components come first, in the order of `rule_indices`.
    for (slot, &ri) in input.rule_indices.iter().enumerate() {
        let j = ri as usize;
        let g = component_gradients(&comps, &agg, slot);
        // ∂γ/∂w_j
        let d_w = d_gamma_d_mean * g.d_mean_d_weight + d_gamma_d_std * g.d_std_d_weight;
        grad[j] += scale * d_w;
        // σ_j = RSD_j · μ_j  ⇒  ∂γ/∂RSD_j = ∂γ/∂σ_j · μ_j.
        let mu_j = model.features.expectations[j];
        let d_rsd = d_gamma_d_std * g.d_std_d_component_std * mu_j;
        grad[n + j] += scale * d_rsd;
    }

    // Classifier-output component is last.
    let slot = comps.len() - 1;
    let g = component_gradients(&comps, &agg, slot);
    let p = input.classifier_output.clamp(0.0, 1.0);
    let d_weight = d_gamma_d_mean * g.d_mean_d_weight + d_gamma_d_std * g.d_std_d_weight;
    // α and β act through the influence weight.
    grad[2 * n] += scale * d_weight * model.influence.d_weight_d_alpha(p);
    grad[2 * n + 1] += scale * d_weight * model.influence.d_weight_d_beta();
    // Bucket RSD: σ_cls = RSD_bucket · p.
    let bucket = model.output_bucket(p);
    grad[2 * n + 2 + bucket] += scale * d_gamma_d_std * g.d_std_d_component_std * p;

    score
}

/// Computes the pairwise ranking loss and its gradient over an explicit list
/// of ordered index pairs `(a, b)`.
///
/// Exposed (rather than private to the trainer) so that tests can verify the
/// analytic gradient against finite differences.
pub fn loss_and_gradient(
    model: &LearnRiskModel,
    inputs: &[PairRiskInput],
    rank_pairs: &[(u32, u32)],
    config: &RiskTrainConfig,
) -> (f64, Vec<f64>) {
    let dim = model.param_count();
    let mut grad = vec![0.0; dim];
    let mut loss = 0.0;
    let mut scratch = vec![0.0; dim];
    let n_pairs = rank_pairs.len().max(1) as f64;

    for &(a, b) in rank_pairs {
        let ia = &inputs[a as usize];
        let ib = &inputs[b as usize];
        // Scores without gradient first to get the loss weight.
        let gamma_a = score_with_gradient(model, ia, 0.0, &mut scratch);
        let gamma_b = score_with_gradient(model, ib, 0.0, &mut scratch);
        let p_ab = clamp_prob(sigmoid(gamma_a - gamma_b));
        let target = 0.5 * (1.0 + ia.risk_label as f64 - ib.risk_label as f64);
        loss += -(target * safe_ln(p_ab) + (1.0 - target) * safe_ln(1.0 - p_ab));
        // dL/dγ_a = p_ab - target; dL/dγ_b = -(p_ab - target).
        let d = (p_ab - target) / n_pairs;
        score_with_gradient(model, ia, d, &mut grad);
        score_with_gradient(model, ib, -d, &mut grad);
    }
    loss /= n_pairs;

    // L1/L2 regularization on the rule weights only (the paper regularizes the
    // learnable weights to counter overfitting).
    let n = model.features.len();
    for (g, &w) in grad.iter_mut().zip(&model.rule_weights).take(n) {
        loss += config.l1 * w.abs() + config.l2 * w * w;
        *g += config.l1 * w.signum() + 2.0 * config.l2 * w;
    }
    (loss, grad)
}

/// Builds the ranking pairs of one epoch: every mislabeled training pair is
/// matched with sampled correctly-labeled pairs (the informative orderings for
/// the target of Eq. 14), capped at `max_rank_pairs`.
pub fn sample_rank_pairs<R: Rng + ?Sized>(inputs: &[PairRiskInput], max_pairs: usize, rng: &mut R) -> Vec<(u32, u32)> {
    let positives: Vec<u32> = inputs
        .iter()
        .enumerate()
        .filter(|(_, i)| i.risk_label == 1)
        .map(|(i, _)| i as u32)
        .collect();
    let negatives: Vec<u32> = inputs
        .iter()
        .enumerate()
        .filter(|(_, i)| i.risk_label == 0)
        .map(|(i, _)| i as u32)
        .collect();
    if positives.is_empty() || negatives.is_empty() {
        return Vec::new();
    }
    let total = positives.len() * negatives.len();
    let mut pairs = Vec::with_capacity(total.min(max_pairs));
    if total <= max_pairs {
        for &p in &positives {
            for &n in &negatives {
                pairs.push((p, n));
            }
        }
    } else {
        for _ in 0..max_pairs {
            let p = positives[rng.gen_range(0..positives.len())];
            let n = negatives[rng.gen_range(0..negatives.len())];
            pairs.push((p, n));
        }
    }
    pairs.shuffle(rng);
    pairs
}

/// Training history for diagnostics and the scalability experiments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Loss after each epoch.
    pub losses: Vec<f64>,
    /// Number of ranking pairs used per epoch.
    pub rank_pairs_per_epoch: usize,
}

/// Trains the risk model on risk-training data (the validation split of the
/// classifier, as in Section 4.3).
pub fn train(model: &mut LearnRiskModel, inputs: &[PairRiskInput], config: &RiskTrainConfig) -> TrainReport {
    let mut report = TrainReport::default();
    if inputs.is_empty() {
        return report;
    }
    let mut rng = substream(config.seed, 0x71);
    let mut params = flatten_params(model);
    // Adam state.
    let mut m = vec![0.0; params.len()];
    let mut v = vec![0.0; params.len()];
    let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

    for epoch in 0..config.epochs {
        let rank_pairs = sample_rank_pairs(inputs, config.max_rank_pairs, &mut rng);
        if rank_pairs.is_empty() {
            // Nothing to rank (no mislabeled pairs in the risk-training data):
            // the model keeps its prior parameters.
            break;
        }
        report.rank_pairs_per_epoch = rank_pairs.len();
        let (loss, grad) = loss_and_gradient(model, inputs, &rank_pairs, config);
        report.losses.push(loss);

        if config.use_adam {
            let t = (epoch + 1) as i32;
            let bc1 = 1.0 - beta1.powi(t);
            let bc2 = 1.0 - beta2.powi(t);
            for i in 0..params.len() {
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                params[i] -= config.learning_rate * (m[i] / bc1) / ((v[i] / bc2).sqrt() + eps);
            }
        } else {
            for (p, g) in params.iter_mut().zip(&grad) {
                *p -= config.learning_rate * g;
            }
        }
        unflatten_params(model, &params);
        // Re-read the projected parameters so optimizer state stays consistent.
        params = flatten_params(model);
    }
    report
}

/// Convenience: AUROC of the model's risk ranking against the risk labels of
/// the inputs.
pub fn evaluate_auroc(model: &LearnRiskModel, inputs: &[PairRiskInput]) -> f64 {
    let scores = model.rank(inputs);
    let labels: Vec<u8> = inputs.iter().map(|i| i.risk_label).collect();
    er_base::auroc(&scores, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::RiskFeatureSet;
    use crate::model::RiskModelConfig;
    use er_base::rng::seeded;
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};

    fn toy_model() -> LearnRiskModel {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 50, 0.95),
            Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Equivalent, 40, 0.95),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.95],
            support: vec![50, 40],
        };
        LearnRiskModel::new(
            fs,
            RiskModelConfig {
                output_buckets: 4,
                ..Default::default()
            },
        )
    }

    /// Synthetic risk-training data: the classifier output is mostly right;
    /// rule 0 fires on some pairs the classifier wrongly labels as matches and
    /// rule 1 fires on pairs wrongly labeled as unmatches.
    fn toy_inputs(n: usize, seed: u64) -> Vec<PairRiskInput> {
        let mut rng = seeded(seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let truth_match = rng.gen_bool(0.4);
            // Classifier: 80% accurate, more confident when right.
            let correct = rng.gen_bool(0.8);
            let says_match = if correct { truth_match } else { !truth_match };
            let output: f64 = if says_match {
                rng.gen_range(0.55..0.99)
            } else {
                rng.gen_range(0.01..0.45)
            };
            // Rules: the inequivalence rule fires for most true non-matches,
            // the equivalence rule for most true matches (plus some noise).
            let mut rules = Vec::new();
            if !truth_match && rng.gen_bool(0.7) {
                rules.push(0u32);
            }
            if truth_match && rng.gen_bool(0.7) {
                rules.push(1u32);
            }
            if rng.gen_bool(0.05) {
                rules.push(if rng.gen_bool(0.5) { 0 } else { 1 });
            }
            out.push(PairRiskInput {
                rule_indices: rules,
                classifier_output: output,
                machine_says_match: says_match,
                risk_label: u8::from(says_match != truth_match),
            });
        }
        out
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let model = toy_model();
        let inputs = toy_inputs(40, 3);
        let mut rng = seeded(4);
        let rank_pairs = sample_rank_pairs(&inputs, 200, &mut rng);
        assert!(!rank_pairs.is_empty());
        let config = RiskTrainConfig {
            l1: 1e-3,
            l2: 1e-3,
            ..Default::default()
        };
        let (_, grad) = loss_and_gradient(&model, &inputs, &rank_pairs, &config);

        let params = flatten_params(&model);
        let eps = 1e-6;
        for idx in 0..params.len() {
            let mut plus = model.clone();
            let mut p_plus = params.clone();
            p_plus[idx] += eps;
            unflatten_params(&mut plus, &p_plus);
            let mut minus = model.clone();
            let mut p_minus = params.clone();
            p_minus[idx] -= eps;
            unflatten_params(&mut minus, &p_minus);
            let (l_plus, _) = loss_and_gradient(&plus, &inputs, &rank_pairs, &config);
            let (l_minus, _) = loss_and_gradient(&minus, &inputs, &rank_pairs, &config);
            let numeric = (l_plus - l_minus) / (2.0 * eps);
            assert!(
                (numeric - grad[idx]).abs() < 1e-4,
                "param {idx}: numeric {numeric} vs analytic {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn training_reduces_loss_and_improves_auroc() {
        let mut model = toy_model();
        let train_inputs = toy_inputs(300, 5);
        let test_inputs = toy_inputs(300, 6);
        let before = evaluate_auroc(&model, &test_inputs);
        let config = RiskTrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            ..Default::default()
        };
        let report = train(&mut model, &train_inputs, &config);
        assert!(!report.losses.is_empty());
        let first = report.losses.first().unwrap();
        let last = report.losses.last().unwrap();
        assert!(last < first, "loss should decrease: {first} -> {last}");
        let after = evaluate_auroc(&model, &test_inputs);
        assert!(after >= before - 0.02, "AUROC should not degrade: {before} -> {after}");
        assert!(after > 0.6, "trained AUROC too low: {after}");
    }

    #[test]
    fn projection_keeps_parameters_feasible() {
        let mut model = toy_model();
        let mut params = flatten_params(&model);
        params.iter_mut().for_each(|p| *p = -5.0);
        unflatten_params(&mut model, &params);
        assert!(model.rule_weights.iter().all(|&w| w >= 1e-3));
        assert!(model.rule_rsd.iter().all(|&r| r >= 1e-3));
        assert!(model.influence.alpha >= 0.05);
        assert!(model.influence.beta >= 0.0);
        assert!(model.output_rsd.iter().all(|&r| r >= 1e-3));
    }

    #[test]
    fn sampling_handles_degenerate_label_sets() {
        let mut rng = seeded(7);
        let all_correct: Vec<PairRiskInput> = toy_inputs(20, 8)
            .into_iter()
            .map(|mut i| {
                i.risk_label = 0;
                i
            })
            .collect();
        assert!(sample_rank_pairs(&all_correct, 100, &mut rng).is_empty());
        // Training on data without any mislabeled pair is a no-op.
        let mut model = toy_model();
        let report = train(&mut model, &all_correct, &RiskTrainConfig::default());
        assert!(report.losses.is_empty());
        // Empty inputs likewise.
        let report = train(&mut model, &[], &RiskTrainConfig::default());
        assert!(report.losses.is_empty());
    }

    #[test]
    fn sampling_caps_the_number_of_pairs() {
        let inputs = toy_inputs(200, 9);
        let mut rng = seeded(10);
        let pairs = sample_rank_pairs(&inputs, 500, &mut rng);
        assert!(pairs.len() <= 500);
        assert!(!pairs.is_empty());
        // Each sampled ordering is (mislabeled, correct).
        for &(a, b) in &pairs {
            assert_eq!(inputs[a as usize].risk_label, 1);
            assert_eq!(inputs[b as usize].risk_label, 0);
        }
    }

    #[test]
    fn plain_gradient_descent_also_trains() {
        let mut model = toy_model();
        let inputs = toy_inputs(200, 11);
        let config = RiskTrainConfig {
            epochs: 80,
            learning_rate: 0.05,
            use_adam: false,
            ..Default::default()
        };
        let report = train(&mut model, &inputs, &config);
        assert!(report.losses.last().unwrap() <= report.losses.first().unwrap());
    }

    #[test]
    fn learned_weights_upweight_informative_rules() {
        let mut model = toy_model();
        let inputs = toy_inputs(400, 12);
        train(
            &mut model,
            &inputs,
            &RiskTrainConfig {
                epochs: 150,
                learning_rate: 0.05,
                ..Default::default()
            },
        );
        // After training, the AUROC on the training data itself should be high.
        let auroc = evaluate_auroc(&model, &inputs);
        assert!(auroc > 0.7, "training-data AUROC {auroc}");
    }
}
