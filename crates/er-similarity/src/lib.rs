//! # er-similarity
//!
//! Similarity and difference metrics over ER attribute values, plus the
//! metric registry that binds them to schema attributes (the paper's *basic
//! metrics*, Section 5.1 / Figure 5).
//!
//! * [`tokenize`] — normalization, tokenization, entity splitting, abbreviation.
//! * [`edit`] — Levenshtein, Jaro, Jaro–Winkler.
//! * [`token_sim`] — Jaccard, Dice, overlap, cosine (TF and TF-IDF), Monge–Elkan.
//! * [`sequence`] — LCS and longest-common-substring similarity.
//! * [`difference`] — the paper's difference metrics (non-substring/prefix/suffix,
//!   abbreviation variants, diff-cardinality, distinct-entity, diff-key-token,
//!   numeric differences).
//! * [`metric`] — [`metric::MetricKind`], [`metric::AttrMetric`] and
//!   [`metric::MetricEvaluator`], which evaluate the basic metric vector of a
//!   record pair.

#![warn(missing_docs)]

pub mod difference;
pub mod edit;
pub mod metric;
pub mod sequence;
pub mod token_sim;
pub mod tokenize;

pub use metric::{default_metrics, eval_metric_kind, AttrMetric, MetricEvaluator, MetricKind};
pub use token_sim::IdfTable;
