//! The compiled rule index: attribute-indexed threshold lists.
//!
//! Offline, rule matching tests every condition of every rule against the
//! pair's basic-metric row (`O(total conditions)` per pair). Online that scan
//! is the hot path, so at engine load time the rule set is compiled into one
//! sorted threshold list per *metric* and *operator*:
//!
//! * `Gt` conditions on metric `m`, sorted ascending — the conditions
//!   satisfied by a value `v` are exactly the prefix with `threshold < v`;
//! * `Le` conditions on metric `m`, sorted ascending — the satisfied ones are
//!   exactly the suffix with `threshold >= v`.
//!
//! Matching a row is then one binary search per (metric, operator) list plus
//! a counter increment per *satisfied* condition; a rule fires when its
//! counter reaches its condition count. Only metrics that actually carry
//! conditions are visited, and the fired set is returned in ascending rule
//! order — the same order the offline linear scan produces, which keeps the
//! downstream floating-point aggregation bit-identical.

use er_rulegen::{CmpOp, Rule};
use std::fmt;

/// A metric row too short for the rule set — the request-level error the
/// fallible matching path reports instead of panicking, so a malformed
/// request cannot kill a serving worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowLengthError {
    /// Entries in the offending row.
    pub row_len: usize,
    /// Smallest row length the rule set can match against.
    pub required: usize,
}

impl fmt::Display for RowLengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "metric row has {} entries but the rule set references metric index {}",
            self.row_len,
            // The fields are public, so guard the degenerate required == 0
            // (an error type whose Display can panic defeats its purpose).
            self.required.saturating_sub(1)
        )
    }
}

impl std::error::Error for RowLengthError {}

/// One metric's compiled condition lists (see the module docs).
#[derive(Debug, Clone, Default)]
struct MetricConditions {
    /// `Gt` thresholds ascending, with the owning rule of each condition.
    gt_thresholds: Vec<f64>,
    gt_rules: Vec<u32>,
    /// `Le` thresholds ascending, with the owning rule of each condition.
    le_thresholds: Vec<f64>,
    le_rules: Vec<u32>,
}

/// The rule set of a risk model, pre-compiled for per-request matching.
#[derive(Debug, Clone)]
pub struct CompiledRuleIndex {
    rule_count: usize,
    /// Number of conditions each rule needs before it fires.
    condition_counts: Vec<u32>,
    /// Rules with no conditions fire on every row.
    always_fire: Vec<u32>,
    /// Per-metric condition lists, indexed by `Condition::metric_index`.
    metrics: Vec<MetricConditions>,
    /// Metric indices that carry at least one condition.
    active_metrics: Vec<u32>,
}

/// Reusable per-worker scratch state for [`CompiledRuleIndex::matching_rules_into`].
///
/// Keeping the counters outside the index lets many threads match against the
/// same shared index without synchronization or per-request allocation.
#[derive(Debug, Clone)]
pub struct MatchScratch {
    /// Satisfied-condition counter per rule.
    counters: Vec<u32>,
    /// Rules whose counter is non-zero (reset list).
    touched: Vec<u32>,
}

impl CompiledRuleIndex {
    /// Compiles a rule set.
    pub fn compile(rules: &[Rule]) -> Self {
        assert!(
            u32::try_from(rules.len()).is_ok(),
            "rule sets beyond u32::MAX rules are not supported"
        );
        let num_metrics = rules
            .iter()
            .flat_map(|r| r.conditions.iter())
            .map(|c| c.metric_index + 1)
            .max()
            .unwrap_or(0);
        let mut metrics = vec![MetricConditions::default(); num_metrics];
        let mut condition_counts = Vec::with_capacity(rules.len());
        let mut always_fire = Vec::new();

        // Gather (threshold, rule) pairs per metric/operator...
        let mut gt: Vec<Vec<(f64, u32)>> = vec![Vec::new(); num_metrics];
        let mut le: Vec<Vec<(f64, u32)>> = vec![Vec::new(); num_metrics];
        for (ri, rule) in rules.iter().enumerate() {
            condition_counts.push(rule.conditions.len() as u32);
            if rule.conditions.is_empty() {
                always_fire.push(ri as u32);
            }
            for cond in &rule.conditions {
                match cond.op {
                    CmpOp::Gt => gt[cond.metric_index].push((cond.threshold, ri as u32)),
                    CmpOp::Le => le[cond.metric_index].push((cond.threshold, ri as u32)),
                }
            }
        }
        // ...and freeze them as parallel sorted arrays.
        for (m, (mut g, mut l)) in gt.into_iter().zip(le).enumerate() {
            g.sort_by(|a, b| a.0.total_cmp(&b.0));
            l.sort_by(|a, b| a.0.total_cmp(&b.0));
            metrics[m].gt_thresholds = g.iter().map(|&(t, _)| t).collect();
            metrics[m].gt_rules = g.iter().map(|&(_, r)| r).collect();
            metrics[m].le_thresholds = l.iter().map(|&(t, _)| t).collect();
            metrics[m].le_rules = l.iter().map(|&(_, r)| r).collect();
        }
        let active_metrics = metrics
            .iter()
            .enumerate()
            .filter(|(_, mc)| !mc.gt_thresholds.is_empty() || !mc.le_thresholds.is_empty())
            .map(|(m, _)| m as u32)
            .collect();
        Self {
            rule_count: rules.len(),
            condition_counts,
            always_fire,
            metrics,
            active_metrics,
        }
    }

    /// Number of rules in the index.
    pub fn rule_count(&self) -> usize {
        self.rule_count
    }

    /// Smallest metric-row length the index can match against.
    pub fn required_row_len(&self) -> usize {
        self.metrics.len()
    }

    /// Creates scratch state sized for this index.
    pub fn scratch(&self) -> MatchScratch {
        MatchScratch {
            counters: vec![0; self.rule_count],
            touched: Vec::with_capacity(16),
        }
    }

    /// Collects the indices of the rules covering `row` into `out`, in
    /// ascending rule order (matching the offline linear scan).
    ///
    /// # Panics
    /// Panics if `row` is shorter than [`Self::required_row_len`] or `scratch`
    /// was built for a different index.  [`Self::try_matching_rules_into`] is
    /// the non-panicking form the serving request path uses.
    pub fn matching_rules_into(&self, row: &[f64], scratch: &mut MatchScratch, out: &mut Vec<u32>) {
        self.try_matching_rules_into(row, scratch, out)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Self::matching_rules_into`]: a row shorter than
    /// [`Self::required_row_len`] becomes a [`RowLengthError`] instead of a
    /// panic (`out` is left cleared).  A `scratch` built for a different
    /// index is still a programming error and panics.
    pub fn try_matching_rules_into(
        &self,
        row: &[f64],
        scratch: &mut MatchScratch,
        out: &mut Vec<u32>,
    ) -> Result<(), RowLengthError> {
        if row.len() < self.metrics.len() {
            out.clear();
            return Err(RowLengthError {
                row_len: row.len(),
                required: self.metrics.len(),
            });
        }
        assert_eq!(scratch.counters.len(), self.rule_count, "scratch/index mismatch");
        out.clear();
        out.extend_from_slice(&self.always_fire);
        for &m in &self.active_metrics {
            let v = row[m as usize];
            if v.is_nan() {
                // NaN satisfies neither `>` nor `<=`, same as `Rule::covers`.
                continue;
            }
            let mc = &self.metrics[m as usize];
            // Gt: satisfied iff threshold < v — an ascending prefix.
            let end = mc.gt_thresholds.partition_point(|&t| t < v);
            for &rule in &mc.gt_rules[..end] {
                Self::bump(&self.condition_counts, scratch, out, rule);
            }
            // Le: satisfied iff v <= threshold — an ascending suffix.
            let start = mc.le_thresholds.partition_point(|&t| t < v);
            for &rule in &mc.le_rules[start..] {
                Self::bump(&self.condition_counts, scratch, out, rule);
            }
        }
        for &rule in &scratch.touched {
            scratch.counters[rule as usize] = 0;
        }
        scratch.touched.clear();
        // Few rules fire per pair, so the final ordering sort is cheap.
        out.sort_unstable();
        Ok(())
    }

    /// Convenience wrapper allocating fresh scratch and output.
    pub fn matching_rules(&self, row: &[f64]) -> Vec<u32> {
        let mut scratch = self.scratch();
        let mut out = Vec::new();
        self.matching_rules_into(row, &mut scratch, &mut out);
        out
    }

    #[inline]
    fn bump(condition_counts: &[u32], scratch: &mut MatchScratch, out: &mut Vec<u32>, rule: u32) {
        let counter = &mut scratch.counters[rule as usize];
        if *counter == 0 {
            scratch.touched.push(rule);
        }
        *counter += 1;
        if *counter == condition_counts[rule as usize] {
            out.push(rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::Label;
    use er_rulegen::Condition;
    use proptest::prelude::*;

    fn linear_scan(rules: &[Rule], row: &[f64]) -> Vec<u32> {
        rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.covers(row))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn rule(conds: Vec<(usize, CmpOp, f64)>) -> Rule {
        Rule::new(
            conds.into_iter().map(|(m, op, t)| Condition::new(m, op, t)).collect(),
            Label::Equivalent,
            10,
            0.9,
        )
    }

    #[test]
    fn single_condition_rules_match_like_the_scan() {
        let rules = vec![
            rule(vec![(0, CmpOp::Gt, 0.5)]),
            rule(vec![(0, CmpOp::Le, 0.5)]),
            rule(vec![(1, CmpOp::Gt, 0.2)]),
        ];
        let index = CompiledRuleIndex::compile(&rules);
        for row in [[0.6, 0.1], [0.5, 0.3], [0.0, 0.0], [1.0, 1.0]] {
            assert_eq!(index.matching_rules(&row), linear_scan(&rules, &row), "row {row:?}");
        }
        assert_eq!(index.rule_count(), 3);
        assert_eq!(index.required_row_len(), 2);
    }

    #[test]
    fn conjunctions_require_every_condition() {
        let rules = vec![rule(vec![
            (0, CmpOp::Gt, 0.5),
            (1, CmpOp::Le, 0.2),
            (2, CmpOp::Gt, 0.9),
        ])];
        let index = CompiledRuleIndex::compile(&rules);
        assert_eq!(index.matching_rules(&[0.6, 0.1, 0.95]), vec![0]);
        assert!(index.matching_rules(&[0.6, 0.1, 0.9]).is_empty());
        assert!(index.matching_rules(&[0.6, 0.3, 0.95]).is_empty());
        assert!(index.matching_rules(&[0.5, 0.1, 0.95]).is_empty());
    }

    #[test]
    fn repeated_metric_conditions_count_separately() {
        // A tree path can split the same metric twice (a range constraint).
        let rules = vec![rule(vec![(0, CmpOp::Gt, 0.2), (0, CmpOp::Le, 0.8)])];
        let index = CompiledRuleIndex::compile(&rules);
        assert_eq!(index.matching_rules(&[0.5]), vec![0]);
        assert!(index.matching_rules(&[0.1]).is_empty());
        assert!(index.matching_rules(&[0.9]).is_empty());
    }

    #[test]
    fn empty_rule_sets_and_condition_free_rules() {
        let index = CompiledRuleIndex::compile(&[]);
        assert!(index.matching_rules(&[]).is_empty());
        let rules = vec![rule(vec![]), rule(vec![(0, CmpOp::Gt, 0.5)])];
        let index = CompiledRuleIndex::compile(&rules);
        assert_eq!(index.matching_rules(&[0.0]), vec![0]);
        assert_eq!(index.matching_rules(&[0.9]), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "metric row has")]
    fn short_rows_panic_with_context() {
        let index = CompiledRuleIndex::compile(&[rule(vec![(3, CmpOp::Gt, 0.5)])]);
        index.matching_rules(&[0.1, 0.2]);
    }

    #[test]
    fn short_rows_degrade_to_an_error_on_the_fallible_path() {
        let index = CompiledRuleIndex::compile(&[rule(vec![(3, CmpOp::Gt, 0.5)])]);
        let mut scratch = index.scratch();
        let mut out = vec![7u32];
        let err = index
            .try_matching_rules_into(&[0.1, 0.2], &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(
            err,
            RowLengthError {
                row_len: 2,
                required: 4
            }
        );
        assert!(err.to_string().contains("metric row has 2 entries"));
        assert!(out.is_empty(), "failed matches must not leave stale rules behind");
        // The fields are public: the degenerate required == 0 must format
        // (not underflow) — an error Display that panics defeats its purpose.
        let degenerate = RowLengthError {
            row_len: 0,
            required: 0,
        };
        assert!(degenerate.to_string().contains("metric row has 0 entries"));
        // The scratch stays usable for well-formed rows afterwards.
        index
            .try_matching_rules_into(&[0.0, 0.0, 0.0, 0.9], &mut scratch, &mut out)
            .expect("long enough row");
        assert_eq!(out, vec![0]);
    }

    /// Strategy producing random rule sets over `metrics` metric slots.
    fn arb_rules(metrics: usize) -> impl Strategy<Value = Vec<Rule>> {
        proptest::collection::vec(
            proptest::collection::vec(
                (0usize..metrics, 0u8..2, 0.0f64..1.0).prop_map(|(m, op, t)| {
                    let op = if op == 0 { CmpOp::Gt } else { CmpOp::Le };
                    (m, op, t)
                }),
                0..4,
            )
            .prop_map(rule),
            1..12,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn index_agrees_with_linear_scan(
            rules in arb_rules(5),
            rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 5..6), 1..8),
        ) {
            let index = CompiledRuleIndex::compile(&rules);
            let mut scratch = index.scratch();
            let mut out = Vec::new();
            for row in &rows {
                index.matching_rules_into(row, &mut scratch, &mut out);
                prop_assert_eq!(&out, &linear_scan(&rules, row));
            }
        }

        #[test]
        fn scratch_reuse_is_stateless(
            rules in arb_rules(4),
            row in proptest::collection::vec(0.0f64..1.0, 4..5),
        ) {
            let index = CompiledRuleIndex::compile(&rules);
            let mut scratch = index.scratch();
            let mut first = Vec::new();
            index.matching_rules_into(&row, &mut scratch, &mut first);
            let mut second = Vec::new();
            index.matching_rules_into(&row, &mut scratch, &mut second);
            prop_assert_eq!(first, second);
        }
    }
}
