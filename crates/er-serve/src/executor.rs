//! The sharded multi-threaded executor.
//!
//! [`ShardedExecutor::score_batch`] splits a batch into contiguous chunks
//! and scores them on the lanes of a persistent [`er_pool::WorkerPool`]
//! (threads are spawned once per executor — or once per
//! [`crate::ReloadableExecutor`], which shares one pool across every
//! reload generation — not once per batch), each chunk with its own
//! [`EngineScratch`]. A bounded
//! LRU result cache, sharded across mutexes and keyed on pair id, serves
//! repeated-pair traffic without re-scoring. Scoring is a pure function of
//! the request, so results are deterministic: the same batch produces the
//! same scores for every thread count and cache state (the concurrency test
//! suite asserts this bit-exactly).

use crate::cache::LruCache;
use crate::engine::{EngineScratch, ScoreError, ScoreRequest, ScoringEngine};
use crate::fault::{FaultKind, FaultPlan};
use crate::trace::{SpanSet, Stage};
use er_pool::WorkerPool;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A [`ScoreError`] attributed to its position in a batch — the error
/// [`ShardedExecutor::try_score_batch`] reports, so a caller can reject the
/// offending request instead of losing a worker thread to a panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchScoreError {
    /// Index of the first malformed request in the batch.
    pub request_index: usize,
    /// Why it could not be scored.
    pub error: ScoreError,
}

impl fmt::Display for BatchScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {} cannot be scored: {}", self.request_index, self.error)
    }
}

impl std::error::Error for BatchScoreError {}

/// Configuration of a [`ShardedExecutor`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker threads used by [`ShardedExecutor::score_batch`].
    pub threads: usize,
    /// Total cached scores across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            cache_capacity: 16_384,
            cache_shards: 16,
        }
    }
}

impl ServeConfig {
    /// This configuration with a different thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// This configuration with a different total cache capacity (0 disables
    /// the score cache).
    pub fn with_cache_capacity(self, cache_capacity: usize) -> Self {
        Self { cache_capacity, ..self }
    }
}

/// Cache hit/miss counters of an executor.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to be scored.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of requests answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A [`ScoringEngine`] behind worker threads and a sharded score cache.
pub struct ShardedExecutor {
    engine: ScoringEngine,
    config: ServeConfig,
    pool: Arc<WorkerPool>,
    shards: Vec<Mutex<LruCache<u64, f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fault: Mutex<Option<Arc<FaultPlan>>>,
    fault_set: AtomicBool,
    panics: AtomicU64,
}

impl ShardedExecutor {
    /// Wraps an engine. `config.threads` and `config.cache_shards` are
    /// floored at 1; `cache_capacity` splits across the shards rounding *up*,
    /// so a non-zero requested capacity always caches at least one entry per
    /// shard (the total may exceed the request by up to `cache_shards - 1`).
    pub fn new(engine: ScoringEngine, config: ServeConfig) -> Self {
        Self::with_pool(engine, config, Arc::new(WorkerPool::new(config.threads.max(1))))
    }

    /// [`Self::new`] on an existing worker pool instead of spawning a fresh
    /// one — how [`crate::ReloadableExecutor`] keeps one set of persistent
    /// lanes across every reload generation. The pool's lane count bounds
    /// parallelism; chunking (and therefore scores, bit for bit) depends
    /// only on `config.threads` and the batch length.
    pub fn with_pool(engine: ScoringEngine, config: ServeConfig, pool: Arc<WorkerPool>) -> Self {
        let shard_count = config.cache_shards.max(1);
        let per_shard = config.cache_capacity.div_ceil(shard_count);
        let shards = (0..shard_count).map(|_| Mutex::new(LruCache::new(per_shard))).collect();
        Self {
            engine,
            config,
            pool,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fault: Mutex::new(None),
            fault_set: AtomicBool::new(false),
            panics: AtomicU64::new(0),
        }
    }

    /// Attach (or clear) a fault-injection plan. Worker threads consult the
    /// plan's `shard_worker_panic` point once per spawn; an absent plan is a
    /// single relaxed-atomic load on the batch path.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        self.fault_set.store(plan.is_some(), Ordering::Release);
        *self.fault.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.fault_set.load(Ordering::Acquire) {
            return None;
        }
        self.fault.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// How many worker panics this executor has caught and recovered from.
    pub fn worker_panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ScoringEngine {
        &self.engine
    }

    /// The worker pool batches are scored on (shareable with further
    /// executors via [`Self::with_pool`]).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The executor configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cache hit/miss counters since construction (or the last reset).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss counters (the cache contents stay warm).
    pub fn reset_cache_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Live entries across all cache shards (the `er_serve_cache_entries`
    /// gauge; takes each shard lock briefly, so scrape-time only).
    pub fn cache_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    #[inline]
    fn shard_of(&self, pair_id: u64) -> usize {
        // SplitMix64 finalizer: pair ids are often sequential, so spread them
        // before taking the shard residue.
        let mut z = pair_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// Scores one request through the cache.
    ///
    /// The shard lock is released while computing a miss, so two threads may
    /// race to score the same cold pair; both compute the identical value, so
    /// the cache stays consistent.
    ///
    /// # Panics
    /// Panics on a malformed request; [`Self::try_score_one`] is the
    /// non-panicking request path.
    pub fn score_one(&self, request: &ScoreRequest, scratch: &mut EngineScratch) -> f64 {
        self.try_score_one(request, scratch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::score_one`]: a malformed request or a degenerate
    /// portfolio becomes a [`ScoreError`] instead of a panic.  Errors are
    /// never cached, so a rejected request does not poison later traffic for
    /// the same pair id.
    pub fn try_score_one(&self, request: &ScoreRequest, scratch: &mut EngineScratch) -> Result<f64, ScoreError> {
        if self.config.cache_capacity == 0 {
            return self.engine.try_score_request(request, scratch);
        }
        let shard = self.shard_of(request.pair_id);
        if let Some(score) = self.shards[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&request.pair_id)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(score);
        }
        let score = self.engine.try_score_request(request, scratch)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shards[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(request.pair_id, score);
        Ok(score)
    }

    /// Scores a batch across `config.threads` chunks on the persistent
    /// worker pool, preserving request order in the returned scores.
    ///
    /// # Panics
    /// Panics on the first malformed request; [`Self::try_score_batch`] is
    /// the non-panicking form.
    pub fn score_batch(&self, requests: &[ScoreRequest]) -> Vec<f64> {
        self.try_score_batch(requests).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::score_batch`]: scores the batch and reports the
    /// *first* malformed request (smallest batch index, deterministic for
    /// every thread count) as a [`BatchScoreError`] instead of panicking a
    /// worker.  Each worker stops its chunk at its first error, so a poisoned
    /// batch fails fast rather than burning the remaining scoring work.
    ///
    /// Workers additionally run under `catch_unwind` supervision: a worker
    /// that panics (scoring is pure, so in practice only via an injected
    /// [`FaultKind::ShardWorkerPanic`]) has its chunk re-scored sequentially
    /// after the fan-out joins, producing bit-exact scores; the panic is
    /// counted in [`Self::worker_panic_count`].
    pub fn try_score_batch(&self, requests: &[ScoreRequest]) -> Result<Vec<f64>, BatchScoreError> {
        self.score_batch_inner(requests, None)
    }

    /// [`Self::try_score_batch`] that additionally records one
    /// [`Stage::Score`] span per worker shard into `spans` (wall-clock
    /// enter/exit of that shard's chunk), so a request trace can attribute
    /// scoring time to the executor fan-out. The single-threaded path records
    /// one shard-0 span covering the whole batch.
    pub fn try_score_batch_traced(
        &self,
        requests: &[ScoreRequest],
        spans: &mut SpanSet,
    ) -> Result<Vec<f64>, BatchScoreError> {
        self.score_batch_inner(requests, Some(spans))
    }

    /// Scores `requests[base..]` (already sliced) sequentially into `scores`,
    /// attributing errors against `base` — the single-threaded scoring path
    /// and the supervisor's restart path for a panicked worker's chunk.
    fn score_range(&self, requests: &[ScoreRequest], scores: &mut [f64], base: usize) -> Result<(), BatchScoreError> {
        let mut scratch = self.engine.scratch();
        for (offset, (request, slot)) in requests.iter().zip(scores).enumerate() {
            *slot = self
                .try_score_one(request, &mut scratch)
                .map_err(|error| BatchScoreError {
                    request_index: base + offset,
                    error,
                })?;
        }
        Ok(())
    }

    fn score_batch_inner(
        &self,
        requests: &[ScoreRequest],
        mut spans: Option<&mut SpanSet>,
    ) -> Result<Vec<f64>, BatchScoreError> {
        let mut scores = vec![0.0f64; requests.len()];
        let threads = self.config.threads.max(1);
        let fault = self.fault_plan();
        if threads == 1 || requests.len() <= 1 {
            let start = Instant::now();
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                if let Some(plan) = fault.as_deref() {
                    if plan.fires(FaultKind::ShardWorkerPanic) {
                        panic!("injected {}", FaultKind::ShardWorkerPanic);
                    }
                }
                self.score_range(requests, &mut scores, 0)
            }));
            let result = match attempt {
                Ok(result) => result,
                Err(_) => {
                    // The worker panicked mid-chunk: count it and restart the
                    // chunk from scratch on this thread. Scoring is pure, so
                    // the restart reproduces the scores bit-exactly; a second
                    // panic is a real bug and propagates to the caller's
                    // supervisor.
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    let recover_start = Instant::now();
                    let result = self.score_range(requests, &mut scores, 0);
                    if let Some(spans) = spans.as_mut() {
                        spans.record(Stage::Recover, recover_start, Instant::now());
                    }
                    result
                }
            };
            result?;
            if let Some(spans) = spans.as_mut() {
                spans.record_shard(Stage::Score, 0, start, Instant::now());
            }
            return Ok(scores);
        }
        let chunk = requests.len().div_ceil(threads);
        // One enter/exit slot per worker shard, written by exactly one scoped
        // thread each — per-shard span recording without any locking.
        let shard_count = requests.len().div_ceil(chunk);
        let mut shard_windows: Vec<Option<(Instant, Instant)>> = vec![None; shard_count];
        // Every erroring worker reports its chunk's first error; the smallest
        // request index across chunks is the batch's first error overall.
        let first_error: Mutex<Option<BatchScoreError>> = Mutex::new(None);
        // Chunks abandoned by a panicking worker, re-scored sequentially
        // after the scope joins.
        let panicked: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        self.pool.scope(|scope| {
            for ((chunk_index, (request_chunk, score_chunk)), window) in requests
                .chunks(chunk)
                .zip(scores.chunks_mut(chunk))
                .enumerate()
                .zip(shard_windows.iter_mut())
            {
                let first_error = &first_error;
                let panicked = &panicked;
                let fault = fault.as_deref();
                scope.spawn(move || {
                    let start = Instant::now();
                    // The pool isolates task panics too, but catching here
                    // keeps the panic accounting (and the chunk restart
                    // decision) local to the executor, so the batch and its
                    // reply channels stay alive for the supervisor to
                    // restart the abandoned chunk instead of losing the
                    // whole server.
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        if let Some(plan) = fault {
                            if plan.fires(FaultKind::ShardWorkerPanic) {
                                panic!("injected {}", FaultKind::ShardWorkerPanic);
                            }
                        }
                        let mut scratch = self.engine.scratch();
                        for (offset, (request, slot)) in request_chunk.iter().zip(score_chunk).enumerate() {
                            match self.try_score_one(request, &mut scratch) {
                                Ok(score) => *slot = score,
                                Err(error) => {
                                    let found = BatchScoreError {
                                        request_index: chunk_index * chunk + offset,
                                        error,
                                    };
                                    let mut slot = first_error.lock().unwrap_or_else(|e| e.into_inner());
                                    if slot.is_none_or(|prior| found.request_index < prior.request_index) {
                                        *slot = Some(found);
                                    }
                                    return;
                                }
                            }
                        }
                    }));
                    *window = Some((start, Instant::now()));
                    if attempt.is_err() {
                        self.panics.fetch_add(1, Ordering::Relaxed);
                        panicked.lock().unwrap_or_else(|e| e.into_inner()).push(chunk_index);
                    }
                });
            }
        });
        let panicked = panicked.into_inner().unwrap_or_else(|e| e.into_inner());
        if !panicked.is_empty() {
            // Supervision: restart each panicked worker's chunk on this
            // thread. Injected faults fire once per occurrence, so the
            // restart scores clean and bit-exact; a persistent panic is a
            // real bug and propagates.
            let recover_start = Instant::now();
            for chunk_index in panicked {
                let lo = chunk_index * chunk;
                let hi = (lo + chunk).min(requests.len());
                if let Err(found) = self.score_range(&requests[lo..hi], &mut scores[lo..hi], lo) {
                    let mut slot = first_error.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none_or(|prior| found.request_index < prior.request_index) {
                        *slot = Some(found);
                    }
                }
            }
            if let Some(spans) = spans.as_mut() {
                spans.record(Stage::Recover, recover_start, Instant::now());
            }
        }
        if let Some(spans) = spans.as_mut() {
            for (shard, window) in shard_windows.iter().enumerate() {
                if let Some((start, end)) = window {
                    spans.record_shard(Stage::Score, shard as u32, *start, *end);
                }
            }
        }
        match first_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(error) => Err(error),
            None => Ok(scores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};
    use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};

    fn engine() -> ScoringEngine {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.97),
            Rule::new(vec![Condition::new(1, CmpOp::Le, 0.3)], Label::Equivalent, 15, 0.93),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.92],
            support: vec![20, 15],
        };
        ScoringEngine::new(LearnRiskModel::new(fs, RiskModelConfig::default()))
    }

    fn requests(n: usize, distinct: u64) -> Vec<ScoreRequest> {
        (0..n)
            .map(|i| {
                let id = i as u64 % distinct;
                let x = (id as f64 * 0.37).fract();
                ScoreRequest {
                    pair_id: id,
                    metric_row: vec![x, 1.0 - x],
                    classifier_output: x,
                    machine_says_match: x >= 0.5,
                }
            })
            .collect()
    }

    #[test]
    fn batch_scores_are_identical_across_thread_counts() {
        let reqs = requests(500, 100);
        let baseline = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(1)).score_batch(&reqs);
        for threads in [2, 3, 8] {
            let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(threads));
            let scores = exec.score_batch(&reqs);
            let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
            let base_bits: Vec<u64> = baseline.iter().map(|s| s.to_bits()).collect();
            assert_eq!(bits, base_bits, "threads = {threads}");
        }
    }

    #[test]
    fn cache_serves_repeated_pairs() {
        let exec = ShardedExecutor::new(
            engine(),
            ServeConfig {
                threads: 1,
                cache_capacity: 64,
                cache_shards: 4,
            },
        );
        let reqs = requests(300, 10); // 10 distinct pairs, replayed 30×
        let scores = exec.score_batch(&reqs);
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 10, "one miss per distinct pair");
        assert_eq!(stats.hits, 290);
        assert!(stats.hit_rate() > 0.96);
        // Cached scores equal computed scores.
        let uncached = ShardedExecutor::new(
            engine(),
            ServeConfig {
                threads: 1,
                cache_capacity: 0,
                cache_shards: 1,
            },
        );
        let plain = uncached.score_batch(&reqs);
        assert_eq!(uncached.cache_stats().hits, 0);
        for (a, b) in scores.iter().zip(&plain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn small_capacities_still_cache() {
        // A capacity below the shard count must not silently disable caching.
        let exec = ShardedExecutor::new(
            engine(),
            ServeConfig {
                threads: 1,
                cache_capacity: 8,
                cache_shards: 16,
            },
        );
        let reqs = requests(40, 4); // 4 distinct pairs, replayed 10×
        exec.score_batch(&reqs);
        let stats = exec.cache_stats();
        assert!(stats.hits > 0, "requested capacity 8 but nothing was cached: {stats:?}");
    }

    #[test]
    fn stats_reset_keeps_cache_warm() {
        let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(1));
        let reqs = requests(50, 5);
        exec.score_batch(&reqs);
        exec.reset_cache_stats();
        exec.score_batch(&reqs);
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 0, "warm cache answers everything");
        assert_eq!(stats.hits, 50);
    }

    #[test]
    fn empty_and_tiny_batches_work_at_any_thread_count() {
        let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(7));
        assert!(exec.score_batch(&[]).is_empty());
        let one = requests(1, 1);
        assert_eq!(exec.score_batch(&one).len(), 1);
    }

    #[test]
    fn malformed_batch_requests_surface_as_errors_not_panics() {
        let good = requests(50, 50);
        for threads in [1usize, 4] {
            let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(threads));
            // Poison two requests: the *first* (smallest index) is reported,
            // regardless of the thread count.
            let mut poisoned = good.clone();
            poisoned[13].metric_row = vec![0.4]; // too short for 2 metrics
            poisoned[37].metric_row = vec![];
            let err = exec.try_score_batch(&poisoned).unwrap_err();
            assert_eq!(err.request_index, 13, "threads = {threads}");
            assert!(matches!(err.error, ScoreError::Row(_)));
            assert!(err.to_string().contains("request 13"));
            // The executor survives and keeps serving clean traffic through
            // the same fallible path.
            let scores = exec.try_score_batch(&good).expect("still serving");
            assert_eq!(scores.len(), good.len());
        }
    }

    #[test]
    fn injected_worker_panics_are_supervised_and_scores_stay_bit_exact() {
        use crate::fault::{FaultKind, FaultPlan};
        use std::sync::Arc;

        let reqs = requests(200, 200);
        let baseline = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(1)).score_batch(&reqs);
        for threads in [1usize, 3, 8] {
            let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(threads));
            // The first two worker spawns panic; the supervisor re-scores
            // their chunks, so the batch still comes back complete.
            let plan = Arc::new(FaultPlan::parse("shard_worker_panic@0,1").expect("spec"));
            exec.set_fault_plan(Some(Arc::clone(&plan)));
            let scores = exec.try_score_batch(&reqs).expect("supervised batch completes");
            let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
            let base_bits: Vec<u64> = baseline.iter().map(|s| s.to_bits()).collect();
            assert_eq!(bits, base_bits, "threads = {threads}: recovery must be bit-exact");
            let expected_panics = plan.fired(FaultKind::ShardWorkerPanic);
            assert!(
                expected_panics >= 1,
                "threads = {threads}: the fault must actually fire"
            );
            assert_eq!(
                exec.worker_panic_count(),
                expected_panics,
                "threads = {threads}: every injected panic is counted"
            );
            // With the plan exhausted the executor serves normally.
            exec.set_fault_plan(None);
            let clean = exec.try_score_batch(&reqs).expect("clean batch");
            assert_eq!(clean.len(), reqs.len());
        }
    }

    #[test]
    fn panicked_chunk_with_malformed_request_still_reports_first_error() {
        use crate::fault::FaultPlan;
        use std::sync::Arc;

        let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(4));
        exec.set_fault_plan(Some(Arc::new(
            FaultPlan::parse("shard_worker_panic@0,1,2,3").expect("spec"),
        )));
        let mut poisoned = requests(50, 50);
        poisoned[13].metric_row = vec![0.4];
        let err = exec.try_score_batch(&poisoned).unwrap_err();
        assert_eq!(err.request_index, 13, "restart path reports the same first error");
    }

    #[test]
    fn errors_are_not_cached() {
        let exec = ShardedExecutor::new(
            engine(),
            ServeConfig {
                threads: 1,
                cache_capacity: 64,
                cache_shards: 4,
            },
        );
        let mut scratch = exec.engine().scratch();
        let mut bad = requests(1, 1).remove(0);
        bad.metric_row = vec![];
        assert!(exec.try_score_one(&bad, &mut scratch).is_err());
        // The same pair id with a well-formed row scores fresh (a miss, not a
        // poisoned hit).
        let good = requests(1, 1).remove(0);
        let score = exec.try_score_one(&good, &mut scratch).expect("well-formed");
        assert!(score.is_finite());
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
    }
}
