//! Regenerates Figure 12 (sensitivity to the size of risk-training data).
use er_eval::{render_sensitivity, run_fig12};

fn main() {
    let config = er_bench::config_from_args(0.05);
    let points = run_fig12(&config);
    println!("{}", render_sensitivity(&points));
}
