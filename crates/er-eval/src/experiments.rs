//! Experiment runners reproducing the paper's tables and figures.
//!
//! Each function regenerates one table or figure of the evaluation section at
//! a configurable workload scale.  The `er-bench` crate wraps these runners in
//! binaries and Criterion benches; `EXPERIMENTS.md` records the measured
//! results next to the paper's.

use crate::active::{run_active_learning, ActiveLearningConfig, ActiveLearningCurve, SelectionStrategy};
use crate::ood::{project_workload, schemas_compatible};
use crate::pipeline::{run_pipeline, run_pipeline_on_splits, PipelineConfig, PipelineResult};
use er_base::{SplitRatio, Workload};
use er_classifier::TrainConfig;
use er_datasets::{generate_benchmark, table2, BenchmarkId, Table2Row};
use er_rulegen::OneSidedTreeConfig;
use learnrisk_core::RiskTrainConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Global experiment configuration: the workload scale and the seed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Scale factor applied to the paper's dataset sizes (1.0 = full size).
    pub scale: f64,
    /// Random seed shared by dataset generation and pipelines.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 0.05,
            seed: 2020,
        }
    }
}

impl ExperimentConfig {
    /// A configuration small enough for CI tests.
    pub fn tiny() -> Self {
        Self {
            scale: 0.02,
            seed: 2020,
        }
    }
}

fn default_pipeline(seed: u64) -> PipelineConfig {
    PipelineConfig {
        matcher_config: TrainConfig {
            epochs: 30,
            ..Default::default()
        },
        risk_train_config: RiskTrainConfig {
            epochs: 120,
            ..Default::default()
        },
        seed,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// Reproduces Table 2: dataset statistics (paper vs generated).
pub fn run_table2(config: &ExperimentConfig) -> Vec<Table2Row> {
    table2(config.scale, config.seed)
}

// ---------------------------------------------------------------------------
// Figure 9 — comparative evaluation
// ---------------------------------------------------------------------------

/// Reproduces Figure 9: AUROC of every risk method on the four datasets at the
/// three split ratios.
pub fn run_fig9(config: &ExperimentConfig) -> Vec<PipelineResult> {
    let mut out = Vec::new();
    for id in BenchmarkId::paper_datasets() {
        let ds = generate_benchmark(id, config.scale, config.seed);
        for ratio in SplitRatio::paper_ratios() {
            let pipeline = default_pipeline(config.seed);
            let (result, _) = run_pipeline(&ds.workload, ratio, &pipeline);
            out.push(result);
        }
    }
    out
}

/// Figure 9 restricted to one dataset and one ratio (useful for quick checks
/// and Criterion benches).
pub fn run_fig9_cell(id: BenchmarkId, ratio: SplitRatio, config: &ExperimentConfig) -> PipelineResult {
    let ds = generate_benchmark(id, config.scale, config.seed);
    let pipeline = default_pipeline(config.seed);
    run_pipeline(&ds.workload, ratio, &pipeline).0
}

// ---------------------------------------------------------------------------
// Figure 10 — out-of-distribution evaluation
// ---------------------------------------------------------------------------

/// The two OOD workloads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OodWorkload {
    /// Classifier trained on DBLP-ACM, risk-trained/tested on DBLP-Scholar.
    Da2Ds,
    /// Classifier trained on Abt-Buy, risk-trained/tested on Amazon-Google.
    Ab2Ag,
}

impl OodWorkload {
    /// Name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            OodWorkload::Da2Ds => "DA2DS",
            OodWorkload::Ab2Ag => "AB2AG",
        }
    }

    /// (classifier-training source, evaluation target) benchmark pair.
    pub fn datasets(self) -> (BenchmarkId, BenchmarkId) {
        match self {
            OodWorkload::Da2Ds => (BenchmarkId::DblpAcm, BenchmarkId::DblpScholar),
            OodWorkload::Ab2Ag => (BenchmarkId::AbtBuy, BenchmarkId::AmazonGoogle),
        }
    }
}

/// Reproduces Figure 10: the OOD evaluation on DA2DS and AB2AG.
pub fn run_fig10(config: &ExperimentConfig) -> Vec<PipelineResult> {
    [OodWorkload::Da2Ds, OodWorkload::Ab2Ag]
        .into_iter()
        .map(|w| run_fig10_workload(w, config))
        .collect()
}

/// Runs one OOD workload: the classifier trains on the source benchmark, the
/// risk model trains on the target's validation split, evaluation happens on
/// the target's test split.
pub fn run_fig10_workload(workload: OodWorkload, config: &ExperimentConfig) -> PipelineResult {
    let (source_id, target_id) = workload.datasets();
    let source = generate_benchmark(source_id, config.scale, config.seed);
    let target = generate_benchmark(target_id, config.scale, config.seed.wrapping_add(1));

    // Align the target onto the source schema when they differ (AB2AG).
    let target_workload: Workload = if schemas_compatible(&source.workload, &target.workload) {
        target.workload.clone()
    } else {
        project_workload(&target.workload, &source.workload.left_schema)
    };

    // Source: everything is classifier-training data.  Target: 40% risk
    // training (validation), 60% test — mirroring the paper's use of the
    // target's validation data for risk training.
    let mut rng = er_base::rng::substream(config.seed, 0xB0);
    let train = source.workload.pairs().to_vec();
    let target_split = target_workload.split_by_ratio(SplitRatio::new(0, 4, 6), &mut rng);
    let valid = target_workload.select(&target_split.valid);
    let test = target_workload.select(&target_split.test);

    let pipeline = default_pipeline(config.seed);
    let (result, _) = run_pipeline_on_splits(
        workload.name(),
        "OOD",
        Arc::clone(&source.workload.left_schema),
        &train,
        &valid,
        &test,
        &pipeline,
    );
    result
}

// ---------------------------------------------------------------------------
// Figure 11 — comparison with HoloClean
// ---------------------------------------------------------------------------

/// Reproduces Figure 11: LearnRisk vs the HoloClean adaptation on sampled
/// workloads (the paper samples 1000–2000 pairs and averages 5 subsets).
pub fn run_fig11(config: &ExperimentConfig, subsets: usize) -> Vec<PipelineResult> {
    let mut out = Vec::new();
    for id in BenchmarkId::paper_datasets() {
        let sample_size = if id == BenchmarkId::Songs { 2000 } else { 1000 };
        let mut aggregated: Option<PipelineResult> = None;
        for s in 0..subsets.max(1) {
            let ds = generate_benchmark(id, config.scale, config.seed.wrapping_add(s as u64));
            let workload = subsample_workload(&ds.workload, sample_size, config.seed.wrapping_add(s as u64));
            let pipeline = PipelineConfig {
                run_holoclean: true,
                ..default_pipeline(config.seed)
            };
            let (result, _) = run_pipeline(&workload, SplitRatio::new(3, 2, 5), &pipeline);
            aggregated = Some(match aggregated {
                None => result,
                Some(mut acc) => {
                    for (m_acc, m_new) in acc.methods.iter_mut().zip(&result.methods) {
                        m_acc.auroc += m_new.auroc;
                    }
                    acc.test_mislabeled += result.test_mislabeled;
                    acc
                }
            });
        }
        let mut final_result = aggregated.expect("at least one subset");
        for m in final_result.methods.iter_mut() {
            m.auroc /= subsets.max(1) as f64;
            m.scores.clear(); // averaged result keeps only the AUROC
        }
        out.push(final_result);
    }
    out
}

/// Randomly subsamples a workload to at most `size` pairs.
pub fn subsample_workload(workload: &Workload, size: usize, seed: u64) -> Workload {
    let mut rng = er_base::rng::substream(seed, 0xC0);
    let ids = workload.sample_ids(size, &mut rng);
    let pairs: Vec<er_base::Pair> = ids
        .iter()
        .enumerate()
        .map(|(k, id)| {
            let mut p = workload.pair(*id).clone();
            p.id = er_base::PairId(k as u32);
            p
        })
        .collect();
    Workload::new(
        workload.name.clone(),
        Arc::clone(&workload.left_schema),
        Arc::clone(&workload.right_schema),
        pairs,
    )
}

// ---------------------------------------------------------------------------
// Figure 12 — sensitivity to the size of risk-training data
// ---------------------------------------------------------------------------

/// One point of the Figure 12 sensitivity curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Dataset name.
    pub dataset: String,
    /// Selection mode (`"random"` or `"active"`).
    pub mode: String,
    /// Size of the risk-training data (pairs for active mode, percentage
    /// points of the workload for random mode).
    pub size: usize,
    /// LearnRisk AUROC on the fixed test split.
    pub auroc: f64,
}

/// Reproduces Figure 12: LearnRisk AUROC as a function of the risk-training
/// data size, with random and active (ambiguity-driven) selection, on DS and
/// AB.  The classifier split is fixed at 30% train / 50% test.
pub fn run_fig12(config: &ExperimentConfig) -> Vec<SensitivityPoint> {
    let mut out = Vec::new();
    for id in [BenchmarkId::DblpScholar, BenchmarkId::AbtBuy] {
        let ds = generate_benchmark(id, config.scale, config.seed);
        let workload = &ds.workload;
        let mut rng = er_base::rng::substream(config.seed, 0xD0);
        let split = workload.split_by_ratio(SplitRatio::new(3, 2, 5), &mut rng);
        let train = workload.select(&split.train);
        let test = workload.select(&split.test);
        let pool = workload.select(&split.valid); // candidate risk-training pool

        // Random sampling: 1%, 5%, 10%, 15%, 20% of the workload size.
        for &pct in &[1usize, 5, 10, 15, 20] {
            let k = ((workload.len() * pct) / 100).clamp(10, pool.len());
            let valid: Vec<er_base::Pair> = pool.iter().take(k).cloned().collect();
            let pipeline = default_pipeline(config.seed);
            let (result, _) = run_pipeline_on_splits(
                workload.name.as_str(),
                &format!("random-{pct}%"),
                Arc::clone(&workload.left_schema),
                &train,
                &valid,
                &test,
                &pipeline,
            );
            out.push(SensitivityPoint {
                dataset: workload.name.clone(),
                mode: "random".into(),
                size: pct,
                auroc: result.auroc_of("LearnRisk").unwrap_or(0.5),
            });
        }

        // Active selection: 100, 200, 300, 400 pairs with the highest ambiguity.
        let pipeline = default_pipeline(config.seed);
        // Train the classifier once to get ambiguity scores over the pool.
        let evaluator = er_similarity::MetricEvaluator::from_pairs(Arc::clone(&workload.left_schema), &train);
        let mut matcher = er_classifier::ErMatcher::new(evaluator, pipeline.matcher, pipeline.matcher_config);
        matcher.train(&train);
        let pool_probs = matcher.predict(&pool);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            let amb_a = 0.5 - (pool_probs[a] - 0.5).abs();
            let amb_b = 0.5 - (pool_probs[b] - 0.5).abs();
            amb_b.partial_cmp(&amb_a).unwrap_or(std::cmp::Ordering::Equal)
        });
        for &k in &[100usize, 200, 300, 400] {
            let take = k.min(pool.len());
            let valid: Vec<er_base::Pair> = order.iter().take(take).map(|&i| pool[i].clone()).collect();
            let (result, _) = run_pipeline_on_splits(
                workload.name.as_str(),
                &format!("active-{k}"),
                Arc::clone(&workload.left_schema),
                &train,
                &valid,
                &test,
                &pipeline,
            );
            out.push(SensitivityPoint {
                dataset: workload.name.clone(),
                mode: "active".into(),
                size: k,
                auroc: result.auroc_of("LearnRisk").unwrap_or(0.5),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 13 — scalability
// ---------------------------------------------------------------------------

/// One point of the Figure 13 scalability curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityPoint {
    /// Which stage is being measured (`"rule_generation"`, `"risk_training"`
    /// or `"engine_scoring[tN]"` for the serving engine at N threads).
    pub stage: String,
    /// Number of training pairs.
    pub training_size: usize,
    /// Wall-clock runtime in seconds.
    pub runtime_secs: f64,
    /// Scored pairs per second (serving stages only).
    pub throughput_pairs_per_sec: Option<f64>,
}

/// Classifier-output probabilities of a synthetic classifier with the given
/// `accuracy` over ground-truth labels: each pair is labeled correctly with
/// probability `accuracy` and carries confidence 0.8 (match) / 0.2 (unmatch).
///
/// Shared by the fig13 scalability experiment and `er-bench`'s training
/// workload builder, so both synthesize risk-training data (including actual
/// mislabeled pairs to rank) the same way.
pub fn synthetic_classifier_probs<R: Rng + ?Sized>(labels: &[er_base::Label], accuracy: f64, rng: &mut R) -> Vec<f64> {
    labels
        .iter()
        .map(|l| {
            let says_match = rng.gen_bool(accuracy) == l.is_match();
            if says_match {
                0.8
            } else {
                0.2
            }
        })
        .collect()
}

/// Reproduces Figure 13, extended with the serving engine: runtime of rule
/// generation and of risk-model training as a function of the training-data
/// size on DS-style workloads, plus the `er-serve` engine's batched-scoring
/// throughput on the same pairs at each requested thread count — so the
/// paper's offline scalability and the serving-path scalability land in one
/// table.
pub fn run_fig13(config: &ExperimentConfig, sizes: &[usize], threads: &[usize]) -> Vec<ScalabilityPoint> {
    let mut out = Vec::new();
    let max_size = sizes.iter().copied().max().unwrap_or(2000);
    // Generate one large workload and take prefixes, so the curves measure the
    // same data distribution at increasing sizes.
    let scale = (max_size as f64 * 2.5) / BenchmarkId::DblpScholar.paper_size() as f64;
    let ds = generate_benchmark(BenchmarkId::DblpScholar, scale.max(0.02), config.seed);
    let workload = &ds.workload;
    let evaluator = er_similarity::MetricEvaluator::from_pairs(Arc::clone(&workload.left_schema), workload.pairs());
    let all_rows = evaluator.eval_pairs(workload.pairs());
    let all_labels: Vec<er_base::Label> = workload.pairs().iter().map(|p| p.truth).collect();

    for &size in sizes {
        let n = size.min(workload.len());
        // Rule generation runtime.
        let rows = &all_rows[..n];
        let labels = &all_labels[..n];
        let start = Instant::now();
        let rules = er_rulegen::generate_rules(rows, labels, OneSidedTreeConfig::default());
        out.push(ScalabilityPoint {
            stage: "rule_generation".into(),
            training_size: n,
            runtime_secs: start.elapsed().as_secs_f64(),
            throughput_pairs_per_sec: None,
        });

        // Risk-training runtime (feature construction + optimization), using
        // a synthetic ~85%-accurate classifier over the same prefix so the
        // risk-training data contains mislabeled pairs to rank (a perfectly
        // aligned classifier would make training a no-op).
        let feature_set =
            learnrisk_core::RiskFeatureSet::from_training(rules, evaluator.metrics().to_vec(), rows, labels);
        let model = learnrisk_core::LearnRiskModel::new(feature_set, Default::default());
        let mut prob_rng = er_base::rng::substream(config.seed, 0xF13 ^ n as u64);
        let probs = synthetic_classifier_probs(labels, 0.85, &mut prob_rng);
        let labeled = er_base::LabeledWorkload::from_probabilities("fig13", workload.pairs()[..n].to_vec(), &probs);
        let train_config = RiskTrainConfig {
            epochs: 50,
            ..Default::default()
        };
        let start = Instant::now();
        let inputs = crate::pipeline::build_inputs_from_labeled(&evaluator, &model.features, &labeled);
        let input_secs = start.elapsed().as_secs_f64();
        let mut trained = model.clone();
        let start = Instant::now();
        learnrisk_core::train_with_threads(&mut trained, &inputs, &train_config, 1);
        let single_thread_secs = start.elapsed().as_secs_f64();
        out.push(ScalabilityPoint {
            stage: "risk_training".into(),
            training_size: n,
            runtime_secs: input_secs + single_thread_secs,
            throughput_pairs_per_sec: None,
        });

        // Factorized-trainer thread scaling: optimization only (inputs are
        // prebuilt), one stage per requested thread count.  Training is
        // bit-deterministic across thread counts, so these stages measure
        // pure speedup — and the 1-thread stage reuses the headline run's
        // measurement instead of training a second time.
        for &t in threads {
            let runtime_secs = if t.max(1) == 1 {
                single_thread_secs
            } else {
                let mut m = model.clone();
                let start = Instant::now();
                learnrisk_core::train_with_threads(&mut m, &inputs, &train_config, t);
                start.elapsed().as_secs_f64()
            };
            out.push(ScalabilityPoint {
                stage: format!("risk_training[t{t}]"),
                training_size: n,
                runtime_secs,
                throughput_pairs_per_sec: None,
            });
        }
        let model = trained;

        // Serving-path scalability: batched scoring of the same pairs through
        // the compiled engine, per requested thread count. The batch is
        // replayed enough times that even the smallest sizes measure more
        // than scheduler noise; caching is disabled so the number is pure
        // scoring throughput.
        let requests = crate::serving::requests_from_rows(rows, &probs);
        let engine = er_serve::ScoringEngine::new(model.clone());
        let reps = (8_000 / n.max(1)).clamp(1, 40);
        for &t in threads {
            let executor = er_serve::ShardedExecutor::new(
                engine.clone(),
                er_serve::ServeConfig {
                    threads: t.max(1),
                    cache_capacity: 0,
                    cache_shards: 1,
                },
            );
            let start = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(executor.score_batch(&requests));
            }
            let elapsed = start.elapsed().as_secs_f64();
            out.push(ScalabilityPoint {
                stage: format!("engine_scoring[t{t}]"),
                training_size: n,
                runtime_secs: elapsed / reps as f64,
                throughput_pairs_per_sec: Some((n * reps) as f64 / elapsed.max(1e-12)),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 14 — active learning
// ---------------------------------------------------------------------------

/// Reproduces Figure 14: F1 learning curves of LeastConfidence, Entropy and
/// LearnRisk-driven active learning on a DS-style workload.
pub fn run_fig14(config: &ExperimentConfig, rounds: usize) -> Vec<ActiveLearningCurve> {
    let ds = generate_benchmark(BenchmarkId::DblpScholar, config.scale, config.seed);
    let pairs = ds.workload.pairs();
    let n_pool = pairs.len() * 6 / 10;
    let pool = &pairs[..n_pool];
    let test = &pairs[n_pool..];
    let al_config = ActiveLearningConfig {
        rounds,
        seed: config.seed,
        ..Default::default()
    };
    [
        SelectionStrategy::LeastConfidence,
        SelectionStrategy::Entropy,
        SelectionStrategy::LearnRisk,
    ]
    .into_iter()
    .map(|s| run_active_learning(ds.workload.left_schema.clone(), pool, test, s, &al_config))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_schema_shapes() {
        let rows = run_table2(&ExperimentConfig::tiny());
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert_eq!(row.generated_attributes, row.paper_attributes);
        }
    }

    #[test]
    fn fig9_cell_runs_end_to_end() {
        let result = run_fig9_cell(
            BenchmarkId::AmazonGoogle,
            SplitRatio::new(3, 2, 5),
            &ExperimentConfig::tiny(),
        );
        assert_eq!(result.methods.len(), 5);
        assert!(result.auroc_of("LearnRisk").is_some());
        assert!(result.test_mislabeled > 0);
    }

    #[test]
    fn fig10_ood_workload_runs() {
        let result = run_fig10_workload(OodWorkload::Ab2Ag, &ExperimentConfig::tiny());
        assert_eq!(result.dataset, "AB2AG");
        assert!(result.auroc_of("LearnRisk").unwrap() > 0.5);
    }

    #[test]
    fn subsample_preserves_schema_and_caps_size() {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.02, 7);
        let sub = subsample_workload(&ds.workload, 100, 3);
        assert_eq!(sub.len(), 100);
        assert_eq!(sub.attribute_count(), 4);
        let huge = subsample_workload(&ds.workload, 10_000_000, 3);
        assert_eq!(huge.len(), ds.workload.len());
    }

    #[test]
    fn fig13_runtimes_are_measured() {
        let points = run_fig13(&ExperimentConfig::tiny(), &[200, 400], &[1, 2]);
        // Two sizes × (rule_generation + risk_training + two per-thread
        // training stages + two serving stages).
        assert_eq!(points.len(), 12);
        assert!(points.iter().all(|p| p.runtime_secs >= 0.0));
        assert!(points.iter().any(|p| p.stage == "rule_generation"));
        assert!(points.iter().any(|p| p.stage == "risk_training"));
        let training: Vec<_> = points
            .iter()
            .filter(|p| p.stage.starts_with("risk_training[t"))
            .collect();
        assert_eq!(training.len(), 4, "one training stage per size per thread count");
        let serving: Vec<_> = points
            .iter()
            .filter(|p| p.stage.starts_with("engine_scoring"))
            .collect();
        assert_eq!(serving.len(), 4);
        for p in &serving {
            let tp = p.throughput_pairs_per_sec.expect("serving stages report throughput");
            assert!(tp > 0.0, "{} throughput {tp}", p.stage);
        }
        assert!(
            points
                .iter()
                .filter(|p| !p.stage.starts_with("engine_scoring"))
                .all(|p| p.throughput_pairs_per_sec.is_none()),
            "offline stages carry no throughput"
        );
    }
}
