//! Out-of-distribution (OOD) workload construction (Figure 10 of the paper).
//!
//! In the OOD setting the classifier-training data come from one benchmark
//! while the validation (risk-training) and test data come from another:
//! `DA2DS` trains on DBLP-ACM and evaluates on DBLP-Scholar, `AB2AG` trains on
//! Abt-Buy and evaluates on Amazon-Google.  Because Abt-Buy and Amazon-Google
//! have different schemas (3 vs 4 attributes), the target workload is first
//! *projected* onto the source schema by attribute name so that the classifier
//! and the risk features operate on a shared feature space.

use er_base::{Pair, Record, Schema, Workload};
use std::sync::Arc;

/// Projects a workload onto a subset of its attributes, by name, producing a
/// workload whose records follow `target_schema`'s attribute order.
///
/// Attributes of `target_schema` missing from the source schema are filled
/// with `Null` (carrying no evidence), which mirrors applying a pre-trained
/// model to a schema-aligned view of new data.
pub fn project_workload(workload: &Workload, target_schema: &Arc<Schema>) -> Workload {
    let source = &workload.left_schema;
    let mapping: Vec<Option<usize>> = target_schema.attrs().iter().map(|a| source.index_of(&a.name)).collect();

    let project_record = |r: &Arc<Record>| -> Arc<Record> {
        let values = mapping
            .iter()
            .map(|m| match m {
                Some(i) => r.values[*i].clone(),
                None => er_base::AttrValue::Null,
            })
            .collect();
        Arc::new(Record::new(r.id, values))
    };

    let pairs = workload
        .pairs()
        .iter()
        .map(|p| Pair::new(p.id, project_record(&p.left), project_record(&p.right), p.truth))
        .collect();
    Workload::new(
        workload.name.clone(),
        Arc::clone(target_schema),
        Arc::clone(target_schema),
        pairs,
    )
}

/// Checks whether two workloads already share a schema (attribute names and
/// types in order), in which case projection is unnecessary.
pub fn schemas_compatible(a: &Workload, b: &Workload) -> bool {
    a.left_schema.as_ref() == b.left_schema.as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_benchmark, BenchmarkId};

    #[test]
    fn dblp_acm_and_scholar_share_schema() {
        let da = generate_benchmark(BenchmarkId::DblpAcm, 0.02, 1);
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.02, 2);
        assert!(schemas_compatible(&da.workload, &ds.workload));
    }

    #[test]
    fn amazon_google_projects_onto_abt_buy_schema() {
        let ab = generate_benchmark(BenchmarkId::AbtBuy, 0.008, 3);
        let ag = generate_benchmark(BenchmarkId::AmazonGoogle, 0.03, 4);
        assert!(!schemas_compatible(&ab.workload, &ag.workload));
        let projected = project_workload(&ag.workload, &ab.workload.left_schema);
        assert_eq!(projected.attribute_count(), 3);
        assert_eq!(projected.len(), ag.workload.len());
        assert_eq!(projected.match_count(), ag.workload.match_count());
        // The name attribute survives the projection with its content.
        let p = &projected.pairs()[0];
        let orig = &ag.workload.pairs()[0];
        assert_eq!(p.left.values[0], orig.left.values[0]);
    }

    #[test]
    fn missing_attributes_become_null() {
        let ab = generate_benchmark(BenchmarkId::AbtBuy, 0.008, 5);
        let ag = generate_benchmark(BenchmarkId::AmazonGoogle, 0.03, 6);
        // Project AB (3 attrs: name, description, price) onto AG's 4-attr schema;
        // the manufacturer attribute does not exist in AB and must be Null.
        let projected = project_workload(&ab.workload, &ag.workload.left_schema);
        assert_eq!(projected.attribute_count(), 4);
        let manu_idx = ag.workload.left_schema.index_of("manufacturer").unwrap();
        assert!(projected.pairs().iter().all(|p| p.left.values[manu_idx].is_null()));
    }
}
