//! HTTP/1.1 parser conformance over a raw [`TcpStream`]: the
//! request-smuggling class of bugs that only matter once a proxy hop
//! (`er-gateway`) sits in front of the server.
//!
//! Covered, each driven byte-by-byte over a real socket:
//! - duplicate `Content-Length` headers: identical repeats are tolerated,
//!   conflicting repeats are a 400 and the connection closes
//!   (RFC 7230 §3.3.3 — anything laxer lets a gateway and a backend frame
//!   the stream differently);
//! - `Connection` header token lists: `close` is honored inside a
//!   comma-separated list and survives a later `Connection` header rather
//!   than being overwritten last-wins;
//! - `Expect: 100-continue`: the server emits the `100 Continue` interim
//!   response so conforming clients do not stall before sending the body;
//! - the client-side [`read_http_response`] applies the same
//!   conflicting-`Content-Length` rejection to response framing.

use er_base::Label;
use er_rulegen::{CmpOp, Condition, Rule};
use er_serve::{
    read_http_response, ModelArtifact, ReloadableExecutor, ScoreServer, ScoringEngine, ServeConfig, ServerConfig,
};
use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn tiny_model() -> LearnRiskModel {
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 12, 0.9),
        Rule::new(vec![Condition::new(1, CmpOp::Le, 0.4)], Label::Equivalent, 8, 0.85),
    ];
    let feature_set = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.1, 0.9],
        support: vec![12, 8],
    };
    LearnRiskModel::new(feature_set, RiskModelConfig::default())
}

fn start_server() -> ScoreServer {
    let executor = Arc::new(ReloadableExecutor::new(
        ScoringEngine::new(tiny_model()),
        ServeConfig::default().with_threads(1),
    ));
    ScoreServer::start(executor, ServerConfig::default()).expect("bind")
}

/// Reads exactly one `Content-Length`-framed response head + body off the
/// stream, returning `(status, head, body)`. Interim responses (no
/// `Content-Length`, no body) parse as an empty body.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(
            n > 0,
            "EOF before response head; got {:?}",
            String::from_utf8_lossy(&buffer)
        );
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buffer[..head_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let content_length: usize = head
        .lines()
        .filter_map(|line| line.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("content-length"))
        .map(|(_, value)| value.trim().parse().expect("numeric Content-Length"))
        .unwrap_or(0);
    let mut body = buffer[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    let extra = body.split_off(content_length);
    assert!(
        extra.is_empty() || content_length == 0,
        "unexpected trailing bytes: {extra:?}"
    );
    (status, head, body)
}

/// The stream is closed by the peer: the next read returns EOF (possibly
/// after draining stray bytes, of which there must be none).
fn assert_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    let mut chunk = [0u8; 64];
    match stream.read(&mut chunk) {
        Ok(0) => {}
        Ok(n) => panic!(
            "expected EOF, got {n} bytes: {:?}",
            String::from_utf8_lossy(&chunk[..n])
        ),
        Err(e) => panic!("expected EOF, got error {e}"),
    }
}

#[test]
fn duplicate_identical_content_length_headers_are_tolerated() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let body = "x";
    let request = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: {len}\r\nContent-Length: {len}\r\n\r\n{body}",
        len = body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let (status, _, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn conflicting_content_length_headers_are_rejected_with_400() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Last-one-wins would frame the stream with length 1 and treat the
    // trailing "GET /x ..." as a second request — the smuggling shape.
    let request = "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\nContent-Length: 99\r\n\r\nx";
    stream.write_all(request.as_bytes()).expect("write");
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("Content-Length"), "{text}");
    // Framing is ambiguous, so the server must not keep reading the stream.
    assert_closed(&mut stream);
    server.shutdown();
}

#[test]
fn connection_close_inside_a_token_list_is_honored() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let request = "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close, x-custom\r\n\r\n";
    stream.write_all(request.as_bytes()).expect("write");
    let (status, _, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert_closed(&mut stream);
    server.shutdown();
}

#[test]
fn connection_close_survives_a_later_connection_header() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Last-wins parsing would let the second header un-set close.
    let request = "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n";
    stream.write_all(request.as_bytes()).expect("write");
    let (status, _, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert_closed(&mut stream);
    server.shutdown();
}

#[test]
fn keep_alive_connections_still_serve_multiple_requests() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    for _ in 0..3 {
        let request = "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
        stream.write_all(request.as_bytes()).expect("write");
        let (status, _, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
    }
    server.shutdown();
}

#[test]
fn expect_100_continue_gets_an_interim_response_before_the_final_one() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let body = "[]";
    // A conforming client sends the head, then waits for `100 Continue`
    // before transmitting the body. Without the interim response this test
    // deadlocks (bounded by the read timeout) — the pre-fix behavior.
    let head = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let (interim_status, interim_head, _) = read_one_response(&mut stream);
    assert_eq!(interim_status, 100, "{interim_head}");
    stream.write_all(body.as_bytes()).expect("write body");
    let (status, _, final_body) = read_one_response(&mut stream);
    // What matters here is that the request completed instead of stalling
    // out waiting for a body the client was never going to send.
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&final_body));
    assert!(
        String::from_utf8_lossy(&final_body).contains("scores"),
        "{}",
        String::from_utf8_lossy(&final_body)
    );
    server.shutdown();
}

#[test]
fn expect_100_continue_is_emitted_once_per_request_not_per_read() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let body = "[]";
    let head = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    let (interim_status, _, _) = read_one_response(&mut stream);
    assert_eq!(interim_status, 100);
    // Dribble the body one byte at a time: each partial parse must NOT
    // repeat the interim response.
    for byte in body.as_bytes() {
        stream.write_all(&[*byte]).expect("write byte");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, head, _) = read_one_response(&mut stream);
    assert_ne!(status, 100, "second interim response leaked: {head}");
    server.shutdown();
}

#[test]
fn client_read_response_rejects_conflicting_content_length() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        stream
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nokay!")
            .expect("write");
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let err = read_http_response(&mut stream).expect_err("conflicting framing must not parse");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("Content-Length"), "{err}");
    fake_server.join().expect("fake server");
}

#[test]
fn client_read_response_accepts_duplicate_identical_content_length() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        stream
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nokay")
            .expect("write");
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let response = read_http_response(&mut stream).expect("identical repeats are unambiguous");
    assert_eq!(response.status, 200);
    assert_eq!(response.body, "okay");
    fake_server.join().expect("fake server");
}

// Referenced so the import list matches across test binaries that share
// helper idioms; artifact round-trips get exercised in the gateway tests.
#[test]
fn artifact_round_trip_still_byte_stable() {
    let artifact = ModelArtifact::new(tiny_model());
    let json = artifact.to_json();
    let reloaded = ModelArtifact::from_json(&json).expect("parse");
    assert_eq!(reloaded.to_json(), json);
}
