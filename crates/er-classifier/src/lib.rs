//! # er-classifier
//!
//! Machine-learning ER matchers used as the classifier under risk analysis —
//! the workspace's substitute for DeepMatcher (see `DESIGN.md`).
//!
//! * [`features`] — pair featurization from basic similarity metrics plus
//!   standardization.
//! * [`optim`] — SGD / Adam optimizers and L1/L2 regularization, shared with
//!   the risk-model trainer.
//! * [`linear`] — logistic regression.
//! * [`mlp`] — a small multi-layer perceptron with manual backpropagation.
//! * [`ensemble`] — bootstrap ensembles (the `Uncertainty` baseline substrate).
//! * [`classifier`] — the [`classifier::Classifier`] trait and the end-to-end
//!   [`classifier::ErMatcher`].

#![warn(missing_docs)]

pub mod classifier;
pub mod ensemble;
pub mod features;
pub mod linear;
pub mod mlp;
pub mod optim;

pub use classifier::{Classifier, ErMatcher, MatcherKind, TrainConfig};
pub use ensemble::BootstrapEnsemble;
pub use features::{targets, PairFeaturizer, Standardizer};
pub use linear::LogisticRegression;
pub use mlp::Mlp;
pub use optim::{Adam, Optimizer, Regularization, Sgd};
