//! Plain-text reporting of experiment results.
//!
//! The benchmark binaries print these tables so that the rows/series the paper
//! reports can be regenerated and compared at a glance (and pasted into
//! `EXPERIMENTS.md`).

use crate::active::ActiveLearningCurve;
use crate::experiments::{ScalabilityPoint, SensitivityPoint};
use crate::pipeline::PipelineResult;
use er_datasets::Table2Row;
use std::fmt::Write as _;

/// Renders the Table 2 reproduction.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2 — dataset statistics (paper vs generated)");
    let _ = writeln!(
        s,
        "{:<8} {:>12} {:>12} {:>8}   {:>12} {:>12} {:>8}",
        "Dataset", "paper size", "paper match", "attrs", "gen size", "gen match", "attrs"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>12} {:>12} {:>8}   {:>12} {:>12} {:>8}",
            r.dataset,
            r.paper_size,
            r.paper_matches,
            r.paper_attributes,
            r.generated_size,
            r.generated_matches,
            r.generated_attributes
        );
    }
    s
}

/// Renders a block of pipeline results (Figure 9 / 10 / 11 style): one row per
/// dataset×ratio, one column per risk method.
pub fn render_auroc_table(title: &str, results: &[PipelineResult]) -> String {
    let mut methods: Vec<String> = Vec::new();
    for r in results {
        for m in &r.methods {
            if !methods.contains(&m.method) {
                methods.push(m.method.clone());
            }
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{:<10} {:<8} {:>6} {:>6}", "Dataset", "Ratio", "F1", "#mis");
    for m in &methods {
        let _ = write!(s, " {m:>12}");
    }
    let _ = writeln!(s);
    for r in results {
        let _ = write!(
            s,
            "{:<10} {:<8} {:>6.3} {:>6}",
            r.dataset, r.ratio, r.classifier_f1, r.test_mislabeled
        );
        for m in &methods {
            match r.auroc_of(m) {
                Some(a) => {
                    let _ = write!(s, " {a:>12.3}");
                }
                None => {
                    let _ = write!(s, " {:>12}", "-");
                }
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// Renders the Figure 12 sensitivity points.
pub fn render_sensitivity(points: &[SensitivityPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 12 — LearnRisk AUROC vs risk-training data size");
    let _ = writeln!(s, "{:<10} {:<8} {:>8} {:>8}", "Dataset", "Mode", "Size", "AUROC");
    for p in points {
        let _ = writeln!(s, "{:<10} {:<8} {:>8} {:>8.3}", p.dataset, p.mode, p.size, p.auroc);
    }
    s
}

/// Renders the Figure 13 scalability points (offline stages plus the serving
/// engine's batched-scoring throughput).
pub fn render_scalability(points: &[ScalabilityPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 13 — runtime vs training-data size");
    let _ = writeln!(
        s,
        "{:<20} {:>10} {:>12} {:>14}",
        "Stage", "Size", "Runtime (s)", "Pairs/s"
    );
    for p in points {
        let throughput = match p.throughput_pairs_per_sec {
            Some(tp) => format!("{tp:>14.0}"),
            None => format!("{:>14}", "-"),
        };
        let _ = writeln!(
            s,
            "{:<20} {:>10} {:>12.3} {throughput}",
            p.stage, p.training_size, p.runtime_secs
        );
    }
    s
}

/// Renders the Figure 14 active-learning curves.
pub fn render_active_learning(curves: &[ActiveLearningCurve]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 14 — active learning: F1 vs number of labeled pairs");
    for c in curves {
        let _ = write!(s, "{:<16}", c.strategy);
        for p in &c.points {
            let _ = write!(s, " {}:{:.3}", p.labeled, p.f1);
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::ActiveLearningPoint;
    use crate::pipeline::MethodResult;

    fn result(dataset: &str, auroc: f64) -> PipelineResult {
        PipelineResult {
            dataset: dataset.into(),
            ratio: "3:2:5".into(),
            classifier_f1: 0.8,
            test_size: 100,
            test_mislabeled: 12,
            rule_count: 30,
            methods: vec![
                MethodResult {
                    method: "Baseline".into(),
                    auroc: 0.7,
                    scores: vec![],
                },
                MethodResult {
                    method: "LearnRisk".into(),
                    auroc,
                    scores: vec![],
                },
            ],
            rule_generation_secs: 0.1,
            risk_training_secs: 0.2,
        }
    }

    #[test]
    fn auroc_table_contains_all_methods_and_rows() {
        let table = render_auroc_table("Figure 9", &[result("DS", 0.97), result("AB", 0.95)]);
        assert!(table.contains("Figure 9"));
        assert!(table.contains("Baseline"));
        assert!(table.contains("LearnRisk"));
        assert!(table.contains("DS"));
        assert!(table.contains("AB"));
        assert!(table.contains("0.970"));
    }

    #[test]
    fn table2_rendering_includes_each_dataset() {
        let rows = vec![Table2Row {
            dataset: "DS".into(),
            paper_size: 41416,
            paper_matches: 5073,
            paper_attributes: 4,
            generated_size: 800,
            generated_matches: 96,
            generated_attributes: 4,
        }];
        let text = render_table2(&rows);
        assert!(text.contains("41416"));
        assert!(text.contains("DS"));
    }

    #[test]
    fn sensitivity_and_scalability_render() {
        let sens = render_sensitivity(&[SensitivityPoint {
            dataset: "DS".into(),
            mode: "random".into(),
            size: 5,
            auroc: 0.96,
        }]);
        assert!(sens.contains("random"));
        let scal = render_scalability(&[
            ScalabilityPoint {
                stage: "rule_generation".into(),
                training_size: 2000,
                runtime_secs: 1.5,
                throughput_pairs_per_sec: None,
            },
            ScalabilityPoint {
                stage: "engine_scoring[t4]".into(),
                training_size: 2000,
                runtime_secs: 0.004,
                throughput_pairs_per_sec: Some(500_000.0),
            },
        ]);
        assert!(scal.contains("rule_generation"));
        assert!(scal.contains("2000"));
        assert!(scal.contains("engine_scoring[t4]"));
        assert!(scal.contains("500000"));
        assert!(scal.contains(" -\n"), "offline stages render a dash for throughput");
    }

    #[test]
    fn active_learning_rendering() {
        let curves = vec![ActiveLearningCurve {
            strategy: "LearnRisk".into(),
            points: vec![
                ActiveLearningPoint { labeled: 128, f1: 0.5 },
                ActiveLearningPoint { labeled: 192, f1: 0.6 },
            ],
        }];
        let text = render_active_learning(&curves);
        assert!(text.contains("LearnRisk"));
        assert!(text.contains("128:0.500"));
    }
}
