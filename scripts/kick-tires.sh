#!/usr/bin/env bash
# Smoke tier ("kick the tires"): build the workspace in release mode, then run
# every er-bench figure/table binary at its smallest usable configuration,
# writing each binary's output under out/. Completes in a couple of minutes on
# a laptop; CI runs it on every push. The full reproduction tier lives in
# scripts/full.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

# Smallest workload scale at which every pipeline stage still has data
# (non-empty splits, mislabeled pairs to rank, rules to generate).
SCALE="${KICK_TIRES_SCALE:-0.012}"
OUT=out/kick-tires
BINARIES=(table2 fig9 fig10 fig11 fig12 fig13 fig14 ablation serve_bench train_bench)

# serve_bench, train_bench and fig13 also emit machine-readable results (the
# BENCH_*.json perf trajectory); keep them at stable paths so future PRs can
# diff serving, training and scalability performance. serve_bench additionally
# dumps the raw /metrics exposition it scraped during the front-end phase.
export SERVE_BENCH_JSON=out/serve_bench.json
export TRAIN_BENCH_JSON=out/train_bench.json
export FIG13_JSON=out/fig13.json
export SERVE_BENCH_METRICS_SNAPSHOT=out/metrics-snapshot.prom
export SERVE_BENCH_TRACE_SNAPSHOT=out/trace-snapshot.json

echo "== kick-tires: release build =="
# er-serve and er-gateway build the backend/router binaries that the
# serve_bench multi-process gateway phase and the gateway wiring smoke below
# spawn as real OS processes.
cargo build --release -p er-bench -p er-serve -p er-gateway

rm -rf "$OUT"
mkdir -p "$OUT"

echo "== kick-tires: running ${#BINARIES[@]} binaries at scale $SCALE =="
for bin in "${BINARIES[@]}"; do
    echo "-- $bin"
    ./target/release/"$bin" "$SCALE" >"$OUT/$bin.txt"
done

echo "== kick-tires: outputs =="
ls -l "$OUT"
test -s "$SERVE_BENCH_JSON" || { echo "missing $SERVE_BENCH_JSON" >&2; exit 1; }
test -s "$TRAIN_BENCH_JSON" || { echo "missing $TRAIN_BENCH_JSON" >&2; exit 1; }
test -s "$FIG13_JSON" || { echo "missing $FIG13_JSON" >&2; exit 1; }
echo "serve_bench JSON at $SERVE_BENCH_JSON"
echo "train_bench JSON at $TRAIN_BENCH_JSON"
echo "fig13 JSON at $FIG13_JSON"

# The serve_bench run above is also the HTTP front-end smoke: it starts the
# score server on an ephemeral port, replays traffic over raw sockets,
# hot-reloads a retrained artifact mid-replay, and runs the deliberate
# backpressure phase — exiting non-zero on any non-2xx outside that phase,
# any score-bit divergence, or a dropped request. Assert the evidence landed
# in the JSON so a silently skipped front-end phase cannot pass this tier.
grep -q '"frontend"' "$SERVE_BENCH_JSON" || { echo "serve_bench JSON is missing the frontend block" >&2; exit 1; }
grep -q '"bit_exact": true' "$SERVE_BENCH_JSON" || { echo "front-end replay did not attest bit-exactness" >&2; exit 1; }
grep -q '"bit_exact_per_version": true' "$SERVE_BENCH_JSON" \
    || { echo "mid-replay reload did not attest per-version bit-exactness" >&2; exit 1; }
grep -q '"limited_429": true' "$SERVE_BENCH_JSON" || { echo "rate-limit smoke did not attest a 429" >&2; exit 1; }
grep -q '"second_client_unaffected": true' "$SERVE_BENCH_JSON" \
    || { echo "rate-limit smoke did not attest per-client isolation" >&2; exit 1; }
echo "front-end replay + mid-replay reload + backpressure + rate-limit smoke OK"

# The high-connection-count series: the readiness-loop front-end must have
# held a >=1024-connection set (mostly idle) with zero severed connections
# and all-2xx responses. serve_bench asserts each entry at runtime; re-assert
# here that the 1024 entry landed in the JSON so a silently shrunk series
# cannot pass this tier.
grep -q '"connections": 1024' "$SERVE_BENCH_JSON" \
    || { echo "connection series is missing the 1024-connection entry" >&2; exit 1; }
grep -q '"zero_severed": true' "$SERVE_BENCH_JSON" \
    || { echo "connection series did not attest zero severed connections" >&2; exit 1; }
if grep -q '"zero_severed": false' "$SERVE_BENCH_JSON"; then
    echo "connection series severed connections" >&2
    exit 1
fi
echo "connection series OK: 1024-connection entry attested, zero severed"

# The front-end phase scraped its own GET /metrics into a snapshot file.
# Independently re-validate it here: every line must be Prometheus text
# exposition (comment or `name{labels} value`), and the scraped
# er_serve_score_requests_total must reconcile with the number of requests
# the socket replay actually sent — a counter the server under-reports is
# worse than no counter at all.
test -s "$SERVE_BENCH_METRICS_SNAPSHOT" || { echo "missing $SERVE_BENCH_METRICS_SNAPSHOT" >&2; exit 1; }
BAD_LINES=$(grep -cEv '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+(\.[0-9]+)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|NaN))$' \
    "$SERVE_BENCH_METRICS_SNAPSHOT" || true)
[[ "$BAD_LINES" == "0" ]] || {
    echo "metrics snapshot has $BAD_LINES line(s) that are not valid Prometheus text exposition" >&2
    exit 1
}
SCRAPED_SCORES=$(awk '/^er_serve_score_requests_total/ {sum += $NF} END {print sum + 0}' "$SERVE_BENCH_METRICS_SNAPSHOT")
REPLAYED=$(awk '/"replay": \{/ {r = 1} r && /"requests":/ {gsub(/[^0-9]/, ""); print; exit}' "$SERVE_BENCH_JSON")
[[ -n "$REPLAYED" && "$SCRAPED_SCORES" == "$REPLAYED" ]] || {
    echo "scraped er_serve_score_requests_total ($SCRAPED_SCORES) != replayed requests ($REPLAYED)" >&2
    exit 1
}
echo "metrics snapshot parses; score_requests_total $SCRAPED_SCORES reconciles with the $REPLAYED-request replay"

# The tracing phase ran an A/B replay (tracing-off control vs tracing-on) and
# snapshotted GET /debug/traces. Assert its attestations landed in the JSON,
# that the snapshot is Chrome trace-event JSON, and that the number of
# request-level events in the snapshot reconciles with the replayed request
# count — a tracer that silently drops timelines would otherwise still pass.
for attestation in span_counts_match spans_nest_within_totals stage_taxonomy_complete \
    totals_bracket_replay chrome_export_parsed; do
    grep -q "\"$attestation\": true" "$SERVE_BENCH_JSON" \
        || { echo "tracing phase did not attest $attestation" >&2; exit 1; }
done
test -s "$SERVE_BENCH_TRACE_SNAPSHOT" || { echo "missing $SERVE_BENCH_TRACE_SNAPSHOT" >&2; exit 1; }
grep -q '"traceEvents"' "$SERVE_BENCH_TRACE_SNAPSHOT" \
    || { echo "trace snapshot is not Chrome trace-event JSON (no traceEvents key)" >&2; exit 1; }
grep -q '"ph":"X"' "$SERVE_BENCH_TRACE_SNAPSHOT" \
    || { echo "trace snapshot has no complete (ph=X) events" >&2; exit 1; }
# One `"cat":"request"` event is emitted per retained trace; the tracing-on
# ring was sized so nothing is evicted, so the count must equal the replay's.
TRACED_REQUESTS=$(grep -o '"cat":"request"' "$SERVE_BENCH_TRACE_SNAPSHOT" | wc -l | tr -d ' ')
[[ -n "$REPLAYED" && "$TRACED_REQUESTS" == "$REPLAYED" ]] || {
    echo "trace snapshot has $TRACED_REQUESTS request timelines != replayed requests ($REPLAYED)" >&2
    exit 1
}
echo "trace snapshot parses; $TRACED_REQUESTS request timelines reconcile with the $REPLAYED-request replay"

# The chaos phase replayed traffic under the fixed-seed fault plan (injected
# worker/batcher panics, stalls, torn artifact reads, a parked tiny-deadline
# tranche). serve_bench itself asserts every invariant at runtime; re-assert
# here that the attestations landed in the JSON with the expected fault seed,
# so a silently skipped or re-seeded chaos phase cannot pass this tier.
grep -q '"fault_spec": "seed=2020;' "$SERVE_BENCH_JSON" \
    || { echo "chaos phase did not run under the fixed fault seed (seed=2020)" >&2; exit 1; }
for attestation in zero_severed_connections panics_reconciled bit_exact_across_restarts \
    old_version_served_throughout deadline_shedding_bounds_p99; do
    grep -q "\"$attestation\": true" "$SERVE_BENCH_JSON" \
        || { echo "chaos phase did not attest $attestation" >&2; exit 1; }
done
grep -q '"severed_connections": 0' "$SERVE_BENCH_JSON" \
    || { echo "chaos phase reported severed connections" >&2; exit 1; }
echo "chaos phase OK: supervised panics reconciled, zero severed connections, version pinned through torn reloads"

# The gateway phase ran against real er-serve child processes: a scaling
# series (1 and 2 backends), a hedging smoke against a fault-stalled backend,
# and both canary cycles (promotion of an equivalent artifact, automatic
# rollback of a divergent one). serve_bench asserts every invariant at
# runtime; re-assert here that the attestations landed in the JSON so a
# silently skipped gateway phase (e.g. a missing er-serve binary serializing
# the block as null) cannot pass this tier.
grep -q '"multi_process": true' "$SERVE_BENCH_JSON" \
    || { echo "gateway phase did not run against real backend processes" >&2; exit 1; }
grep -q '"backends": 2' "$SERVE_BENCH_JSON" \
    || { echo "gateway scaling series is missing the 2-backend entry" >&2; exit 1; }
grep -q '"scaling_2x":' "$SERVE_BENCH_JSON" \
    || { echo "gateway phase did not record the 2-backend scaling ratio" >&2; exit 1; }
for attestation in hedge_fired promotion_fired rollback_fired digests_converged; do
    grep -q "\"$attestation\": true" "$SERVE_BENCH_JSON" \
        || { echo "gateway phase did not attest $attestation" >&2; exit 1; }
done
if grep -qE '"(all_2xx|bit_exact)": false' "$SERVE_BENCH_JSON"; then
    echo "gateway phase reported non-2xx responses or score divergence" >&2
    exit 1
fi
echo "gateway phase OK: 2-backend scaling, hedge fired, canary promoted and rolled back, scores bit-exact"

# The standalone gateway smoke: two in-process backends behind an in-process
# gateway, 32 scores bit-exact through the hop, then one full automatic
# rollback cycle on an injected divergent artifact.
echo "== kick-tires: gateway smoke =="
./target/release/gateway_smoke | tee "$OUT/gateway_smoke.txt"
grep -q "gateway smoke OK" "$OUT/gateway_smoke.txt" || { echo "gateway smoke did not pass" >&2; exit 1; }

# Binary wiring: spawn the real er-gateway binary in front of two real
# er-serve binaries on localhost (reusing the artifact serve_bench exported),
# then talk raw HTTP/1.1 to the gateway over /dev/tcp — liveness, stats, and
# the RFC 7230 conflicting-Content-Length rejection at the gateway's own
# parser.
echo "== kick-tires: gateway binary wiring =="
GATEWAY_ARTIFACT=out/serve_model.json
test -s "$GATEWAY_ARTIFACT" || { echo "missing $GATEWAY_ARTIFACT (serve_bench exports it)" >&2; exit 1; }
GW_PIDS=()
cleanup_gateway() {
    local pid
    for pid in "${GW_PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup_gateway EXIT
wait_for_banner() { # log-file -> prints the listening addr from the banner
    local log=$1 i
    for i in $(seq 1 100); do
        if grep -q '^LISTENING ' "$log" 2>/dev/null; then
            awk '/^LISTENING/ {print $2; exit}' "$log"
            return 0
        fi
        sleep 0.1
    done
    echo "no LISTENING banner in $log after 10s" >&2
    return 1
}
http_request() { # addr request-bytes -> prints the full HTTP response
    local addr=$1 request=$2
    exec 9<>"/dev/tcp/${addr%:*}/${addr#*:}"
    printf '%b' "$request" >&9
    cat <&9
    exec 9>&- 9<&-
}
./target/release/er-serve --artifact "$GATEWAY_ARTIFACT" --listen 127.0.0.1:0 --threads 1 \
    >"$OUT/gw-backend-a.log" 2>&1 &
GW_PIDS+=($!)
./target/release/er-serve --artifact "$GATEWAY_ARTIFACT" --listen 127.0.0.1:0 --threads 1 \
    >"$OUT/gw-backend-b.log" 2>&1 &
GW_PIDS+=($!)
BACKEND_A=$(wait_for_banner "$OUT/gw-backend-a.log")
BACKEND_B=$(wait_for_banner "$OUT/gw-backend-b.log")
./target/release/er-gateway --backend "$BACKEND_A" --backend "$BACKEND_B" --canary 1 \
    --baseline "$GATEWAY_ARTIFACT" --listen 127.0.0.1:0 >"$OUT/gw-gateway.log" 2>&1 &
GW_PIDS+=($!)
GW_ADDR=$(wait_for_banner "$OUT/gw-gateway.log")
HEALTH=$(http_request "$GW_ADDR" 'GET /healthz HTTP/1.1\r\nHost: kick-tires\r\nConnection: close\r\n\r\n')
grep -q '200 OK' <<<"$HEALTH" || { echo "gateway /healthz did not return 200: $HEALTH" >&2; exit 1; }
grep -q '"healthy_backends": 2' <<<"$HEALTH" \
    || { echo "gateway does not see both backends healthy: $HEALTH" >&2; exit 1; }
STATS=$(http_request "$GW_ADDR" 'GET /gateway/stats HTTP/1.1\r\nHost: kick-tires\r\nConnection: close\r\n\r\n')
# /gateway/stats is compact JSON (no space after colons).
grep -qE '"phase": ?"stable"' <<<"$STATS" || { echo "gateway canary not stable at boot: $STATS" >&2; exit 1; }
DIGESTS=$(grep -oE '"model_digest": ?"[0-9a-f]+"' <<<"$STATS" | sort -u)
[[ $(wc -l <<<"$DIGESTS") == 1 && -n "$DIGESTS" ]] \
    || { echo "backends disagree on the artifact digest: $STATS" >&2; exit 1; }
BAD_CL=$(http_request "$GW_ADDR" 'POST /score HTTP/1.1\r\nHost: kick-tires\r\nContent-Length: 2\r\nContent-Length: 3\r\nConnection: close\r\n\r\n{}')
grep -q '400' <<<"$BAD_CL" \
    || { echo "gateway accepted conflicting Content-Length headers: $BAD_CL" >&2; exit 1; }
cleanup_gateway
trap - EXIT
echo "gateway binary wiring OK: 2 healthy backends, matching digests, conflicting Content-Length rejected"

# Hot-path panic hygiene: the serving path recovers poisoned locks and
# supervises panics, which only holds if no new `.unwrap()` / `.expect(`
# sneaks into non-test er-serve or er-gateway source. Test modules
# (everything from the first `#[cfg(test)]` line down) are exempt, as is the
# er-gateway CLI binary (flag parsing fails loudly by design).
LINT_HITS=$(for f in crates/er-serve/src/*.rs crates/er-gateway/src/*.rs; do
    awk '/#\[cfg\(test\)\]/ {exit} /\.unwrap\(\)|\.expect\(/ {print FILENAME ":" FNR ": " $0}' "$f"
done)
[[ -z "$LINT_HITS" ]] || {
    echo "unwrap/expect in er-serve/er-gateway hot paths (use unwrap_or_else(|e| e.into_inner()) or propagate):" >&2
    echo "$LINT_HITS" >&2
    exit 1
}
echo "er-serve and er-gateway hot paths carry no unwrap/expect"

# Informational perf diff against the committed baseline (the CI perf-gate
# job runs the same diff fatally; locally a regression only warns, since dev
# hardware legitimately differs from the baseline machine).
if [[ -f out/baseline/serve_bench.json && -f out/baseline/train_bench.json ]]; then
    echo "== kick-tires: perf diff vs out/baseline (informational) =="
    ./target/release/bench_diff \
        || echo "kick-tires: WARNING — bench_diff reported regressions; CI perf-gate will fail"
fi
echo "kick-tires OK"
