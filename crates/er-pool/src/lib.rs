//! A persistent worker pool with scoped, panic-isolated task execution.
//!
//! Before this crate, the workspace ran three separate threading
//! disciplines: the serving tier spawned one OS thread per connection, the
//! scoring executor spawned a fresh [`std::thread::scope`] per batch, and
//! the trainer spawned fresh workers per epoch pass. [`WorkerPool`]
//! collapses all three into one discipline: a fixed set of persistent
//! worker threads ("lanes") that take work from a shared injector queue,
//! plus the submitting thread itself, which participates in draining the
//! queue while it waits ([`WorkerPool::scope`]). Spawning threads is paid
//! once per pool, not once per batch or per epoch.
//!
//! # Determinism
//!
//! The pool executes tasks in whatever order lanes steal them, but that is
//! invisible to results by construction: callers partition work into chunks
//! *before* spawning (a pure function of item count), each task writes only
//! its own output slice, and reduction happens on the calling thread in
//! ascending chunk order after [`WorkerPool::scope`] returns. Scores and
//! gradients are therefore bit-identical across lane counts — the property
//! the executor's and trainer's bit-exactness tests pin down.
//!
//! # Panic isolation
//!
//! Every task runs under [`std::panic::catch_unwind`]. A panic in one task
//! never tears down a lane (lanes are reused for the next scope) and never
//! poisons sibling tasks; payloads come back in the [`ScopeOutcome`],
//! indexed by spawn order, so callers choose between recovery (the serving
//! executor re-scores panicked chunks sequentially) and propagation (the
//! trainer calls [`ScopeOutcome::propagate`]).
//!
//! # Example
//!
//! ```
//! use er_pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let items: Vec<u64> = (1..=8).collect();
//! let mut squares = vec![0u64; items.len()];
//! let outcome = pool.scope(|scope| {
//!     for (input, out) in items.chunks(2).zip(squares.chunks_mut(2)) {
//!         scope.spawn(move || {
//!             for (i, o) in input.iter().zip(out.iter_mut()) {
//!                 *o = i * i;
//!             }
//!         });
//!     }
//! });
//! assert!(outcome.is_clean());
//! assert_eq!(squares, vec![1, 4, 9, 16, 25, 36, 49, 64]);
//! ```

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

/// A task whose borrows have been erased to `'static` for storage in the
/// injector. Safety of the erasure is argued at the single construction
/// site in [`WorkerPool::scope`].
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// What a panicking task carried out of [`std::panic::catch_unwind`].
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Locks a mutex, recovering from poisoning. Tasks run under
/// `catch_unwind`, so a poisoned pool lock means a panic *between* tasks —
/// the protected state is still consistent and the show must go on.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The shared injector queue lanes steal work from.
struct Injector {
    queue: Mutex<VecDeque<ErasedTask>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

impl Injector {
    fn push_all(&self, tasks: Vec<ErasedTask>) {
        let mut queue = lock(&self.queue);
        queue.extend(tasks);
        drop(queue);
        self.ready.notify_all();
    }

    fn try_pop(&self) -> Option<ErasedTask> {
        lock(&self.queue).pop_front()
    }
}

/// Per-scope completion state: a countdown latch plus panic payloads by
/// spawn index.
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panics: Mutex<Vec<Option<PanicPayload>>>,
}

/// A fixed-size pool of persistent worker threads. See the [module
/// docs](self) for the execution and determinism model.
///
/// The pool is `Sync`: any number of threads may run
/// [`scope`](Self::scope) concurrently on one shared pool (the serving
/// tier's property tests score through a reloading executor from several
/// threads at once). Dropping the pool joins every lane.
pub struct WorkerPool {
    injector: Arc<Injector>,
    workers: Vec<thread::JoinHandle<()>>,
    lanes: usize,
}

/// Collects the tasks of one [`WorkerPool::scope`] call.
///
/// [`spawn`](Self::spawn) only *registers* a task; nothing runs until the
/// scope closure returns, at which point all registered tasks are submitted
/// together. Task indices in the resulting [`ScopeOutcome`] follow spawn
/// order.
pub struct Scope<'env> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
}

impl<'env> Scope<'env> {
    /// Registers a task. It may borrow from the environment (`'env`)
    /// because [`WorkerPool::scope`] does not return until every task has
    /// run to completion.
    pub fn spawn<F>(&mut self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.tasks.push(Box::new(task));
    }
}

/// What happened to each task of a completed scope, indexed by spawn
/// order. All tasks have finished by the time this exists.
pub struct ScopeOutcome {
    panics: Vec<Option<PanicPayload>>,
}

impl ScopeOutcome {
    /// `true` when no task panicked.
    pub fn is_clean(&self) -> bool {
        self.panics.iter().all(|p| p.is_none())
    }

    /// How many tasks panicked.
    pub fn panic_count(&self) -> usize {
        self.panics.iter().filter(|p| p.is_some()).count()
    }

    /// Spawn-order indices of the tasks that panicked, ascending.
    pub fn panicked_indices(&self) -> Vec<usize> {
        self.panics
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_some().then_some(i))
            .collect()
    }

    /// Re-raises the first panic (by spawn order), if any — the behavior of
    /// [`std::thread::scope`], for callers that treat a worker panic as
    /// fatal (the trainer).
    pub fn propagate(self) {
        if let Some(payload) = self.panics.into_iter().flatten().next() {
            resume_unwind(payload);
        }
    }
}

impl WorkerPool {
    /// Creates a pool with `lanes` execution lanes (clamped to at least 1).
    ///
    /// `lanes - 1` persistent worker threads are spawned; the final lane is
    /// the thread calling [`scope`](Self::scope), which drains the injector
    /// alongside the workers instead of blocking idle. A one-lane pool
    /// spawns no threads at all and runs every task inline, in spawn order.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..lanes)
            .map(|i| {
                let injector = Arc::clone(&injector);
                thread::Builder::new()
                    .name(format!("er-pool-{i}"))
                    .spawn(move || worker_loop(&injector))
                    .unwrap_or_else(|e| panic!("spawning er-pool lane {i}: {e}"))
            })
            .collect();
        Self {
            injector,
            workers,
            lanes,
        }
    }

    /// The number of execution lanes (worker threads + the calling
    /// thread).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs a batch of tasks to completion and reports per-task panics.
    ///
    /// `build` registers tasks on the [`Scope`]; when it returns, all tasks
    /// are submitted to the injector at once and the calling thread joins
    /// the lanes in draining it. `scope` returns only after every
    /// registered task has finished, so tasks may borrow the caller's
    /// stack:
    ///
    /// ```
    /// use er_pool::WorkerPool;
    ///
    /// let pool = WorkerPool::new(2);
    /// let mut halves = [0u32; 2];
    /// let (left, right) = halves.split_at_mut(1);
    /// pool.scope(|s| {
    ///     s.spawn(|| left[0] = 1);
    ///     s.spawn(|| right[0] = 2);
    /// });
    /// assert_eq!(halves, [1, 2]);
    /// ```
    pub fn scope<'env, F>(&self, build: F) -> ScopeOutcome
    where
        F: FnOnce(&mut Scope<'env>),
    {
        let mut scope = Scope { tasks: Vec::new() };
        build(&mut scope);
        let tasks = scope.tasks;
        let n = tasks.len();
        if n == 0 {
            return ScopeOutcome { panics: Vec::new() };
        }
        if self.workers.is_empty() {
            // One lane: run inline in spawn order, no queue traffic.
            let panics = tasks
                .into_iter()
                .map(|task| catch_unwind(AssertUnwindSafe(task)).err())
                .collect();
            return ScopeOutcome { panics };
        }
        let state = Arc::new(ScopeState {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panics: Mutex::new((0..n).map(|_| None).collect()),
        });
        let wrapped: Vec<ErasedTask> = tasks
            .into_iter()
            .enumerate()
            .map(|(index, task)| {
                let state = Arc::clone(&state);
                let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        lock(&state.panics)[index] = Some(payload);
                    }
                    let mut remaining = lock(&state.remaining);
                    *remaining -= 1;
                    if *remaining == 0 {
                        state.done.notify_all();
                    }
                });
                // SAFETY: the wrapper borrows from `'env` (through `task`).
                // Erasing that lifetime is sound because this function does
                // not return until `state.remaining` hits zero, i.e. until
                // every wrapper has run to completion and been dropped — no
                // borrow escapes `'env`. Tasks are pushed only after the
                // user closure returned, so nothing runs while the scope is
                // still being built.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, ErasedTask>(wrapper) }
            })
            .collect();
        self.injector.push_all(wrapped);
        // The calling thread is a lane too: drain the injector (possibly
        // running tasks of other concurrent scopes — helping them helps us
        // free lanes) until this scope's tasks are all done.
        loop {
            match self.injector.try_pop() {
                Some(task) => task(),
                None => {
                    let remaining = lock(&state.remaining);
                    if *remaining == 0 {
                        break;
                    }
                    // Queue empty but our tasks are in flight on other
                    // lanes; the last one to finish notifies `done`. The
                    // re-check above (under the same mutex the countdown
                    // uses) makes the wakeup race-free.
                    let _unused = state.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        let panics = std::mem::take(&mut *lock(&state.panics));
        ScopeOutcome { panics }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.injector.shutdown.store(true, Ordering::Release);
        self.injector.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _unused = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("lanes", &self.lanes).finish()
    }
}

fn worker_loop(injector: &Injector) {
    loop {
        let task = {
            let mut queue = lock(&injector.queue);
            loop {
                if injector.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = injector.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Wrappers contain their own catch_unwind; a panicking task cannot
        // unwind into this loop.
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// The chunked-sum harness every caller of the pool follows: partition
    /// by item count, one output slot per chunk, reduce in chunk order.
    fn chunked_sum(pool: &WorkerPool, values: &[f64], chunk: usize) -> f64 {
        let chunks: Vec<&[f64]> = values.chunks(chunk).collect();
        let mut partials = vec![0.0f64; chunks.len()];
        let outcome = pool.scope(|s| {
            for (input, out) in chunks.iter().zip(partials.iter_mut()) {
                s.spawn(move || *out = input.iter().sum());
            }
        });
        assert!(outcome.is_clean());
        partials.iter().sum()
    }

    #[test]
    fn results_are_bit_identical_across_lane_counts() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.739 + 0.01).collect();
        let reference = chunked_sum(&WorkerPool::new(1), &values, 64);
        for lanes in [2usize, 3, 4, 7] {
            let pool = WorkerPool::new(lanes);
            for _ in 0..5 {
                let sum = chunked_sum(&pool, &values, 64);
                assert_eq!(
                    sum.to_bits(),
                    reference.to_bits(),
                    "chunk-order reduction must not depend on lane count ({lanes} lanes)"
                );
            }
        }
    }

    #[test]
    fn panics_are_captured_by_spawn_index_and_siblings_complete() {
        let pool = WorkerPool::new(3);
        let done = AtomicUsize::new(0);
        let outcome = pool.scope(|s| {
            for i in 0..8 {
                let done = &done;
                s.spawn(move || {
                    if i == 2 || i == 5 {
                        panic!("task {i} down");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(outcome.panic_count(), 2);
        assert_eq!(outcome.panicked_indices(), vec![2, 5]);
        assert!(!outcome.is_clean());
        assert_eq!(done.load(Ordering::SeqCst), 6, "non-panicking siblings all ran");
        // The pool survives and the next scope is clean.
        let outcome = pool.scope(|s| s.spawn(|| {}));
        assert!(outcome.is_clean());
    }

    #[test]
    fn propagate_resumes_the_first_panic_in_spawn_order() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("first"));
                s.spawn(|| panic!("second"));
            })
            .propagate();
        }));
        let payload = result.expect_err("must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "first");
    }

    #[test]
    fn a_pool_is_reusable_across_many_scopes() {
        let pool = WorkerPool::new(4);
        let values: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let expected = chunked_sum(&pool, &values, 32);
        for _ in 0..200 {
            assert_eq!(chunked_sum(&pool, &values, 32).to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let values: Vec<f64> = (0..512).map(|i| (i as f64).sqrt()).collect();
        let expected = chunked_sum(&pool, &values, 16);
        thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let values = &values;
                s.spawn(move || {
                    for _ in 0..20 {
                        assert_eq!(chunked_sum(&pool, values, 16).to_bits(), expected.to_bits());
                    }
                });
            }
        });
    }

    #[test]
    fn empty_scopes_and_zero_lanes_are_fine() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.lanes(), 1);
        let outcome = pool.scope(|_| {});
        assert!(outcome.is_clean());
        assert_eq!(outcome.panic_count(), 0);
        assert!(outcome.panicked_indices().is_empty());
        outcome.propagate(); // no-op on a clean outcome
    }

    #[test]
    fn the_calling_thread_participates_in_execution() {
        // A one-lane pool has no workers at all, so tasks can only run on
        // the calling thread; observing the current thread name proves it.
        let pool = WorkerPool::new(1);
        let caller = thread::current().id();
        let mut seen = None;
        pool.scope(|s| {
            s.spawn(|| seen = Some(thread::current().id()));
        });
        assert_eq!(seen, Some(caller));
    }
}
