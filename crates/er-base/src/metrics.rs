//! Evaluation metrics for risk analysis and classification.
//!
//! The paper evaluates risk analysis with the Receiver Operating Characteristic
//! (ROC) curve and its area (AUROC), where a *positive* is a mislabeled pair
//! and a *negative* is a correctly labeled pair (Section 3).  Classifier
//! quality (Figure 14) is measured with F1.

use serde::{Deserialize, Serialize};

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// False positive rate at this threshold.
    pub fpr: f64,
    /// True positive rate at this threshold.
    pub tpr: f64,
    /// Score threshold that produced this point.
    pub threshold: f64,
}

/// A full ROC curve with its AUROC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RocCurve {
    /// Curve points ordered by increasing FPR.
    pub points: Vec<RocPoint>,
    /// Area under the curve, in `[0, 1]`.
    pub auroc: f64,
}

impl RocCurve {
    /// Computes the ROC curve for risk scores against binary labels
    /// (1 = positive = mislabeled pair).
    ///
    /// Ties in scores are handled by the standard trapezoidal construction:
    /// all instances with an identical score move together, so tied scores
    /// contribute a diagonal segment rather than an arbitrary step ordering.
    ///
    /// Returns a degenerate single-point curve with AUROC `0.5` when either
    /// class is absent (the metric is undefined; `0.5` matches the trivial
    /// no-discrimination model of the paper's Figure 2).
    pub fn compute(scores: &[f64], labels: &[u8]) -> RocCurve {
        assert_eq!(scores.len(), labels.len(), "scores and labels must align");
        let pos = labels.iter().filter(|&&l| l != 0).count();
        let neg = labels.len() - pos;
        if pos == 0 || neg == 0 {
            return RocCurve {
                points: vec![
                    RocPoint {
                        fpr: 0.0,
                        tpr: 0.0,
                        threshold: f64::INFINITY,
                    },
                    RocPoint {
                        fpr: 1.0,
                        tpr: 1.0,
                        threshold: f64::NEG_INFINITY,
                    },
                ],
                auroc: 0.5,
            };
        }

        // Sort by decreasing score.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));

        let mut points = Vec::with_capacity(scores.len() + 2);
        points.push(RocPoint {
            fpr: 0.0,
            tpr: 0.0,
            threshold: f64::INFINITY,
        });

        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut auroc = 0.0f64;
        let mut prev_fpr = 0.0f64;
        let mut prev_tpr = 0.0f64;
        let mut i = 0usize;
        while i < order.len() {
            let threshold = scores[order[i]];
            // Advance over the tie group.
            while i < order.len() && scores[order[i]] == threshold {
                if labels[order[i]] != 0 {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            let tpr = tp as f64 / pos as f64;
            let fpr = fp as f64 / neg as f64;
            auroc += (fpr - prev_fpr) * (tpr + prev_tpr) / 2.0;
            points.push(RocPoint { fpr, tpr, threshold });
            prev_fpr = fpr;
            prev_tpr = tpr;
        }
        RocCurve { points, auroc }
    }

    /// Samples the curve's TPR at evenly spaced FPR positions, for plotting.
    pub fn sample_tpr(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two sample points");
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let fpr = k as f64 / (n - 1) as f64;
            out.push((fpr, self.tpr_at(fpr)));
        }
        out
    }

    /// TPR at a given FPR, linearly interpolated between curve points.
    pub fn tpr_at(&self, fpr: f64) -> f64 {
        let fpr = fpr.clamp(0.0, 1.0);
        let mut prev = self.points[0];
        for &p in &self.points[1..] {
            if p.fpr >= fpr {
                if (p.fpr - prev.fpr).abs() < f64::EPSILON {
                    return p.tpr.max(prev.tpr);
                }
                let t = (fpr - prev.fpr) / (p.fpr - prev.fpr);
                return prev.tpr + t * (p.tpr - prev.tpr);
            }
            prev = p;
        }
        prev.tpr
    }
}

/// Computes AUROC directly (convenience wrapper around [`RocCurve::compute`]).
pub fn auroc(scores: &[f64], labels: &[u8]) -> f64 {
    RocCurve::compute(scores, labels).auroc
}

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from predictions and truths (1 = positive).
    pub fn from_predictions(predicted: &[u8], truth: &[u8]) -> Self {
        assert_eq!(predicted.len(), truth.len());
        let mut m = ConfusionMatrix::default();
        for (&p, &t) in predicted.iter().zip(truth) {
            match (p != 0, t != 0) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Precision of the positive class, 0 if no positives predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall of the positive class, 0 if no positives exist.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 of the positive class.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// True positive rate (same as recall).
    pub fn tpr(&self) -> f64 {
        self.recall()
    }

    /// False positive rate.
    pub fn fpr(&self) -> f64 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f64 / (self.fp + self.tn) as f64
        }
    }
}

/// Average precision (area under the precision-recall curve, step-wise).
///
/// Not reported in the paper's figures but useful as an auxiliary diagnostic
/// because mislabeled pairs are a heavily imbalanced positive class.
pub fn average_precision(scores: &[f64], labels: &[u8]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let pos = labels.iter().filter(|&&l| l != 0).count();
    if pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut ap = 0.0;
    for (rank, &idx) in order.iter().enumerate() {
        if labels[idx] != 0 {
            tp += 1;
            ap += tp as f64 / (rank + 1) as f64;
        }
    }
    ap / pos as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auroc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1, 1, 0, 0];
        assert!((auroc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_auroc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1, 1, 0, 0];
        assert!(auroc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn random_constant_scores_have_auroc_half() {
        let scores = [0.5; 10];
        let labels = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0];
        assert!((auroc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class_returns_half() {
        assert!((auroc(&[0.1, 0.9], &[0, 0]) - 0.5).abs() < 1e-12);
        assert!((auroc(&[0.1, 0.9], &[1, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auroc_matches_pairwise_probability_interpretation() {
        // AUROC equals the probability that a random positive outranks a random
        // negative (Section 3 of the paper). Verify against brute force.
        let scores = [0.9, 0.3, 0.75, 0.4, 0.6, 0.2, 0.55];
        let labels = [1, 0, 1, 0, 0, 0, 1];
        let mut wins = 0.0;
        let mut total = 0.0;
        for (i, &li) in labels.iter().enumerate() {
            if li == 0 {
                continue;
            }
            for (j, &lj) in labels.iter().enumerate() {
                if lj == 1 {
                    continue;
                }
                total += 1.0;
                if scores[i] > scores[j] {
                    wins += 1.0;
                } else if scores[i] == scores[j] {
                    wins += 0.5;
                }
            }
        }
        let expected = wins / total;
        assert!((auroc(&scores, &labels) - expected).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_is_monotone() {
        let scores = [0.9, 0.8, 0.7, 0.65, 0.6, 0.4, 0.3, 0.2];
        let labels = [1, 0, 1, 1, 0, 0, 1, 0];
        let curve = RocCurve::compute(&scores, &labels);
        for w in curve.points.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        let last = curve.points.last().unwrap();
        assert!((last.fpr - 1.0).abs() < 1e-12);
        assert!((last.tpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tpr_interpolation_and_sampling() {
        let scores = [0.9, 0.1];
        let labels = [1, 0];
        let curve = RocCurve::compute(&scores, &labels);
        assert!((curve.tpr_at(0.0) - 1.0).abs() < 1e-12);
        let samples = curve.sample_tpr(5);
        assert_eq!(samples.len(), 5);
        assert!((samples[0].0 - 0.0).abs() < 1e-12);
        assert!((samples[4].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_metrics() {
        let predicted = [1, 1, 0, 0, 1, 0];
        let truth = [1, 0, 0, 1, 1, 0];
        let m = ConfusionMatrix::from_predictions(&predicted, &truth);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                tn: 2,
                fn_: 1
            }
        );
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.fpr() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_matrix_is_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_empty() {
        assert!((average_precision(&[0.9, 0.8, 0.1], &[1, 1, 0]) - 1.0).abs() < 1e-12);
        assert_eq!(average_precision(&[0.9, 0.8], &[0, 0]), 0.0);
    }
}
