//! # er-eval
//!
//! Experiment pipelines that reproduce the paper's evaluation end to end.
//!
//! * [`pipeline`] — one pipeline run: classifier → risk features → risk model
//!   → AUROC of every risk method on the test split.
//! * [`ood`] — out-of-distribution workload construction (Figure 10).
//! * [`active`] — active learning with risk-driven instance selection
//!   (Figure 14).
//! * [`experiments`] — per-figure experiment runners (Table 2, Figures 9–14).
//! * [`serving`] — the train → export → load → score round trip onto the
//!   `er-serve` online engine.
//! * [`report`] — plain-text rendering of the results.

#![warn(missing_docs)]

pub mod active;
pub mod experiments;
pub mod ood;
pub mod pipeline;
pub mod report;
pub mod serving;

pub use active::{run_active_learning, ActiveLearningConfig, ActiveLearningCurve, SelectionStrategy};
pub use experiments::{
    run_fig10, run_fig10_workload, run_fig11, run_fig12, run_fig13, run_fig14, run_fig9, run_fig9_cell, run_table2,
    synthetic_classifier_probs, ExperimentConfig, OodWorkload, ScalabilityPoint, SensitivityPoint,
};
pub use ood::{project_workload, schemas_compatible};
pub use pipeline::{
    build_inputs_from_labeled, run_pipeline, run_pipeline_on_splits, MethodResult, PipelineArtifacts, PipelineConfig,
    PipelineResult,
};
pub use report::{render_active_learning, render_auroc_table, render_scalability, render_sensitivity, render_table2};
pub use serving::{
    build_score_requests, export_and_load_engine, requests_from_rows, round_trip_engine, verify_round_trip,
};
