//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] names the exact failure a test or benchmark wants to see
//! and the exact moment it should happen, so the hardening around panics,
//! torn artifact writes, and stalls can be *proven* rather than assumed.
//! Each named [`FaultKind`] is a fault point compiled into the stack
//! (executor workers, the batcher, the reload path, the response writer);
//! production code asks the plan [`FaultPlan::check`] at that point and the
//! plan answers "fire now" based on how many times the point has been
//! reached.
//!
//! Plans are built three ways:
//!
//! * programmatically ([`FaultPlan::parse`]) by tests and `serve_bench`,
//! * from the `ER_FAULT_PLAN` environment variable
//!   ([`FaultPlan::from_env`]) for operator-driven game days,
//! * not at all — the default. An absent plan is a `None` check on the hot
//!   path and an empty plan short-circuits before touching any atomics, so
//!   the harness costs nothing when unused.
//!
//! The spec grammar is a `;`-separated list of rules:
//!
//! ```text
//! seed=42; shard_worker_panic@2,7; score_stall@3:250ms; batcher_panic~0.01
//! ```
//!
//! `point@i,j,k` fires at exact 0-based occurrence indices, `point~p` fires
//! each occurrence with probability `p` (deterministic given `seed`), and a
//! trailing `:Nms` attaches a stall duration to stall-style points.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The named fault points compiled into the serving stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The reload path reads a torn (truncated mid-write) artifact file.
    ArtifactReadTorn,
    /// Artifact validation fails during a reload even though the file is
    /// well-formed, exercising the refusal path.
    ReloadValidateFail,
    /// A shard-executor worker thread panics mid-batch.
    ShardWorkerPanic,
    /// The batcher thread panics while holding a popped batch of jobs.
    BatcherPanic,
    /// Scoring of one micro-batch stalls for the rule's `:Nms` duration.
    ScoreStall,
    /// The response write back to a client stalls for `:Nms` before the
    /// bytes go out, simulating a slow consumer.
    ClientWriteStall,
}

/// Every fault point, in wire-name order — handy for iteration in tests
/// and attestation reports.
pub const FAULT_KINDS: [FaultKind; 6] = [
    FaultKind::ArtifactReadTorn,
    FaultKind::ReloadValidateFail,
    FaultKind::ShardWorkerPanic,
    FaultKind::BatcherPanic,
    FaultKind::ScoreStall,
    FaultKind::ClientWriteStall,
];

impl FaultKind {
    /// The snake_case wire name used in plan specs and attestations.
    pub const fn name(self) -> &'static str {
        match self {
            FaultKind::ArtifactReadTorn => "artifact_read_torn",
            FaultKind::ReloadValidateFail => "reload_validate_fail",
            FaultKind::ShardWorkerPanic => "shard_worker_panic",
            FaultKind::BatcherPanic => "batcher_panic",
            FaultKind::ScoreStall => "score_stall",
            FaultKind::ClientWriteStall => "client_write_stall",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn parse(name: &str) -> Option<FaultKind> {
        FAULT_KINDS.iter().copied().find(|k| k.name() == name)
    }

    const fn slot(self) -> usize {
        match self {
            FaultKind::ArtifactReadTorn => 0,
            FaultKind::ReloadValidateFail => 1,
            FaultKind::ShardWorkerPanic => 2,
            FaultKind::BatcherPanic => 3,
            FaultKind::ScoreStall => 4,
            FaultKind::ClientWriteStall => 5,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A malformed fault-plan spec, with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    fragment: String,
    reason: &'static str,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec {:?}: {}", self.fragment, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// One injection rule: fire `kind` at exact occurrence indices and/or with
/// a per-occurrence probability, optionally carrying a stall duration.
#[derive(Clone, Debug)]
struct FaultRule {
    kind: FaultKind,
    at: Vec<u64>,
    rate: f64,
    stall_ms: u64,
}

/// A deterministic schedule of injected faults.
///
/// Thread through the stack as `Option<Arc<FaultPlan>>`; `None` (the
/// default everywhere) means the fault points vanish into a branch. The
/// plan keeps per-point occurrence and fired counters so benchmarks can
/// attest that the number of observed failures matches the number injected.
///
/// # Examples
///
/// ```
/// use er_serve::{FaultKind, FaultPlan};
///
/// # fn main() -> Result<(), er_serve::FaultSpecError> {
/// let plan = FaultPlan::parse("seed=7; shard_worker_panic@0,2")?;
/// // Occurrences 0 and 2 fire; occurrence 1 passes through clean.
/// assert!(plan.fires(FaultKind::ShardWorkerPanic));
/// assert!(!plan.fires(FaultKind::ShardWorkerPanic));
/// assert!(plan.fires(FaultKind::ShardWorkerPanic));
/// // The counters benchmarks reconcile against observed failures:
/// assert_eq!(plan.occurrences(FaultKind::ShardWorkerPanic), 3);
/// assert_eq!(plan.fired(FaultKind::ShardWorkerPanic), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    occurrences: [AtomicU64; 6],
    fired: [AtomicU64; 6],
}

impl FaultPlan {
    /// Parse a plan from the spec grammar described at the module level.
    ///
    /// An empty (or all-whitespace) spec yields an empty plan, which is
    /// also what [`FaultPlan::default`] gives you.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(';') {
            let frag = raw.trim();
            if frag.is_empty() {
                continue;
            }
            if let Some(seed) = frag.strip_prefix("seed=") {
                plan.seed = seed.trim().parse().map_err(|_| FaultSpecError {
                    fragment: frag.to_string(),
                    reason: "seed must be a u64",
                })?;
                continue;
            }
            plan.rules.push(parse_rule(frag)?);
        }
        Ok(plan)
    }

    /// Build a plan from the `ER_FAULT_PLAN` environment variable.
    ///
    /// Returns `None` when the variable is unset or empty. A malformed
    /// spec is reported on stderr and treated as absent rather than
    /// panicking a production boot path.
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let spec = std::env::var("ER_FAULT_PLAN").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) if plan.is_empty() => None,
            Ok(plan) => Some(Arc::new(plan)),
            Err(err) => {
                eprintln!("ER_FAULT_PLAN ignored: {err}");
                None
            }
        }
    }

    /// True when the plan has no rules; every [`check`](Self::check) is a
    /// single branch.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The seed driving probabilistic rules.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Record one occurrence of `kind` and decide whether a fault fires
    /// now.
    ///
    /// Returns the rule's stall duration in milliseconds when it fires
    /// (`0` for non-stall points). Call exactly once per pass through the
    /// fault point: the occurrence index advances on every call.
    pub fn check(&self, kind: FaultKind) -> Option<u64> {
        if self.rules.is_empty() {
            return None;
        }
        let idx = self.occurrences[kind.slot()].fetch_add(1, Ordering::Relaxed);
        let mut hit = None;
        for rule in self.rules.iter().filter(|r| r.kind == kind) {
            let exact = rule.at.contains(&idx);
            let sampled = rule.rate > 0.0 && unit_sample(self.seed, kind, idx) < rule.rate;
            if exact || sampled {
                hit = Some(rule.stall_ms);
            }
        }
        if hit.is_some() {
            self.fired[kind.slot()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Convenience for panic-style points: did `kind` fire this occurrence?
    pub fn fires(&self, kind: FaultKind) -> bool {
        self.check(kind).is_some()
    }

    /// How many times the `kind` fault point has been reached.
    pub fn occurrences(&self, kind: FaultKind) -> u64 {
        self.occurrences[kind.slot()].load(Ordering::Relaxed)
    }

    /// How many times `kind` actually fired — the injected-fault count the
    /// chaos attestations reconcile against observed panics and refusals.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.fired[kind.slot()].load(Ordering::Relaxed)
    }
}

fn parse_rule(frag: &str) -> Result<FaultRule, FaultSpecError> {
    let err = |reason| FaultSpecError {
        fragment: frag.to_string(),
        reason,
    };
    // Split off an optional trailing `:Nms` stall duration first.
    let (head, stall_ms) = match frag.rsplit_once(':') {
        Some((head, tail)) => {
            let ms = tail
                .trim()
                .strip_suffix("ms")
                .ok_or_else(|| err("stall duration must end in `ms`"))?
                .parse()
                .map_err(|_| err("stall duration must be `<u64>ms`"))?;
            (head.trim(), ms)
        }
        None => (frag, 0),
    };
    let (name, at, rate) = if let Some((name, indices)) = head.split_once('@') {
        let mut at = Vec::new();
        for part in indices.split(',') {
            at.push(
                part.trim()
                    .parse()
                    .map_err(|_| err("occurrence indices must be u64s"))?,
            );
        }
        (name.trim(), at, 0.0)
    } else if let Some((name, rate)) = head.split_once('~') {
        let rate: f64 = rate.trim().parse().map_err(|_| err("rate must be a float in (0, 1]"))?;
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(err("rate must be a float in (0, 1]"));
        }
        (name.trim(), Vec::new(), rate)
    } else {
        return Err(err("rule needs `@indices` or `~rate`"));
    };
    let kind = FaultKind::parse(name).ok_or_else(|| err("unknown fault point"))?;
    Ok(FaultRule {
        kind,
        at,
        rate,
        stall_ms,
    })
}

/// SplitMix64-derived uniform sample in `[0, 1)` for probabilistic rules —
/// deterministic in `(seed, kind, occurrence index)`.
fn unit_sample(seed: u64, kind: FaultKind, idx: u64) -> f64 {
    let mut z = seed
        .wrapping_add((kind.slot() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(idx.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_and_counts_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for kind in FAULT_KINDS {
            assert_eq!(plan.check(kind), None);
            assert_eq!(plan.occurrences(kind), 0, "empty plan must not touch counters");
            assert_eq!(plan.fired(kind), 0);
        }
        let parsed = FaultPlan::parse("  ;; ").expect("blank spec");
        assert!(parsed.is_empty());
    }

    #[test]
    fn exact_indices_fire_exactly_once_each() {
        let plan = FaultPlan::parse("shard_worker_panic@1,3").expect("spec");
        let fired: Vec<bool> = (0..5).map(|_| plan.fires(FaultKind::ShardWorkerPanic)).collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
        assert_eq!(plan.occurrences(FaultKind::ShardWorkerPanic), 5);
        assert_eq!(plan.fired(FaultKind::ShardWorkerPanic), 2);
        // Other points are untouched.
        assert_eq!(plan.occurrences(FaultKind::BatcherPanic), 0);
    }

    #[test]
    fn stall_rules_carry_their_duration() {
        let plan = FaultPlan::parse("score_stall@0,2:250ms; client_write_stall@1:40ms").expect("spec");
        assert_eq!(plan.check(FaultKind::ScoreStall), Some(250));
        assert_eq!(plan.check(FaultKind::ScoreStall), None);
        assert_eq!(plan.check(FaultKind::ScoreStall), Some(250));
        assert_eq!(plan.check(FaultKind::ClientWriteStall), None);
        assert_eq!(plan.check(FaultKind::ClientWriteStall), Some(40));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_in_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("seed={seed}; batcher_panic~0.3")).expect("spec");
            (0..64).map(|_| plan.fires(FaultKind::BatcherPanic)).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seeds must diverge");
        let fires = run(7).iter().filter(|f| **f).count();
        assert!(
            fires > 0 && fires < 64,
            "rate 0.3 over 64 draws fires sometimes, not always"
        );
    }

    #[test]
    fn wire_names_round_trip() {
        for kind in FAULT_KINDS {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_fragment() {
        for bad in [
            "shard_worker_panic",
            "shard_worker_panic@x",
            "unknown_point@1",
            "batcher_panic~1.5",
            "batcher_panic~0",
            "score_stall@1:fast",
            "score_stall@1:10s",
            "seed=minus-one",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.to_string().contains("bad fault spec"), "{err}");
        }
    }

    #[test]
    fn from_env_ignores_malformed_specs() {
        // from_env reads the process environment; exercise the parse +
        // emptiness contract it layers on top instead of mutating env in a
        // multi-threaded test runner.
        assert!(FaultPlan::parse("").expect("empty").is_empty());
        assert!(FaultPlan::parse("seed=9").expect("seed only").is_empty());
    }
}
