//! Bit-exactness properties of the structure-of-arrays portfolio path.
//!
//! The SoA [`ComponentBlock`] reimplements aggregation and the per-component
//! gradient terms with fused, lane-chunked reductions; the AoS
//! [`aggregate`] / [`component_gradients`] functions are the reference.  The
//! two layouts must agree to the last `f64` bit — for random portfolios of
//! every size (including single-component portfolios and near-zero weights),
//! for the scalar and the bulk gradient forms, and for the fallible
//! `try_aggregate` paths.

use learnrisk_core::{
    aggregate, component_gradients, try_aggregate, ComponentBlock, GradientBlock, LearnRiskModel, PairRiskInput,
    PortfolioComponent, PortfolioError, RiskFeatureSet, RiskModelConfig,
};
use proptest::prelude::*;

/// Random component weights spanning ordinary, large and near-zero values —
/// near-zero weights stress the normalization (tiny `weight_sum`) and the
/// cancellation-heavy variance gradient.
fn arb_weight() -> impl Strategy<Value = f64> {
    (0usize..6, 0.0f64..1.0).prop_map(|(kind, x)| match kind {
        0 => 1e-12 + x * 1e-6, // near-zero
        1 => 10.0 + x * 1e4,   // large
        _ => 1e-3 + x * 10.0,  // ordinary
    })
}

fn arb_component() -> impl Strategy<Value = PortfolioComponent> {
    (arb_weight(), 0.0f64..1.0, 0.0f64..0.6).prop_map(|(weight, mean, std)| PortfolioComponent { weight, mean, std })
}

/// Portfolios from a single component up to several lane-chunks plus a tail.
fn arb_portfolio() -> impl Strategy<Value = Vec<PortfolioComponent>> {
    proptest::collection::vec(arb_component(), 1..40)
}

fn block_of(components: &[PortfolioComponent]) -> ComponentBlock {
    let mut block = ComponentBlock::new();
    block.copy_from(components);
    block
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn soa_aggregate_is_bit_identical_to_aos(comps in arb_portfolio()) {
        let aos = aggregate(&comps);
        let soa = block_of(&comps).aggregate();
        prop_assert_eq!(aos.mean.to_bits(), soa.mean.to_bits());
        prop_assert_eq!(aos.variance.to_bits(), soa.variance.to_bits());
        prop_assert_eq!(aos.weight_sum.to_bits(), soa.weight_sum.to_bits());
        prop_assert_eq!(aos.std().to_bits(), soa.std().to_bits());
    }

    #[test]
    fn soa_gradients_are_bit_identical_to_aos(comps in arb_portfolio()) {
        let agg = aggregate(&comps);
        let block = block_of(&comps);
        let mut bulk = GradientBlock::new();
        block.component_gradients_into(&agg, &mut bulk);
        prop_assert_eq!(bulk.len(), comps.len());
        for j in 0..comps.len() {
            let reference = component_gradients(&comps, &agg, j);
            let scalar = block.component_gradients(&agg, j);
            let from_bulk = bulk.gradients(j);
            for soa in [scalar, from_bulk] {
                prop_assert_eq!(reference.d_mean_d_weight.to_bits(), soa.d_mean_d_weight.to_bits());
                prop_assert_eq!(reference.d_std_d_weight.to_bits(), soa.d_std_d_weight.to_bits());
                prop_assert_eq!(
                    reference.d_std_d_component_std.to_bits(),
                    soa.d_std_d_component_std.to_bits()
                );
                prop_assert_eq!(
                    reference.d_mean_d_component_mean.to_bits(),
                    soa.d_mean_d_component_mean.to_bits()
                );
            }
        }
    }

    #[test]
    fn single_component_portfolios_agree_in_both_layouts(c in arb_component()) {
        let comps = vec![c];
        let aos = aggregate(&comps);
        let soa = block_of(&comps).aggregate();
        prop_assert_eq!(aos.mean.to_bits(), soa.mean.to_bits());
        prop_assert_eq!(aos.variance.to_bits(), soa.variance.to_bits());
        // A single component aggregates to (approximately) itself.
        prop_assert!((aos.mean - c.mean).abs() < 1e-12);
        let g_aos = component_gradients(&comps, &aos, 0);
        let g_soa = block_of(&comps).component_gradients(&soa, 0);
        prop_assert_eq!(g_aos.d_mean_d_weight.to_bits(), g_soa.d_mean_d_weight.to_bits());
        prop_assert_eq!(g_aos.d_std_d_weight.to_bits(), g_soa.d_std_d_weight.to_bits());
    }

    #[test]
    fn fallible_aggregation_agrees_between_layouts(comps in arb_portfolio()) {
        let aos = try_aggregate(&comps);
        let soa = block_of(&comps).try_aggregate();
        match (aos, soa) {
            (Ok(a), Ok(s)) => {
                prop_assert_eq!(a.mean.to_bits(), s.mean.to_bits());
                prop_assert_eq!(a.variance.to_bits(), s.variance.to_bits());
            }
            (a, s) => prop_assert_eq!(a, s),
        }
    }

    #[test]
    fn fallible_aggregation_never_panics_on_hostile_weights(
        weights in proptest::collection::vec(
            (0usize..4, 0.0f64..1.0).prop_map(|(kind, x)| match kind {
                0 => 0.0,
                1 => -1.0,
                2 => f64::NAN,
                _ => x,
            }),
            0..12,
        )
    ) {
        let comps: Vec<PortfolioComponent> = weights
            .iter()
            .map(|&weight| PortfolioComponent { weight, mean: 0.5, std: 0.1 })
            .collect();
        let aos = try_aggregate(&comps);
        let soa = block_of(&comps).try_aggregate();
        // Both fallible paths return (they may legitimately succeed when the
        // hostile draw still sums positive), and they agree on whether and
        // why aggregation fails.
        match (aos, soa) {
            (Ok(a), Ok(s)) => {
                prop_assert_eq!(a.mean.to_bits(), s.mean.to_bits());
            }
            (Err(PortfolioError::Empty), Err(PortfolioError::Empty)) => {
                prop_assert!(comps.is_empty());
            }
            (Err(PortfolioError::NonPositiveWeight { .. }), Err(PortfolioError::NonPositiveWeight { .. })) => {}
            (a, s) => {
                prop_assert!(false, "layouts disagree: AoS {:?} vs SoA {:?}", a, s);
            }
        }
    }

    #[test]
    fn model_scoring_is_bit_identical_across_layouts(
        rule_mask in 0usize..8,
        output in 0.0f64..1.0,
        says_match_bit in 0u8..2,
    ) {
        let says_match = says_match_bit == 1;
        // End-to-end through LearnRiskModel: the SoA scoring path
        // (components_into_block + block aggregate) must reproduce the AoS
        // component list bit-for-bit.
        let model = toy_model();
        let input = PairRiskInput {
            rule_indices: (0..3u32).filter(|i| rule_mask & (1 << i) != 0).collect(),
            classifier_output: output,
            machine_says_match: says_match,
            risk_label: 0,
        };
        let comps = model.components(&input);
        let aos = aggregate(&comps);
        let mut block = ComponentBlock::new();
        model.components_into_block(&input, &mut block);
        let soa = block.aggregate();
        prop_assert_eq!(aos.mean.to_bits(), soa.mean.to_bits());
        prop_assert_eq!(aos.variance.to_bits(), soa.variance.to_bits());
        let score = model.risk_score(&input);
        let buffered = model.risk_score_with(&input, &mut block);
        prop_assert_eq!(score.to_bits(), buffered.to_bits());
    }
}

fn toy_model() -> LearnRiskModel {
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 50, 0.95),
        Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Equivalent, 40, 0.95),
        Rule::new(vec![Condition::new(0, CmpOp::Le, 0.2)], Label::Equivalent, 30, 0.9),
    ];
    let fs = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.05, 0.95, 0.8],
        support: vec![50, 40, 30],
    };
    LearnRiskModel::new(
        fs,
        RiskModelConfig {
            output_buckets: 4,
            ..Default::default()
        },
    )
}
