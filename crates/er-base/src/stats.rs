//! Small numeric/statistics helpers shared across the workspace.

/// Mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The logistic (sigmoid) function `1 / (1 + e^-x)` with guarded extremes.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Natural log clamped away from zero, used inside cross-entropy losses.
pub fn safe_ln(x: f64) -> f64 {
    x.max(1e-12).ln()
}

/// Clamps a probability to the open interval `(eps, 1-eps)`.
pub fn clamp_prob(p: f64) -> f64 {
    p.clamp(1e-9, 1.0 - 1e-9)
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max error ~1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly =
        t * (0.254_829_592 + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Uses the Acklam rational approximation (relative error < 1.15e-9), refined
/// with one Newton step against [`std_normal_cdf`].
// The coefficients below are Acklam's published constants; keep them verbatim
// (trailing zeros included) rather than truncating to satisfy the lint.
#[allow(clippy::excessive_precision)]
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Coefficients of the Acklam approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e+01,
        2.209_460_984_245_205e+02,
        -2.759_285_104_469_687e+02,
        1.383_577_518_672_690e+02,
        -3.066_479_806_614_716e+01,
        2.506_628_277_459_239e+00,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e+01,
        1.615_858_368_580_409e+02,
        -1.556_989_798_598_866e+02,
        6.680_131_188_771_972e+01,
        -1.328_068_155_288_572e+01,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-03,
        -3.223_964_580_411_365e-01,
        -2.400_758_277_161_838e+00,
        -2.549_732_539_343_734e+00,
        4.374_664_141_464_968e+00,
        2.938_163_982_698_783e+00,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-03,
        3.224_671_290_700_398e-01,
        2.445_134_137_142_996e+00,
        3.754_408_661_907_416e+00,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Newton refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Pearson correlation of two equally long slices; 0 when undefined.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999999);
        assert!(sigmoid(-30.0) < 1e-6);
        // Symmetric: s(-x) = 1 - s(x).
        for &x in &[0.3, 1.7, 5.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(0.5) - 0.5204999).abs() < 1e-5);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_and_quantile_are_inverses() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-6, "p={p}, x={x}");
        }
        // Known quantiles.
        assert!((std_normal_quantile(0.5)).abs() < 1e-6);
        assert!((std_normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((std_normal_quantile(0.9) - 1.281552).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_rejects_out_of_range() {
        std_normal_quantile(1.0);
    }

    #[test]
    fn pearson_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn clamp_and_safe_ln() {
        assert!(clamp_prob(0.0) > 0.0);
        assert!(clamp_prob(1.0) < 1.0);
        assert!(safe_ln(0.0).is_finite());
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        assert!((std_normal_pdf(0.0) - 0.3989423).abs() < 1e-6);
        assert!((std_normal_pdf(1.5) - std_normal_pdf(-1.5)).abs() < 1e-12);
    }
}
