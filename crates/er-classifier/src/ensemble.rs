//! Bootstrap ensembles of classifiers.
//!
//! The `Uncertainty` baseline of the paper trains multiple classifiers on
//! bootstrap resamples of the training data and measures a pair's risk by the
//! disagreement of the ensemble (`p(1-p)` of the average vote).  The ensemble
//! is also reusable for probability calibration and variance estimation.

use crate::classifier::{Classifier, TrainConfig};
use crate::linear::LogisticRegression;
use er_base::rng::substream;
use rand::Rng;

/// A bootstrap ensemble of logistic-regression classifiers.
pub struct BootstrapEnsemble {
    members: Vec<LogisticRegression>,
}

impl BootstrapEnsemble {
    /// Trains `n_members` classifiers on bootstrap resamples of `(xs, ys)`.
    ///
    /// The paper uses 20 deep-learning models; 20 logistic members reproduce
    /// the same coarse-grained score distribution (an ensemble of n members
    /// can emit only n+1 distinct vote fractions).
    pub fn train(xs: &[Vec<f64>], ys: &[f64], n_members: usize, config: &TrainConfig) -> Self {
        assert!(!xs.is_empty(), "cannot train an ensemble on empty data");
        assert!(n_members > 0, "ensemble needs at least one member");
        let dim = xs[0].len();
        let mut members = Vec::with_capacity(n_members);
        for m in 0..n_members {
            let mut rng = substream(config.seed, 0x40 + m as u64);
            // Bootstrap resample with replacement.
            let mut bx = Vec::with_capacity(xs.len());
            let mut by = Vec::with_capacity(ys.len());
            for _ in 0..xs.len() {
                let i = rng.gen_range(0..xs.len());
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            let mut member = LogisticRegression::new(dim);
            let member_config = TrainConfig {
                seed: config.seed.wrapping_add(m as u64 + 1),
                ..*config
            };
            member.train(&bx, &by, &member_config);
            members.push(member);
        }
        Self { members }
    }

    /// Number of ensemble members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Fraction of members that vote "match" for a feature vector.
    pub fn vote_fraction(&self, x: &[f64]) -> f64 {
        let votes = self.members.iter().filter(|m| m.predict_proba(x) >= 0.5).count();
        votes as f64 / self.members.len() as f64
    }

    /// Mean predicted probability across members.
    pub fn mean_probability(&self, x: &[f64]) -> f64 {
        self.members.iter().map(|m| m.predict_proba(x)).sum::<f64>() / self.members.len() as f64
    }

    /// Uncertainty score `p(1-p)` of the vote fraction — the risk measure of
    /// the `Uncertainty` baseline.
    pub fn uncertainty(&self, x: &[f64]) -> f64 {
        let p = self.vote_fraction(x);
        p * (1.0 - p)
    }

    /// Variance of the member probabilities (an alternative disagreement
    /// measure, used in ablations).
    pub fn probability_variance(&self, x: &[f64]) -> f64 {
        let probs: Vec<f64> = self.members.iter().map(|m| m.predict_proba(x)).collect();
        er_base::stats::variance(&probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;
    use rand::Rng;

    fn toy(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = seeded(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            // Noisy boundary at 0 so that members disagree near it.
            let noise: f64 = rng.gen_range(-0.2..0.2);
            xs.push(vec![a]);
            ys.push(if a + noise > 0.0 { 1.0 } else { 0.0 });
        }
        (xs, ys)
    }

    #[test]
    fn ensemble_members_disagree_near_boundary() {
        let (xs, ys) = toy(400, 1);
        let config = TrainConfig {
            epochs: 40,
            ..TrainConfig::default()
        };
        let ensemble = BootstrapEnsemble::train(&xs, &ys, 20, &config);
        assert_eq!(ensemble.len(), 20);
        let far = ensemble.uncertainty(&[0.9]);
        let near = ensemble.uncertainty(&[0.01]);
        assert!(
            near >= far,
            "uncertainty near boundary ({near}) should be >= far ({far})"
        );
        assert!(far < 0.05, "confident region should have low uncertainty: {far}");
    }

    #[test]
    fn vote_fraction_has_limited_granularity() {
        let (xs, ys) = toy(200, 2);
        let ensemble = BootstrapEnsemble::train(
            &xs,
            &ys,
            5,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        let mut rng = seeded(3);
        for _ in 0..50 {
            let x = vec![rng.gen_range(-1.0..1.0)];
            let v = ensemble.vote_fraction(&x);
            // Only multiples of 1/5 are possible.
            let scaled = v * 5.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_probability_and_variance_are_bounded() {
        let (xs, ys) = toy(150, 4);
        let ensemble = BootstrapEnsemble::train(
            &xs,
            &ys,
            8,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        let p = ensemble.mean_probability(&[0.3]);
        assert!((0.0..=1.0).contains(&p));
        assert!(ensemble.probability_variance(&[0.3]) >= 0.0);
        assert!(!ensemble.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        BootstrapEnsemble::train(&[], &[], 3, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        BootstrapEnsemble::train(&[vec![1.0]], &[1.0], 0, &TrainConfig::default());
    }
}
