//! Offline stand-in for the slice of `proptest` this workspace's property
//! tests use: the [`Strategy`] trait (ranges, tuples, `&str` regexes,
//! [`collection::vec`], [`Strategy::prop_map`]), [`string::string_regex`],
//! [`test_runner::ProptestConfig`] and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! The build environment cannot reach crates.io, so this crate re-implements
//! random-input generation (no shrinking: a failing case reports its inputs
//! via the assertion message instead of minimizing them) on top of the
//! vendored deterministic `rand`. Swapping in real proptest only requires
//! editing `[workspace.dependencies]`.

#![warn(missing_docs)]

use std::ops::Range;

use rand::Rng;

/// The RNG driving every generated value; deterministic per test binary.
pub type TestRng = rand::rngs::StdRng;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A `&str` is a strategy producing strings matching it as a regex, exactly
/// as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .expect("invalid regex strategy")
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is uniform in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies (`proptest::string`).
pub mod string {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Error produced by [`string_regex`] on an unsupported pattern.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// One regex atom: the set of characters it can produce.
    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    /// An atom plus its repetition bounds (inclusive).
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Strategy returned by [`string_regex`].
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let count = rng.gen_range(piece.min..=piece.max);
                for _ in 0..count {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(chars) => {
                            out.push(chars[rng.gen_range(0..chars.len())]);
                        }
                    }
                }
            }
            out
        }
    }

    /// Parses the regex subset the workspace uses — literal characters,
    /// character classes like `[a-z0-9 ]`, and the quantifiers `{n}`,
    /// `{m,n}`, `?`, `*`, `+` (unbounded repetition is capped at 8) — and
    /// returns a strategy generating matching strings.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(c) = chars.next() else {
                            return Err(Error(format!("unterminated character class in {pattern:?}")));
                        };
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                                let lo = prev.take().expect("checked above");
                                let hi = chars.next().expect("peeked above");
                                if hi < lo {
                                    return Err(Error(format!("invalid range {lo}-{hi} in {pattern:?}")));
                                }
                                // `lo` is already in the set; add the rest.
                                set.extend(((lo as u32 + 1)..=(hi as u32)).filter_map(char::from_u32));
                            }
                            c => {
                                set.push(c);
                                prev = Some(c);
                            }
                        }
                    }
                    if set.is_empty() {
                        return Err(Error(format!("empty character class in {pattern:?}")));
                    }
                    Atom::Class(set)
                }
                '\\' => {
                    let Some(escaped) = chars.next() else {
                        return Err(Error(format!("dangling escape in {pattern:?}")));
                    };
                    Atom::Literal(escaped)
                }
                '{' | '}' | '?' | '*' | '+' => {
                    return Err(Error(format!("dangling quantifier {c:?} in {pattern:?}")));
                }
                c => Atom::Literal(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| Error(format!("bad quantifier {{{body}}} in {pattern:?}")))
                    };
                    match body.split_once(',') {
                        None => {
                            let n = parse(&body)?;
                            (n, n)
                        }
                        Some((lo, "")) => {
                            let lo = parse(lo)?;
                            (lo, lo + 8)
                        }
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err(Error(format!(
                    "quantifier lower bound exceeds upper bound in {pattern:?}"
                )));
            }
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }
}

/// Test-runner configuration (`proptest::test_runner`).
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration: the number of generated cases.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Builds the RNG for one property: deterministic by default,
    /// reseedable through `PROPTEST_SEED` for exploration.
    pub fn new_rng() -> TestRng {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x70726f_70746573u64);
        TestRng::seed_from_u64(seed)
    }
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Fails the surrounding property (with an optional formatted message) without
/// panicking, so the runner can report the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Callers legitimately write `prop_assert!(a >= b)` on floats; the
        // negated partial-ord lint would fire on the generated `!`.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `config.cases` generated
/// inputs. Mirrors proptest's macro of the same name (without shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::new_rng();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "property {} failed at case {}/{}: {}\ninputs: {:?}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message,
                            ($(&$arg,)*)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::new_rng;

    #[test]
    fn string_regex_generates_matching_strings() {
        let strat = crate::string::string_regex("[a-z]{1,8} [0-9]{2}x?").unwrap();
        let mut rng = new_rng();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            let bytes = s.as_bytes();
            let space = s.find(' ').expect("space literal missing");
            assert!((1..=8).contains(&space), "head length out of range: {s:?}");
            assert!(bytes[..space].iter().all(|b| b.is_ascii_lowercase()));
            let tail = &s[space + 1..];
            assert!(
                tail.len() == 2 || (tail.len() == 3 && tail.ends_with('x')),
                "bad tail: {s:?}"
            );
            assert!(tail[..2].bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn string_regex_rejects_bad_patterns() {
        assert!(crate::string::string_regex("[a-z").is_err());
        assert!(crate::string::string_regex("{3}").is_err());
        assert!(crate::string::string_regex("a\\").is_err());
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = crate::collection::vec(0.0f64..1.0, 2..5);
        let mut rng = new_rng();
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(a in 0u8..10, pair in (0.0f64..1.0, 1usize..4)) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&pair.0), "pair.0 out of range: {}", pair.0);
            prop_assert_eq!(pair.1.min(3), pair.1);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_compiles(x in 0.0f64..1.0) {
            prop_assert!(x >= 0.0);
        }
    }
}
