//! `serve_bench` — traffic replay against the `er-serve` online engine.
//!
//! End to end: trains a LearnRisk model on a synthetic DS-style workload,
//! exports it as a versioned artifact, loads the artifact back, compiles the
//! scoring engine, verifies the round trip is bit-exact, then replays a
//! Zipf-skewed request stream at each `--threads` count and reports
//! throughput plus p50/p95/p99 service latency. Results are printed as a
//! table and written as machine-readable JSON (default `out/serve_bench.json`,
//! override with `SERVE_BENCH_JSON`; request count via
//! `SERVE_BENCH_REQUESTS`).
//!
//! Usage: `cargo run -p er-bench --release --bin serve_bench [scale] [--threads 1,2,4]`

use er_base::SplitRatio;
use er_classifier::{MatcherKind, TrainConfig};
use er_datasets::{generate_benchmark, BenchmarkId};
use er_eval::{build_score_requests, export_and_load_engine, run_pipeline, verify_round_trip, PipelineConfig};
use er_gateway::{CanaryConfig, GatewayConfig, GatewayServer, HashRing};
use er_serve::{
    extract_histogram, http_roundtrip, http_roundtrip_with_headers, parse_exposition, parse_score_response,
    read_http_response, run_replay, summarize_latencies, zipf_stream, LatencySummary, ModelArtifact, RateLimitConfig,
    ReloadableExecutor, ReplayConfig, ReplayReport, ScoreRequest, ScoreServer, ScoringEngine, ServeConfig,
    ServerConfig, ServerStats, ShardedExecutor, Stage,
};
use learnrisk_core::{LearnRiskModel, PairRiskInput, RiskTrainConfig};
use serde::Serialize;
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Machine-readable result of one `serve_bench` invocation (the
/// `BENCH_*.json` perf-trajectory format). `runs_uncached` measures pure
/// scoring scalability (cache off); `runs_cached` measures the production
/// regime where the LRU cache absorbs the Zipf head.
#[derive(Debug, Serialize)]
struct ServeBenchSummary {
    scale: f64,
    seed: u64,
    /// CPUs available to the benchmarking process — lets perf-trajectory
    /// consumers tell single-CPU container runs apart from real multicore
    /// results.
    available_parallelism: usize,
    pool_pairs: usize,
    rule_count: usize,
    requests: usize,
    zipf_exponent: f64,
    round_trip_bit_exact: bool,
    /// SoA-vs-AoS portfolio-aggregation timing over the served pairs'
    /// portfolios — the layout win of the engine's per-request hot path.
    aggregation: er_bench::AggregationBench,
    runs_uncached: Vec<ReplayReport>,
    runs_cached: Vec<ReplayReport>,
    /// HTTP front-end replay: socket round-trip latency, latency under a
    /// mid-replay hot reload, and the deliberate backpressure smoke.
    frontend: FrontendBench,
    /// The multi-process gateway phase: `er-serve` child processes behind an
    /// `er-gateway` router — throughput scaling in backend count, hedging
    /// against an injected straggler, and the canary promotion/rollback
    /// attestations. `None` only when the `er-serve` binary is not built
    /// (the gate hard-fails that absence once a baseline carries the phase).
    gateway: Option<GatewayBench>,
}

/// One entry of the gateway scaling series: the identical closed-loop
/// replay against `backends` freshly spawned `er-serve` processes.
#[derive(Debug, Serialize)]
struct GatewayScalingEntry {
    backends: usize,
    requests: usize,
    clients: usize,
    elapsed_secs: f64,
    throughput_rps: f64,
    latency: LatencySummary,
    non_2xx: u64,
    /// Every response through the hop was 2xx.
    all_2xx: bool,
    /// Every relayed score matched the in-process engine bit for bit — the
    /// gateway forwards backend bodies byte-for-byte.
    bit_exact: bool,
}

/// The hedging smoke: one backend stalls every score via an injected fault
/// plan; requests whose ring primary is the straggler must be answered by
/// the hedge instead, within budget and bit-exactly.
#[derive(Debug, Serialize)]
struct GatewayHedging {
    /// The `ER_FAULT_PLAN` injected into the stalled backend.
    fault_spec: String,
    hedge_after_ms: u64,
    /// Requests deliberately routed at the stalled backend.
    requests: usize,
    hedges_launched: u64,
    hedges_won: u64,
    /// At least one hedge raced and won.
    hedge_fired: bool,
    all_2xx: bool,
    bit_exact: bool,
}

/// One canary cycle through the gateway control plane (promotion with an
/// equivalent candidate, rollback with a divergent one).
#[derive(Debug, Serialize)]
struct GatewayCanary {
    candidate_path: String,
    /// Requests driven through the gateway while the canary was in flight.
    requests: usize,
    promotions: u64,
    rollbacks: u64,
    /// The cycle ended in an automatic promotion.
    promotion_fired: bool,
    /// The cycle ended in an automatic rollback.
    rollback_fired: bool,
    non_2xx: u64,
    /// No connection was severed and no request errored across the cycle —
    /// promotion/rollback are routing + hot-reload changes only.
    zero_severed: bool,
    /// Every served score matched the baseline engine bit for bit (canary
    /// answers never leak to clients before the verdict).
    bit_exact: bool,
    /// After the cycle every backend reports the same artifact digest.
    digests_converged: bool,
}

/// The multi-process gateway phase: see [`gateway_bench`].
#[derive(Debug, Serialize)]
struct GatewayBench {
    /// Backends are separate `er-serve` OS processes, not in-process
    /// executors — the scaling series crosses real process boundaries.
    multi_process: bool,
    backend_binary: String,
    series: Vec<GatewayScalingEntry>,
    /// Aggregate throughput at 2 backends over 1 backend — the near-linear
    /// scaling claim, gated by `bench_diff` as a ratio metric.
    scaling_2x: f64,
    hedging: GatewayHedging,
    canary_promotion: GatewayCanary,
    canary_rollback: GatewayCanary,
}

/// One front-end socket replay: closed-loop clients posting the stream one
/// request at a time, with every response's score bit-compared against the
/// in-process engine of the version it reports.
#[derive(Debug, Serialize)]
struct FrontendRun {
    clients: usize,
    requests: usize,
    elapsed_secs: f64,
    throughput_rps: f64,
    /// Socket round-trip (request write → response parsed) percentiles.
    latency: LatencySummary,
    non_2xx: u64,
    /// Every socket score matched the in-process engine bit for bit.
    bit_exact: bool,
}

/// The latency-under-reload series: the same replay with hot reloads fired
/// at request-count milestones while traffic is in flight.
#[derive(Debug, Serialize)]
struct FrontendReload {
    clients: usize,
    requests: usize,
    /// Hot reloads applied mid-replay.
    reloads: u64,
    /// Distinct `model_version` tags observed across all responses.
    versions_observed: Vec<u64>,
    elapsed_secs: f64,
    throughput_rps: f64,
    latency: LatencySummary,
    non_2xx: u64,
    /// Every response's score matched a fresh engine of exactly the version
    /// it was tagged with (no torn batches, no stale cache hits).
    bit_exact_per_version: bool,
}

/// The deliberate backpressure phase: intake paused, queue filled, one
/// overflow request that must bounce with 429, then full recovery.
#[derive(Debug, Serialize)]
struct FrontendBackpressure {
    queue_capacity: usize,
    deliberate_rejections_429: u64,
    recovered_2xx: bool,
}

/// The `/metrics` scrape taken right after the plain replay, with both
/// reconciliations the perf gate attests: the exposition parses and its
/// `er_serve_score_requests_total` equals the replay's own request count,
/// and the `request_duration` histogram brackets the replay's measured
/// p50/p95/p99 (±1 bucket, [`PERCENTILE_SLACK_SECS`] absolute slack).
#[derive(Debug, Serialize)]
struct FrontendMetrics {
    snapshot_path: String,
    scrape_parsed: bool,
    /// Sum of `er_serve_score_requests_total` across versions at scrape time.
    score_requests_total: u64,
    /// `score_requests_total == replay.requests`.
    reconciles_with_replay: bool,
    /// Histogram-derived p50/p95/p99 bracket the replay's socket-measured
    /// percentiles.
    histogram_reconciled: bool,
}

/// The tracing A/B phase: the identical replay against a tracing-off control
/// server and a tracing-on server retaining *every* trace, with the span
/// timelines reconciled against both the replay's own measurements and the
/// metrics registry, and the Chrome trace-event export parsed and snapshotted.
#[derive(Debug, Serialize)]
struct TracingBench {
    /// Ring capacity of the tracing-on server — sized to `2 × requests` so
    /// no trace is evicted and the reconciliations below cover every request.
    trace_capacity: usize,
    /// The tracing-off control replay (`trace_capacity: 0`).
    replay_trace_off: FrontendRun,
    /// The tracing-on replay.
    replay_trace_on: FrontendRun,
    /// Tracing-on throughput over tracing-off throughput; ~1.0 when span
    /// recording stays off the hot path's lock, gated by `bench_diff` as a
    /// ratio metric.
    tracing_on_relative_throughput: f64,
    /// Committed `/score` traces (status 200) — must equal both the replayed
    /// request count and the scraped `er_serve_score_requests_total`.
    committed_score_traces: u64,
    /// The three-way count reconciliation above held.
    span_counts_match: bool,
    /// Every retained trace's stage spans nest inside its recorded total
    /// (no span ends after the request's own end).
    spans_nest_within_totals: bool,
    /// Every scored trace covers the full stage taxonomy
    /// (`parse`, `score`, `serialize`, `write`).
    stage_taxonomy_complete: bool,
    /// Server-side percentiles over trace totals sit at or below the
    /// client-measured socket percentiles (+wire slack): the server's
    /// `parse → write` window is physically contained in the client's
    /// write → parsed window.
    totals_bracket_replay: bool,
    /// Server-side p50/p95/p99 over trace totals, for the trajectory.
    trace_latency: LatencySummary,
    /// `GET /debug/traces` parsed as Chrome trace-event JSON.
    chrome_export_parsed: bool,
    /// Where the raw `/debug/traces` body was written.
    snapshot_path: String,
}

/// One entry of the high-connection-count series: `connections` keep-alive
/// connections opened and held mostly idle against one readiness loop,
/// probing accept-to-first-byte latency on the way in, scoring through the
/// parked set, then sweeping every connection on the way out to prove none
/// was severed.
#[derive(Debug, Serialize)]
struct ConnectionSeriesEntry {
    connections: usize,
    /// `connect()` → first response byte of the opening `/healthz` probe,
    /// over every connection in the set.
    accept_to_first_byte: LatencySummary,
    /// `/score` round trips driven across the parked set while the rest of
    /// the connections idle.
    score_requests: usize,
    score_latency: LatencySummary,
    /// Every opening probe, score, and closing sweep answered 2xx.
    all_2xx: bool,
    /// Zero transport errors across the entry — the readiness loop held
    /// every one of `connections` connections alive to the end.
    zero_severed: bool,
    /// Every score matched the in-process engine bit for bit.
    bit_exact: bool,
}

/// The high-connection-count phase (its own server with a raised
/// `max_connections`): the series proves the event-driven front-end holds
/// thousands of mostly-idle connections — a regime the old
/// thread-per-connection design could not enter — while still serving with
/// zero severed connections and bit-exact scores.
#[derive(Debug, Serialize)]
struct ConnectionBench {
    /// The `max_connections` the series server ran with.
    max_connections: usize,
    series: Vec<ConnectionSeriesEntry>,
}

/// The rate-limit smoke (its own server, so the canonical phase counters
/// stay clean): one client exhausts its burst and must get 429 +
/// `X-RateLimit-*`, while a second client on the same peer IP flows freely.
#[derive(Debug, Serialize)]
struct RateLimitSmoke {
    rate_per_sec: f64,
    burst: f64,
    /// The over-budget client got a 429.
    limited_429: bool,
    /// …carrying all three `X-RateLimit-*` headers and a non-zero
    /// `Retry-After` (distinguishing it from a queue-full 429).
    headers_present: bool,
    /// The second client's request scored 200 after the first was limited.
    second_client_unaffected: bool,
}

/// The chaos phase (its own server, so the canonical phase counters stay
/// clean): a seeded [`er_serve::FaultPlan`] injects shard-worker panics, batcher
/// panics, a scoring stall, a slow client write, and torn/invalid artifact
/// reloads while a retrying client replays live traffic. Attested: zero
/// severed connections, panic counters reconciling with the plan's own
/// fired counts, bit-exact scores across every supervisor recovery, the old
/// version serving through every refused reload, and deadline shedding
/// answering an expired tranche promptly.
#[derive(Debug, Serialize)]
struct ChaosBench {
    /// The exact fault spec injected (fixed seed — the phase is replayable).
    fault_spec: String,
    requests: usize,
    /// Transport errors across every attempt of every request.
    severed_connections: u64,
    /// `severed_connections == 0` — the headline attestation.
    zero_severed_connections: bool,
    /// Requests that needed more than one attempt (rode a panicked batch).
    retried_requests: u64,
    /// Shard-worker panics the plan fired (caught inside the executor).
    injected_shard_panics: u64,
    /// Batcher panics the plan fired (caught by batch supervision).
    injected_batcher_panics: u64,
    /// Scraped `er_serve_worker_panics_total` summed across roles…
    worker_panics_total: u64,
    /// …equal to the injected count, and non-zero.
    panics_reconciled: bool,
    /// Every 200 score matched the v1 engine bit for bit, including the
    /// re-scored batches behind each recovery.
    bit_exact_across_restarts: bool,
    /// Mid-replay reload attempts — all refused with 409 (torn artifact
    /// read, then an injected validation failure)…
    reloads_refused: u64,
    /// …while every response stayed tagged `model_version` 1.
    old_version_served_throughout: bool,
    /// The parked tiny-deadline tranche: every job shed with a 504.
    deadline_504s: u64,
    /// All tranche 504s arrived within the shedding bound after resume —
    /// expired work is dropped in O(queue), not scored.
    deadline_shedding_bounds_p99: bool,
    /// Per-request wall latency of the chaos replay, retries and injected
    /// stalls included (trajectory only — not latency-gated).
    latency: LatencySummary,
}

#[derive(Debug, Serialize)]
struct FrontendBench {
    threads: usize,
    queue_capacity: usize,
    max_batch: usize,
    batch_window_us: u64,
    replay: FrontendRun,
    /// The same replay against a `metrics_enabled: false` server — the A/B
    /// control behind `metrics_on_relative_throughput`.
    replay_metrics_off: FrontendRun,
    /// Metrics-on throughput over metrics-off throughput; ~1.0 when the
    /// registry's atomics are free, gated by `bench_diff` as a ratio metric.
    metrics_on_relative_throughput: f64,
    metrics: FrontendMetrics,
    /// The high-connection-count series (256/1024/… mostly-idle keep-alive
    /// connections, `SERVE_BENCH_CONNECTIONS`).
    connections: ConnectionBench,
    rate_limit: RateLimitSmoke,
    /// The tracing-on/off A/B with span reconciliation and Chrome export.
    tracing: TracingBench,
    reload: FrontendReload,
    backpressure: FrontendBackpressure,
    /// Fault injection under live traffic: supervision, retries, deadline
    /// shedding and reload refusal, attested end to end.
    chaos: ChaosBench,
    /// Final server counters; 4xx/5xx must be zero and 429 must equal the
    /// deliberate rejections (asserted before the JSON is written).
    statuses: ServerStats,
}

fn main() {
    let args = er_bench::parse_args(0.02);
    let requests = er_bench::env_usize("SERVE_BENCH_REQUESTS", 40_000);
    let json_path = PathBuf::from(std::env::var("SERVE_BENCH_JSON").unwrap_or_else(|_| "out/serve_bench.json".into()));

    // --- train ------------------------------------------------------------
    println!(
        "serve_bench: training on DS at scale {} (threads {:?}, {requests} requests)",
        args.config.scale, args.threads
    );
    let ds = generate_benchmark(BenchmarkId::DblpScholar, args.config.scale, args.config.seed);
    let pipeline = PipelineConfig {
        matcher: MatcherKind::Logistic,
        matcher_config: TrainConfig {
            epochs: 25,
            ..Default::default()
        },
        risk_train_config: RiskTrainConfig {
            epochs: 80,
            ..Default::default()
        },
        // The serving benchmark only needs the LearnRisk model; keep the
        // Uncertainty baseline's ensemble minimal.
        ensemble_members: 2,
        seed: args.config.seed,
        ..Default::default()
    };
    let (result, artifacts) = run_pipeline(&ds.workload, SplitRatio::new(3, 2, 5), &pipeline);
    println!(
        "serve_bench: trained model with {} rules (classifier F1 {:.3})",
        result.rule_count, result.classifier_f1
    );

    // --- export → load → verify -------------------------------------------
    let artifact_path = json_path.with_file_name("serve_model.json");
    let (_, engine) = export_and_load_engine(&artifacts, &artifact_path).unwrap_or_else(|e| {
        panic!("artifact round trip through {} failed: {e}", artifact_path.display());
    });
    let pool = build_score_requests(&artifacts.evaluator, &artifacts.matcher, ds.workload.pairs());
    let check = verify_round_trip(&artifacts.risk_model, &engine, &pool);
    match &check {
        Ok(()) => println!(
            "serve_bench: artifact round trip bit-exact on {} pairs ({})",
            pool.len(),
            artifact_path.display()
        ),
        Err((i, served, expected)) => {
            panic!("artifact round trip diverged on pair {i}: served {served}, expected {expected}")
        }
    }

    // --- aggregation micro-benchmark --------------------------------------
    // Resolve each request's rule coverage once through the compiled index
    // (exactly what the engine does per request), then time the SoA-vs-AoS
    // aggregation of the resulting portfolios.
    let serve_inputs: Vec<PairRiskInput> = pool
        .iter()
        .map(|r| PairRiskInput {
            rule_indices: engine.index().matching_rules(&r.metric_row),
            classifier_output: r.classifier_output,
            machine_says_match: r.machine_says_match,
            risk_label: 0,
        })
        .collect();
    let aggregation = er_bench::aggregation_bench(engine.model(), &serve_inputs, 5);
    println!(
        "serve_bench: SoA aggregation speedup {:.2}x over AoS ({} portfolios, {:.1} components each)",
        aggregation.soa_speedup, aggregation.portfolios, aggregation.mean_components
    );

    // --- replay -----------------------------------------------------------
    let stream = zipf_stream(
        &pool,
        &ReplayConfig {
            requests,
            zipf_exponent: 1.1,
            seed: args.config.seed,
        },
    );
    let run_mode = |label: &str, cache_capacity: usize| -> Vec<ReplayReport> {
        println!();
        println!("-- {label} --");
        println!(
            "{:>8} {:>14} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "Threads", "Requests/s", "p50 (µs)", "p95 (µs)", "p99 (µs)", "max (µs)", "Hit rate"
        );
        let mut runs = Vec::new();
        for &threads in &args.threads {
            let config = ServeConfig {
                cache_capacity,
                ..ServeConfig::default().with_threads(threads)
            };
            let executor = ShardedExecutor::new(engine.clone(), config);
            let report = run_replay(&executor, &stream);
            println!(
                "{:>8} {:>14.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7.1}%",
                report.threads,
                report.throughput_rps,
                report.latency.p50_us,
                report.latency.p95_us,
                report.latency.p99_us,
                report.latency.max_us,
                report.cache_hit_rate * 100.0
            );
            runs.push(report);
        }
        runs
    };
    // Cache off: every request is scored, so this measures how the engine
    // itself scales with threads. Cache on: the production regime, where the
    // LRU absorbs the Zipf head and throughput is lookup-bound.
    let runs_uncached = run_mode("scoring (cache off)", 0);
    let runs_cached = run_mode("cached serving (LRU on)", ServeConfig::default().cache_capacity);

    // --- HTTP front-end ---------------------------------------------------
    // Socket round trips are orders of magnitude slower than in-process
    // calls, so the front-end replays a prefix of the stream (override with
    // SERVE_BENCH_FRONTEND_REQUESTS / SERVE_BENCH_CLIENTS).
    let frontend_requests = er_bench::env_usize("SERVE_BENCH_FRONTEND_REQUESTS", 4_000)
        .min(stream.len())
        .max(1);
    let clients = er_bench::env_usize("SERVE_BENCH_CLIENTS", 4).max(1);
    let frontend_threads = args.threads.iter().copied().max().unwrap_or(1);
    let frontend = frontend_bench(
        &engine,
        &artifact_path,
        &stream[..frontend_requests],
        clients,
        frontend_threads,
    );

    // --- multi-process gateway ---------------------------------------------
    let gateway_requests = er_bench::env_usize("SERVE_BENCH_GATEWAY_REQUESTS", 1_200)
        .min(stream.len())
        .max(1);
    let gateway = gateway_bench(&engine, &artifact_path, &stream[..gateway_requests], clients);

    // --- summary ----------------------------------------------------------
    if let Some(single) = runs_uncached.iter().find(|r| r.threads == 1) {
        let best = runs_uncached
            .iter()
            .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
            .expect("at least one run");
        println!();
        println!(
            "serve_bench: best scoring throughput {:.0} req/s at {} threads ({:.2}× single-threaded)",
            best.throughput_rps,
            best.threads,
            best.throughput_rps / single.throughput_rps.max(1e-9),
        );
        let cores = er_bench::available_parallelism();
        if cores == 1 {
            println!(
                "serve_bench: note — only 1 CPU is available to this process; \
                 thread counts above 1 time-slice a single core and cannot show a speedup here"
            );
        }
    }

    let summary = ServeBenchSummary {
        scale: args.config.scale,
        seed: args.config.seed,
        available_parallelism: er_bench::available_parallelism(),
        pool_pairs: pool.len(),
        rule_count: result.rule_count,
        requests,
        zipf_exponent: 1.1,
        round_trip_bit_exact: check.is_ok(),
        aggregation,
        runs_uncached,
        runs_cached,
        frontend,
        gateway,
    };
    if let Some(parent) = json_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&json_path, serde::json::to_string_pretty(&summary)).expect("write serve_bench JSON");
    println!("serve_bench: wrote {}", json_path.display());
}

// ---------------------------------------------------------------------------
// HTTP front-end replay
// ---------------------------------------------------------------------------

/// A deterministic "retrained" variant of the served model: rule weights
/// nudged alternately up/down within their feasible range, standing in for
/// the next active-learning round's retrain. Scores differ from the original
/// on rule-covered pairs, which is what makes per-version bit-exactness a
/// real assertion during the reload replay.
fn retrained_variant(model: &LearnRiskModel) -> LearnRiskModel {
    let mut variant = model.clone();
    for (i, w) in variant.rule_weights.iter_mut().enumerate() {
        *w = (*w * if i % 2 == 0 { 1.07 } else { 0.93 }).clamp(1e-3, 1e3);
    }
    variant.validate().expect("perturbed model must stay valid");
    variant
}

#[derive(Serialize)]
struct ReloadBody {
    path: String,
}

struct ClientOutcome {
    latencies_ns: Vec<u64>,
    non_2xx: u64,
    bit_exact: bool,
    versions: BTreeSet<u64>,
}

impl Default for ClientOutcome {
    fn default() -> Self {
        Self {
            latencies_ns: Vec::new(),
            non_2xx: 0,
            bit_exact: true,
            versions: BTreeSet::new(),
        }
    }
}

struct SocketReplayOutcome {
    latency: LatencySummary,
    elapsed_secs: f64,
    throughput_rps: f64,
    non_2xx: u64,
    bit_exact: bool,
    versions: Vec<u64>,
}

/// Replays `stream` against the server with closed-loop clients (one
/// keep-alive connection each), timing every socket round trip and
/// bit-comparing every score against the in-process expectation of the
/// version the response reports: odd versions carry the original model's
/// scores (`expected_odd`), even versions the retrained variant's
/// (`expected_even`) — reloads alternate the two artifacts.
fn run_socket_replay(
    addr: SocketAddr,
    stream: &[ScoreRequest],
    clients: usize,
    expected_odd: &[f64],
    expected_even: &[f64],
    progress: &AtomicUsize,
) -> SocketReplayOutcome {
    let start = Instant::now();
    let chunk = stream.len().div_ceil(clients.max(1));
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(chunk)
            .enumerate()
            .map(|(client_index, requests)| {
                let offset = client_index * chunk;
                scope.spawn(move || {
                    let mut conn = TcpStream::connect(addr).expect("frontend: connect to the score server");
                    let mut out = ClientOutcome::default();
                    for (i, request) in requests.iter().enumerate() {
                        let body = serde::json::to_string(request);
                        let t0 = Instant::now();
                        // Any transport error is a dropped request — the
                        // zero-drop guarantee the front-end makes, so panic.
                        let response = http_roundtrip(&mut conn, "POST", "/score", Some(&body))
                            .expect("frontend: connection dropped mid-replay");
                        out.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        if response.status != 200 {
                            out.non_2xx += 1;
                        } else {
                            let (version, scores) =
                                parse_score_response(&response.body).expect("frontend: malformed score body");
                            out.versions.insert(version);
                            let expected = if version % 2 == 1 { expected_odd } else { expected_even };
                            if scores.len() != 1 || scores[0].to_bits() != expected[offset + i].to_bits() {
                                out.bit_exact = false;
                            }
                        }
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("frontend client panicked"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();
    let mut latencies_ns = Vec::with_capacity(stream.len());
    let mut non_2xx = 0;
    let mut bit_exact = true;
    let mut versions = BTreeSet::new();
    for outcome in outcomes {
        latencies_ns.extend(outcome.latencies_ns);
        non_2xx += outcome.non_2xx;
        bit_exact &= outcome.bit_exact;
        versions.extend(outcome.versions);
    }
    SocketReplayOutcome {
        latency: summarize_latencies(&mut latencies_ns),
        elapsed_secs,
        throughput_rps: if elapsed_secs > 0.0 {
            stream.len() as f64 / elapsed_secs
        } else {
            0.0
        },
        non_2xx,
        bit_exact,
        versions: versions.into_iter().collect(),
    }
}

/// Runs the three front-end phases against a live [`ScoreServer`]: plain
/// socket replay, the same replay with hot reloads fired mid-flight, and the
/// deliberate backpressure smoke. Panics (failing the smoke tiers) on any
/// non-2xx outside the backpressure phase, any score-bit divergence, or a
/// dropped request.
fn frontend_bench(
    engine: &ScoringEngine,
    artifact_v1_path: &Path,
    stream: &[ScoreRequest],
    clients: usize,
    threads: usize,
) -> FrontendBench {
    const RELOADS: u64 = 3;
    // The retrained artifact the mid-replay reloads alternate with.
    let retrained = retrained_variant(engine.model());
    let artifact_v2_path = artifact_v1_path.with_file_name("serve_model_v2.json");
    ModelArtifact::new(retrained.clone())
        .save(&artifact_v2_path)
        .expect("save retrained artifact");
    let expected_v1 = engine.score_batch(stream);
    let expected_v2 = ScoringEngine::new(retrained).score_batch(stream);

    let server_config = ServerConfig {
        queue_capacity: 16,
        // The canonical phases stay tracing-free so their absolute baselines
        // keep meaning what they always meant; the dedicated tracing phase
        // below owns the tracing-on/off A/B.
        trace_capacity: 0,
        ..ServerConfig::default()
    };
    // Captured before the config moves into the server, so the JSON block
    // records the shape actually served (not `ServerConfig::default()`).
    let queue_capacity = server_config.queue_capacity;
    let max_batch = server_config.max_batch;
    let batch_window_us = server_config.batch_window.as_micros() as u64;

    // Phase 0: the metrics-off control — the identical replay against its
    // own fresh server with every registry observation compiled out of the
    // hot path. Runs first so neither series inherits the other's warmup.
    let replay_metrics_off = {
        let executor = Arc::new(ReloadableExecutor::new(
            engine.clone(),
            ServeConfig::default().with_threads(threads),
        ));
        let server = ScoreServer::start(
            executor,
            ServerConfig {
                metrics_enabled: false,
                ..server_config.clone()
            },
        )
        .expect("bind metrics-off score server");
        println!();
        println!(
            "-- HTTP front-end on {} (metrics OFF control, {} requests, {clients} clients) --",
            server.local_addr(),
            stream.len()
        );
        let progress = AtomicUsize::new(0);
        let outcome = run_socket_replay(
            server.local_addr(),
            stream,
            clients,
            &expected_v1,
            &expected_v1,
            &progress,
        );
        assert_eq!(outcome.non_2xx, 0, "metrics-off replay must be all-2xx");
        assert!(outcome.bit_exact, "metrics-off socket scores diverged");
        println!(
            "frontend replay (metrics off): {:>10.0} req/s  p50 {:>7.1}µs  p95 {:>7.1}µs  p99 {:>7.1}µs",
            outcome.throughput_rps, outcome.latency.p50_us, outcome.latency.p95_us, outcome.latency.p99_us
        );
        server.shutdown();
        FrontendRun {
            clients,
            requests: stream.len(),
            elapsed_secs: outcome.elapsed_secs,
            throughput_rps: outcome.throughput_rps,
            latency: outcome.latency,
            non_2xx: outcome.non_2xx,
            bit_exact: outcome.bit_exact,
        }
    };

    let executor = Arc::new(ReloadableExecutor::new(
        engine.clone(),
        ServeConfig::default().with_threads(threads),
    ));
    let server = ScoreServer::start(Arc::clone(&executor), server_config).expect("bind score server");
    let addr = server.local_addr();
    println!();
    println!(
        "-- HTTP front-end on {addr} ({} requests, {clients} clients, {threads} executor threads) --",
        stream.len()
    );

    // Phase 1: plain socket replay, version constant.
    let progress = AtomicUsize::new(0);
    let outcome = run_socket_replay(addr, stream, clients, &expected_v1, &expected_v1, &progress);
    assert_eq!(outcome.non_2xx, 0, "front-end replay must be all-2xx");
    assert!(outcome.bit_exact, "socket scores diverged from in-process scoring");
    assert_eq!(outcome.versions, vec![1], "no reload happened yet");
    println!(
        "frontend replay: {:>10.0} req/s  p50 {:>7.1}µs  p95 {:>7.1}µs  p99 {:>7.1}µs",
        outcome.throughput_rps, outcome.latency.p50_us, outcome.latency.p95_us, outcome.latency.p99_us
    );
    let replay = FrontendRun {
        clients,
        requests: stream.len(),
        elapsed_secs: outcome.elapsed_secs,
        throughput_rps: outcome.throughput_rps,
        latency: outcome.latency,
        non_2xx: outcome.non_2xx,
        bit_exact: outcome.bit_exact,
    };
    let metrics_on_relative_throughput = replay.throughput_rps / replay_metrics_off.throughput_rps.max(1e-9);
    println!("frontend metrics on/off throughput ratio: {metrics_on_relative_throughput:.3}");

    // Scrape `/metrics` while the registry holds exactly the plain replay's
    // traffic, and reconcile it against what the replay itself measured.
    let metrics = scrape_and_reconcile(addr, &replay);

    // Phase 2: the same replay with RELOADS hot reloads fired at
    // request-count milestones while traffic is in flight.
    let progress = AtomicUsize::new(0);
    let outcome = std::thread::scope(|scope| {
        let progress = &progress;
        let total = stream.len();
        let v1 = artifact_v1_path.to_path_buf();
        let v2 = artifact_v2_path.clone();
        let controller = scope.spawn(move || {
            for k in 1..=RELOADS {
                let milestone = (k as usize * total) / (RELOADS as usize + 1);
                while progress.load(Ordering::Relaxed) < milestone {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                // Reload k produces version k+1: odd reloads promote the
                // retrained artifact (even versions), even reloads roll back.
                let path = if k % 2 == 1 { &v2 } else { &v1 };
                let body = serde::json::to_string(&ReloadBody {
                    path: path.display().to_string(),
                });
                let mut conn = TcpStream::connect(addr).expect("frontend: connect for reload");
                let response =
                    http_roundtrip(&mut conn, "POST", "/reload", Some(&body)).expect("frontend: reload round trip");
                assert_eq!(response.status, 200, "mid-replay reload {k} failed: {}", response.body);
            }
        });
        let outcome = run_socket_replay(addr, stream, clients, &expected_v1, &expected_v2, progress);
        controller.join().expect("reload controller panicked");
        outcome
    });
    assert_eq!(
        outcome.non_2xx, 0,
        "reload replay must be all-2xx (zero dropped requests)"
    );
    assert!(
        outcome.bit_exact,
        "a score did not match the artifact version it was tagged with"
    );
    assert_eq!(executor.version(), 1 + RELOADS, "every reload must have been applied");
    assert!(
        outcome.versions.iter().all(|v| (1..=1 + RELOADS).contains(v)),
        "impossible version tags: {:?}",
        outcome.versions
    );
    println!(
        "frontend reload: {:>10.0} req/s  p50 {:>7.1}µs  p95 {:>7.1}µs  p99 {:>7.1}µs  ({} reloads, versions {:?})",
        outcome.throughput_rps,
        outcome.latency.p50_us,
        outcome.latency.p95_us,
        outcome.latency.p99_us,
        RELOADS,
        outcome.versions
    );
    let reload = FrontendReload {
        clients,
        requests: stream.len(),
        reloads: RELOADS,
        versions_observed: outcome.versions,
        elapsed_secs: outcome.elapsed_secs,
        throughput_rps: outcome.throughput_rps,
        latency: outcome.latency,
        non_2xx: outcome.non_2xx,
        bit_exact_per_version: outcome.bit_exact,
    };

    // Phase 3: deliberate backpressure. Pause the batcher, fill the
    // admission queue with blocked in-flight requests, and require the
    // overflow request to bounce with a deterministic 429 — then recover.
    server.pause_intake();
    let sample = stream[0].clone();
    let blocked: Vec<std::thread::JoinHandle<u16>> = (0..queue_capacity)
        .map(|_| {
            let request = sample.clone();
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("frontend: connect while paused");
                let body = serde::json::to_string(&request);
                http_roundtrip(&mut conn, "POST", "/score", Some(&body))
                    .expect("frontend: blocked request dropped")
                    .status
            })
        })
        .collect();
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while server.queued_jobs() < queue_capacity {
        assert!(
            Instant::now() < deadline,
            "backpressure phase: queue never filled ({} of {queue_capacity})",
            server.queued_jobs()
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut conn = TcpStream::connect(addr).expect("frontend: connect for overflow");
    let body = serde::json::to_string(&sample);
    let rejected = http_roundtrip(&mut conn, "POST", "/score", Some(&body)).expect("frontend: overflow round trip");
    assert_eq!(
        rejected.status, 429,
        "overflow beyond the admission queue must bounce with 429, got {}: {}",
        rejected.status, rejected.body
    );
    assert!(
        rejected.header("x-ratelimit-limit").is_none() && rejected.header("retry-after") == Some("0"),
        "a queue-full 429 must not look like a rate-limit 429: {:?}",
        rejected.headers
    );
    server.resume_intake();
    for handle in blocked {
        let status = handle.join().expect("blocked client panicked");
        assert_eq!(status, 200, "a queued request was dropped instead of scored");
    }
    let recovered = http_roundtrip(&mut conn, "POST", "/score", Some(&body)).expect("frontend: recovery round trip");
    assert_eq!(recovered.status, 200, "server did not recover after backpressure");
    println!("frontend backpressure: queue {queue_capacity} filled, overflow bounced 429, recovered");
    let backpressure = FrontendBackpressure {
        queue_capacity,
        deliberate_rejections_429: 1,
        recovered_2xx: true,
    };

    let statuses = server.stats();
    assert_eq!(statuses.responses_4xx, 0, "unexpected 4xx responses: {statuses:?}");
    assert_eq!(statuses.responses_5xx, 0, "unexpected 5xx responses: {statuses:?}");
    assert_eq!(
        statuses.responses_429, backpressure.deliberate_rejections_429,
        "429s outside the deliberate backpressure phase: {statuses:?}"
    );
    server.shutdown();

    // The high-connection-count series gets its own server with a raised
    // connection cap.
    let connections = connection_series_bench(engine, stream, threads, &expected_v1);

    // The rate-limit smoke runs on its own server so the canonical phase
    // counters above stay exactly attributable.
    let rate_limit = rate_limit_smoke(engine, &stream[0], threads);

    // The tracing A/B likewise gets its own pair of servers.
    let tracing = tracing_bench(engine, stream, clients, threads, &expected_v1);

    // The chaos phase runs last, on its own server, with its own fault plan.
    let chaos = chaos_bench(engine, artifact_v1_path, stream, threads, &expected_v1);

    FrontendBench {
        threads,
        queue_capacity,
        max_batch,
        batch_window_us,
        replay,
        replay_metrics_off,
        metrics_on_relative_throughput,
        metrics,
        connections,
        rate_limit,
        tracing,
        reload,
        backpressure,
        chaos,
        statuses,
    }
}

/// The chaos phase: see [`ChaosBench`]. A fixed-seed [`er_serve::FaultPlan`] is
/// attached to a fresh server; a single closed-loop client replays `stream`
/// through it, retrying retryable statuses with [`er_serve::RetryPolicy`] backoff and
/// counting (it must never need to) reconnects; reload attempts are fired at
/// fixed milestones into the injected torn-read/validate failures; and a
/// parked tiny-deadline tranche proves shedding. Every attestation is
/// asserted here — the JSON flags exist so `bench_diff` can refuse a future
/// run that stops asserting them.
fn chaos_bench(
    engine: &ScoringEngine,
    artifact_v1_path: &Path,
    stream: &[ScoreRequest],
    threads: usize,
    expected_v1: &[f64],
) -> ChaosBench {
    let requests = er_bench::env_usize("SERVE_BENCH_CHAOS_REQUESTS", 300).clamp(1, stream.len());
    let stream = &stream[..requests];
    // Exact occurrence indices, fixed seed: the same faults fire at the same
    // points on every run, so the attestation counts are exact equalities.
    let fault_spec = "seed=2020; shard_worker_panic@0,40,80; batcher_panic@20,120; \
                      score_stall@60:150ms; client_write_stall@100:100ms; \
                      artifact_read_torn@0; reload_validate_fail@0"
        .to_string();
    let plan = Arc::new(er_serve::FaultPlan::parse(&fault_spec).expect("chaos fault spec parses"));
    let executor = Arc::new(ReloadableExecutor::new(
        engine.clone(),
        ServeConfig::default().with_threads(threads),
    ));
    let server = ScoreServer::start(
        Arc::clone(&executor),
        ServerConfig {
            queue_capacity: 16,
            trace_capacity: 0,
            fault_plan: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        },
    )
    .expect("bind chaos score server");
    let addr = server.local_addr();
    println!();
    println!("-- HTTP front-end chaos on {addr} ({requests} requests) --");
    println!("chaos fault plan: {fault_spec}");
    // The injected panics are supervised, but the default panic hook would
    // still spray their backtraces across the bench output; keep the phase
    // readable. serve_bench is single-phase-at-a-time, so swapping the
    // process-global hook here cannot mislabel anyone else's panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>");
        if msg.starts_with("injected ") {
            eprintln!("chaos: supervised {msg}");
        } else {
            eprintln!("chaos: unexpected panic: {msg}");
        }
    }));

    let policy = er_serve::RetryPolicy {
        max_attempts: 6,
        base_backoff_ms: 5,
        max_backoff_ms: 100,
        seed: 2020,
    };
    let mut severed = 0u64;
    let mut retried_requests = 0u64;
    let mut bit_exact = true;
    let mut versions = BTreeSet::new();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests);
    let mut reloads_refused = 0u64;
    let reload_body = serde::json::to_string(&ReloadBody {
        path: artifact_v1_path.display().to_string(),
    });
    let mut conn = TcpStream::connect(addr).expect("chaos: connect");
    for (i, request) in stream.iter().enumerate() {
        // Two reload attempts mid-replay: the first is torn mid-read, the
        // second fails injected validation — both must be refused while
        // traffic keeps scoring against the old version.
        if i == requests / 3 || i == (2 * requests) / 3 {
            let refused =
                http_roundtrip(&mut conn, "POST", "/reload", Some(&reload_body)).expect("chaos: reload round trip");
            assert_eq!(
                refused.status, 409,
                "a chaos reload attempt must be refused, got {}: {}",
                refused.status, refused.body
            );
            reloads_refused += 1;
        }
        let body = serde::json::to_string(request);
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            match http_roundtrip(&mut conn, "POST", "/score", Some(&body)) {
                Ok(response) if response.status == 200 => {
                    let (version, scores) = parse_score_response(&response.body).expect("chaos: malformed score body");
                    versions.insert(version);
                    if scores.len() != 1 || scores[0].to_bits() != expected_v1[i].to_bits() {
                        bit_exact = false;
                    }
                    break;
                }
                Ok(response) => {
                    // A panicked batch answers 500 on a still-healthy
                    // connection; back off and retry in place.
                    assert!(
                        matches!(response.status, 429 | 500 | 503),
                        "chaos: request {i} got unexpected status {}: {}",
                        response.status,
                        response.body
                    );
                    assert!(
                        attempt + 1 < policy.max_attempts,
                        "chaos: request {i} exhausted {} attempts on status {}",
                        policy.max_attempts,
                        response.status
                    );
                    std::thread::sleep(std::time::Duration::from_millis(policy.backoff_ms(attempt)));
                    attempt += 1;
                }
                Err(_) => {
                    // A severed connection — the thing the supervision
                    // guarantees away. Counted (the attestation requires 0)
                    // and reconnected so the replay itself can finish.
                    severed += 1;
                    assert!(
                        attempt + 1 < policy.max_attempts,
                        "chaos: request {i} exhausted {} attempts on transport errors",
                        policy.max_attempts
                    );
                    std::thread::sleep(std::time::Duration::from_millis(policy.backoff_ms(attempt)));
                    attempt += 1;
                    conn = TcpStream::connect(addr).expect("chaos: reconnect");
                }
            }
        }
        if attempt > 0 {
            retried_requests += 1;
        }
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
    }
    let latency = summarize_latencies(&mut latencies_ns);

    // Deadline tranche: park the batcher, admit jobs whose 5ms budget will
    // be long expired on resume, and require every one to shed with a 504.
    const DEADLINE_TRANCHE: usize = 8;
    server.pause_intake();
    let sample = serde::json::to_string(&stream[0]);
    let tranche: Vec<_> = (0..DEADLINE_TRANCHE)
        .map(|_| {
            let body = sample.clone();
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("chaos: tranche connect");
                http_roundtrip_with_headers(&mut conn, "POST", "/score", Some(&body), &[("X-Deadline-Ms", "5")])
                    .expect("chaos: tranche round trip")
            })
        })
        .collect();
    let queue_deadline = Instant::now() + std::time::Duration::from_secs(10);
    while server.queued_jobs() < DEADLINE_TRANCHE {
        assert!(
            Instant::now() < queue_deadline,
            "chaos: deadline tranche never queued ({} of {DEADLINE_TRANCHE})",
            server.queued_jobs()
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Let every 5ms budget expire while parked, then resume and time the
    // shed: expired jobs are answered in O(queue), not scored.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let resumed = Instant::now();
    server.resume_intake();
    let mut deadline_504s = 0u64;
    for handle in tranche {
        let response = handle.join().expect("chaos: tranche client panicked");
        assert_eq!(
            response.status, 504,
            "an expired job must shed with 504, got {}: {}",
            response.status, response.body
        );
        deadline_504s += 1;
    }
    let shed_elapsed = resumed.elapsed();
    let deadline_shedding_bounds_p99 = shed_elapsed < std::time::Duration::from_millis(500);
    assert!(
        deadline_shedding_bounds_p99,
        "chaos: shedding {DEADLINE_TRANCHE} expired jobs took {shed_elapsed:?}"
    );

    // --- attestations -------------------------------------------------------
    let zero_severed_connections = severed == 0;
    assert!(zero_severed_connections, "chaos: {severed} connections were severed");
    assert!(bit_exact, "chaos: a score diverged from the v1 engine");
    let injected_shard_panics = plan.fired(er_serve::FaultKind::ShardWorkerPanic);
    let injected_batcher_panics = plan.fired(er_serve::FaultKind::BatcherPanic);
    assert_eq!(injected_shard_panics, 3, "shard panic injections drifted");
    assert_eq!(injected_batcher_panics, 2, "batcher panic injections drifted");
    assert!(
        retried_requests >= injected_batcher_panics,
        "every batcher panic must have forced a retry ({retried_requests} retried)"
    );
    assert_eq!(
        plan.fired(er_serve::FaultKind::ArtifactReadTorn),
        1,
        "torn-read injection drifted"
    );
    assert_eq!(
        plan.fired(er_serve::FaultKind::ReloadValidateFail),
        1,
        "validate-failure injection drifted"
    );
    assert_eq!(reloads_refused, 2);
    let old_version_served_throughout = versions.iter().all(|v| *v == 1) && executor.version() == 1;
    assert!(
        old_version_served_throughout,
        "chaos: versions {versions:?} observed, executor at {} — a refused reload leaked",
        executor.version()
    );

    let mut scrape_conn = TcpStream::connect(addr).expect("chaos: scrape connect");
    let scrape = http_roundtrip(&mut scrape_conn, "GET", "/metrics", None).expect("chaos: scrape round trip");
    assert_eq!(scrape.status, 200, "chaos scrape failed: {}", scrape.body);
    let samples = parse_exposition(&scrape.body).expect("chaos exposition parses");
    let worker_panics_total: u64 = samples
        .iter()
        .filter(|s| s.name == "er_serve_worker_panics_total")
        .map(|s| s.value as u64)
        .sum();
    let injected = injected_shard_panics + injected_batcher_panics;
    let panics_reconciled = worker_panics_total == injected && injected > 0;
    assert!(
        panics_reconciled,
        "er_serve_worker_panics_total {worker_panics_total} != {injected} injected panics"
    );
    let deadline_rejected: u64 = samples
        .iter()
        .filter(|s| {
            s.name == "er_serve_rejected_total" && s.labels.iter().any(|(k, v)| k == "cause" && v == "deadline")
        })
        .map(|s| s.value as u64)
        .sum();
    assert_eq!(
        deadline_rejected, deadline_504s,
        "rejected{{cause=\"deadline\"}} must equal the tranche's 504s"
    );
    server.shutdown();
    std::panic::set_hook(default_hook);

    println!(
        "frontend chaos: {requests} requests, 0 severed, {injected} injected panics reconciled, \
         {retried_requests} retried, {reloads_refused} reloads refused (version pinned at 1), \
         {deadline_504s} deadline 504s shed in {shed_elapsed:?}"
    );
    ChaosBench {
        fault_spec,
        requests,
        severed_connections: severed,
        zero_severed_connections,
        retried_requests,
        injected_shard_panics,
        injected_batcher_panics,
        worker_panics_total,
        panics_reconciled,
        bit_exact_across_restarts: bit_exact,
        reloads_refused,
        old_version_served_throughout,
        deadline_504s,
        deadline_shedding_bounds_p99,
        latency,
    }
}

/// The tracing phase: replay the identical stream against a tracing-off
/// control and a tracing-on server whose ring retains every trace, then
/// reconcile the span timelines three ways — counts (committed `/score`
/// traces == replayed requests == `er_serve_score_requests_total`), nesting
/// (every stage span ends inside its request's total) and bracketing
/// (trace-total percentiles sit at or below the client-measured socket
/// percentiles) — and snapshot the Chrome trace-event export.
fn tracing_bench(
    engine: &ScoringEngine,
    stream: &[ScoreRequest],
    clients: usize,
    threads: usize,
    expected: &[f64],
) -> TracingBench {
    let base_config = ServerConfig {
        queue_capacity: 16,
        ..ServerConfig::default()
    };
    let run = |label: &str, trace_capacity: usize| -> (FrontendRun, Option<ScoreServer>) {
        let executor = Arc::new(ReloadableExecutor::new(
            engine.clone(),
            ServeConfig::default().with_threads(threads),
        ));
        let server = ScoreServer::start(
            executor,
            ServerConfig {
                trace_capacity,
                ..base_config.clone()
            },
        )
        .expect("bind tracing-phase score server");
        let progress = AtomicUsize::new(0);
        let outcome = run_socket_replay(server.local_addr(), stream, clients, expected, expected, &progress);
        assert_eq!(outcome.non_2xx, 0, "tracing {label} replay must be all-2xx");
        assert!(outcome.bit_exact, "tracing {label} socket scores diverged");
        println!(
            "frontend replay (tracing {label}): {:>10.0} req/s  p50 {:>7.1}µs  p95 {:>7.1}µs  p99 {:>7.1}µs",
            outcome.throughput_rps, outcome.latency.p50_us, outcome.latency.p95_us, outcome.latency.p99_us
        );
        let frontend_run = FrontendRun {
            clients,
            requests: stream.len(),
            elapsed_secs: outcome.elapsed_secs,
            throughput_rps: outcome.throughput_rps,
            latency: outcome.latency,
            non_2xx: outcome.non_2xx,
            bit_exact: outcome.bit_exact,
        };
        (frontend_run, Some(server))
    };

    println!();
    // Control first, so the tracing-on series cannot inherit its warmup.
    let (replay_trace_off, control) = run("OFF control", 0);
    control.expect("control server").shutdown();

    // Retain everything: with capacity ≥ 2 × requests the ring never wraps,
    // so the reconciliations below see every request, not a survivor set.
    let trace_capacity = stream.len() * 2;
    let (replay_trace_on, server) = run("ON", trace_capacity);
    let server = server.expect("tracing-on server");
    let tracing_on_relative_throughput = replay_trace_on.throughput_rps / replay_trace_off.throughput_rps.max(1e-9);
    println!("frontend tracing on/off throughput ratio: {tracing_on_relative_throughput:.3}");

    // --- reconciliation: counts --------------------------------------------
    let tracer = server.tracer().expect("tracing-on server has a tracer");
    let traces = tracer.snapshot();
    let score_traces: Vec<_> = traces
        .iter()
        .filter(|t| t.route == "/score" && t.status == 200)
        .collect();
    let committed_score_traces = score_traces.len() as u64;
    let mut conn = TcpStream::connect(server.local_addr()).expect("frontend: connect for tracing scrape");
    let scrape = http_roundtrip(&mut conn, "GET", "/metrics", None).expect("frontend: tracing scrape");
    assert_eq!(scrape.status, 200, "tracing scrape failed: {}", scrape.body);
    let samples = parse_exposition(&scrape.body).expect("tracing-phase exposition parses");
    let score_requests_total: u64 = samples
        .iter()
        .filter(|s| s.name == "er_serve_score_requests_total")
        .map(|s| s.value as u64)
        .sum();
    let span_counts_match =
        committed_score_traces == stream.len() as u64 && score_requests_total == stream.len() as u64;
    assert!(
        span_counts_match,
        "span-count reconciliation failed: {} committed /score traces, \
         er_serve_score_requests_total {}, {} replayed requests",
        committed_score_traces,
        score_requests_total,
        stream.len()
    );

    // --- reconciliation: span nesting and stage coverage -------------------
    // Offsets are rounded to whole microseconds independently, so a span's
    // end may exceed the trace's end by a hair of rounding.
    const ROUNDING_SLACK_US: u64 = 2;
    let mut spans_nest_within_totals = true;
    let mut stage_taxonomy_complete = true;
    for trace in &score_traces {
        let trace_end = trace.start_us + trace.total_us + ROUNDING_SLACK_US;
        for span in &trace.spans {
            spans_nest_within_totals &= span.start_us + span.dur_us <= trace_end && span.start_us >= trace.start_us;
        }
        for stage in [Stage::Parse, Stage::Score, Stage::Serialize, Stage::Write] {
            stage_taxonomy_complete &= trace.spans.iter().any(|s| s.stage == stage);
        }
    }
    assert!(
        spans_nest_within_totals,
        "a stage span ends outside its request's own timeline"
    );
    assert!(
        stage_taxonomy_complete,
        "a scored request is missing part of the parse/score/serialize/write taxonomy"
    );

    // --- reconciliation: totals bracket the replay -------------------------
    // The client measured request-write → response-parsed; the server's trace
    // covers parse → write inside that window, so at every percentile the
    // trace total must sit at or below the socket measurement (+wire slack).
    let mut totals_ns: Vec<u64> = score_traces.iter().map(|t| t.total_us * 1_000).collect();
    let trace_latency = summarize_latencies(&mut totals_ns);
    let slack_us = PERCENTILE_SLACK_SECS * 1e6;
    let mut totals_bracket_replay = true;
    for (label, server_us, client_us) in [
        ("p50", trace_latency.p50_us, replay_trace_on.latency.p50_us),
        ("p95", trace_latency.p95_us, replay_trace_on.latency.p95_us),
        ("p99", trace_latency.p99_us, replay_trace_on.latency.p99_us),
    ] {
        let ok = server_us <= client_us + slack_us;
        println!(
            "frontend tracing: {label} trace total {server_us:.1}µs vs socket {client_us:.1}µs — {}",
            if ok { "bracketed" } else { "DIVERGED" }
        );
        totals_bracket_replay &= ok;
    }
    assert!(
        totals_bracket_replay,
        "summed stage timelines exceed the client-measured socket latency"
    );

    // --- Chrome trace-event export -----------------------------------------
    let export = http_roundtrip(&mut conn, "GET", "/debug/traces", None).expect("frontend: /debug/traces round trip");
    assert_eq!(export.status, 200, "/debug/traces failed: {}", export.body);
    let doc = serde::json::parse(&export.body).unwrap_or_else(|e| panic!("/debug/traces body is not valid JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .expect("traceEvents array present");
    let chrome_export_parsed = !events.is_empty();
    assert!(chrome_export_parsed, "Chrome export retained no events");
    let snapshot_path =
        std::env::var("SERVE_BENCH_TRACE_SNAPSHOT").unwrap_or_else(|_| "out/trace-snapshot.json".into());
    if let Some(parent) = Path::new(&snapshot_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create trace snapshot directory");
        }
    }
    std::fs::write(&snapshot_path, &export.body).expect("write trace snapshot");
    println!(
        "frontend tracing: {} traces retained, {} Chrome events, snapshot at {snapshot_path}",
        traces.len(),
        events.len()
    );
    server.shutdown();

    TracingBench {
        trace_capacity,
        replay_trace_off,
        replay_trace_on,
        tracing_on_relative_throughput,
        committed_score_traces,
        span_counts_match,
        spans_nest_within_totals,
        stage_taxonomy_complete,
        totals_bracket_replay,
        trace_latency,
        chrome_export_parsed,
        snapshot_path,
    }
}

/// Absolute slack when bracketing a socket-measured percentile inside a
/// server-side histogram bucket range: the client round trip includes
/// syscall and wire time the server-side `request_duration` histogram
/// cannot see.
const PERCENTILE_SLACK_SECS: f64 = 500e-6;

/// Scrapes `GET /metrics`, writes the raw exposition to
/// `SERVE_BENCH_METRICS_SNAPSHOT` (default `out/metrics-snapshot.prom`) for
/// the smoke tiers, and asserts both reconciliations.
fn scrape_and_reconcile(addr: SocketAddr, replay: &FrontendRun) -> FrontendMetrics {
    let mut conn = TcpStream::connect(addr).expect("frontend: connect for /metrics");
    let response = http_roundtrip(&mut conn, "GET", "/metrics", None).expect("frontend: scrape round trip");
    assert_eq!(response.status, 200, "scrape failed: {}", response.body);
    let snapshot_path =
        std::env::var("SERVE_BENCH_METRICS_SNAPSHOT").unwrap_or_else(|_| "out/metrics-snapshot.prom".into());
    if let Some(parent) = Path::new(&snapshot_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create snapshot directory");
        }
    }
    std::fs::write(&snapshot_path, &response.body).expect("write metrics snapshot");

    let samples = parse_exposition(&response.body)
        .unwrap_or_else(|e| panic!("scraped exposition does not parse: {e}\n{}", response.body));
    let score_requests_total: u64 = samples
        .iter()
        .filter(|s| s.name == "er_serve_score_requests_total")
        .map(|s| s.value as u64)
        .sum();
    let reconciles_with_replay = score_requests_total == replay.requests as u64;
    assert!(
        reconciles_with_replay,
        "er_serve_score_requests_total {} != replayed requests {}",
        score_requests_total, replay.requests
    );

    // The replay measured each socket round trip itself; the histogram saw
    // the server-side slice of the same requests. Each measured percentile
    // must land inside the histogram's quantile bucket, widened by one
    // bucket each side plus wire-time slack.
    let histogram = extract_histogram(&samples, "er_serve_request_duration_seconds", &[("route", "/score")])
        .expect("request_duration{route=\"/score\"} histogram present and consistent");
    assert_eq!(histogram.count, replay.requests as u64, "histogram count mismatch");
    let mut histogram_reconciled = true;
    for (q, measured_us) in [
        (0.50, replay.latency.p50_us),
        (0.95, replay.latency.p95_us),
        (0.99, replay.latency.p99_us),
    ] {
        let (lo, hi) = histogram.quantile_bounds(q, 1).expect("non-empty histogram");
        let measured = measured_us * 1e-6;
        let ok = measured >= lo - PERCENTILE_SLACK_SECS && measured <= hi + PERCENTILE_SLACK_SECS;
        println!(
            "frontend scrape: p{:.0} histogram bucket [{:.1}µs, {:.1}µs] vs replay {measured_us:.1}µs — {}",
            q * 100.0,
            lo * 1e6,
            hi * 1e6,
            if ok { "reconciled" } else { "DIVERGED" }
        );
        histogram_reconciled &= ok;
    }
    assert!(
        histogram_reconciled,
        "histogram-derived percentiles do not bracket the replay's own measurements"
    );
    println!(
        "frontend scrape: exposition parsed ({} samples), score_requests_total {score_requests_total} reconciled, snapshot at {snapshot_path}",
        samples.len()
    );
    FrontendMetrics {
        snapshot_path,
        scrape_parsed: true,
        score_requests_total,
        reconciles_with_replay,
        histogram_reconciled,
    }
}

/// The high-connection-count series: see [`ConnectionBench`]. Each entry
/// opens `n` keep-alive connections (probing accept-to-first-byte on the
/// way in), holds them idle while a stripe of them serves `/score` traffic,
/// then sweeps every connection with a final probe. Any transport error or
/// non-2xx anywhere in an entry fails the bench outright.
fn connection_series_bench(
    engine: &ScoringEngine,
    stream: &[ScoreRequest],
    threads: usize,
    expected_v1: &[f64],
) -> ConnectionBench {
    let series: Vec<usize> = std::env::var("SERVE_BENCH_CONNECTIONS")
        .unwrap_or_else(|_| "256,1024".into())
        .split(',')
        .filter_map(|n| n.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    let score_requests = er_bench::env_usize("SERVE_BENCH_CONNECTION_SCORES", 64).clamp(1, stream.len());
    let max_connections = series.iter().copied().max().unwrap_or(0) + 64;
    let executor = Arc::new(ReloadableExecutor::new(
        engine.clone(),
        ServeConfig::default().with_threads(threads),
    ));
    let server = ScoreServer::start(
        Arc::clone(&executor),
        ServerConfig {
            max_connections,
            trace_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind connection-series score server");
    let addr = server.local_addr();
    println!();
    println!("-- HTTP front-end connection series on {addr} (cap {max_connections}) --");

    let mut entries = Vec::with_capacity(series.len());
    for &n in &series {
        // Open n keep-alive connections, timing connect() → first response
        // byte of an immediate /healthz probe on each (peek leaves the byte
        // for the normal response reader).
        let mut conns: Vec<TcpStream> = Vec::with_capacity(n);
        let mut accept_ns: Vec<u64> = Vec::with_capacity(n);
        let mut all_2xx = true;
        let probe = b"GET /healthz HTTP/1.1\r\nHost: er-serve\r\nContent-Length: 0\r\n\r\n";
        for i in 0..n {
            use std::io::Write as _;
            let t0 = Instant::now();
            let mut conn = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("connections[{n}]: connect {i} failed under load: {e}"));
            conn.write_all(probe)
                .unwrap_or_else(|e| panic!("connections[{n}]: probe write {i} failed: {e}"));
            let mut first = [0u8; 1];
            let got = conn
                .peek(&mut first)
                .unwrap_or_else(|e| panic!("connections[{n}]: probe peek {i} failed: {e}"));
            assert_eq!(got, 1, "connections[{n}]: probe {i} saw EOF before the response");
            accept_ns.push(t0.elapsed().as_nanos() as u64);
            let response =
                read_http_response(&mut conn).unwrap_or_else(|e| panic!("connections[{n}]: probe read {i}: {e}"));
            all_2xx &= response.status == 200;
            conns.push(conn);
        }

        // With the whole set parked, drive /score round trips across a
        // stripe of the connections (every stride-th one), bit-comparing
        // each response. The rest stay idle — the regime under test.
        let stride = (n / score_requests).max(1);
        let mut score_ns: Vec<u64> = Vec::with_capacity(score_requests);
        let mut bit_exact = true;
        for (k, request) in stream[..score_requests].iter().enumerate() {
            let conn = &mut conns[(k * stride) % n];
            let body = serde::json::to_string(request);
            let t0 = Instant::now();
            let response = http_roundtrip(conn, "POST", "/score", Some(&body))
                .unwrap_or_else(|e| panic!("connections[{n}]: score {k} severed: {e}"));
            score_ns.push(t0.elapsed().as_nanos() as u64);
            all_2xx &= response.status == 200;
            if response.status == 200 {
                let (_, scores) = parse_score_response(&response.body).expect("connections: malformed score body");
                bit_exact &= scores.len() == 1 && scores[0].to_bits() == expected_v1[k].to_bits();
            }
        }

        // Closing sweep: every single connection must still answer — the
        // loop held all n alive through the entry, none severed.
        let mut severed = 0u64;
        for (i, conn) in conns.iter_mut().enumerate() {
            match http_roundtrip(conn, "GET", "/healthz", None) {
                Ok(response) => all_2xx &= response.status == 200,
                Err(e) => {
                    severed += 1;
                    eprintln!("connections[{n}]: sweep {i} severed: {e}");
                }
            }
        }
        let entry = ConnectionSeriesEntry {
            connections: n,
            accept_to_first_byte: summarize_latencies(&mut accept_ns),
            score_requests,
            score_latency: summarize_latencies(&mut score_ns),
            all_2xx,
            zero_severed: severed == 0,
            bit_exact,
        };
        assert!(entry.zero_severed, "connections[{n}]: {severed} connections severed");
        assert!(entry.all_2xx, "connections[{n}]: non-2xx response in the series");
        assert!(entry.bit_exact, "connections[{n}]: score drifted under connection load");
        println!(
            "frontend connections[{n}]: accept→first-byte p50 {:>7.1}µs p95 {:>7.1}µs p99 {:>7.1}µs  \
             {score_requests} scores p99 {:>7.1}µs  swept {n}, 0 severed",
            entry.accept_to_first_byte.p50_us,
            entry.accept_to_first_byte.p95_us,
            entry.accept_to_first_byte.p99_us,
            entry.score_latency.p99_us,
        );
        entries.push(entry);
    }
    server.shutdown();
    ConnectionBench {
        max_connections,
        series: entries,
    }
}

/// Proves the per-client token bucket over a raw socket: client `rl-a`
/// exhausts its burst and must bounce with 429 + `X-RateLimit-*`; client
/// `rl-b` (same peer IP, its own `X-Client-Id`) is untouched.
fn rate_limit_smoke(engine: &ScoringEngine, sample: &ScoreRequest, threads: usize) -> RateLimitSmoke {
    let config = RateLimitConfig::new(0.5, 4.0);
    let executor = Arc::new(ReloadableExecutor::new(
        engine.clone(),
        ServeConfig::default().with_threads(threads),
    ));
    let server = ScoreServer::start(
        executor,
        ServerConfig {
            rate_limit: Some(config),
            ..ServerConfig::default()
        },
    )
    .expect("bind rate-limited score server");
    let mut conn = TcpStream::connect(server.local_addr()).expect("frontend: connect for rate-limit smoke");
    let body = serde::json::to_string(sample);
    let a = [("X-Client-Id", "rl-a")];
    for i in 0..config.burst as usize {
        let ok = http_roundtrip_with_headers(&mut conn, "POST", "/score", Some(&body), &a)
            .expect("frontend: rate-limit smoke round trip");
        assert_eq!(ok.status, 200, "burst request {i} should pass: {}", ok.body);
    }
    let limited = http_roundtrip_with_headers(&mut conn, "POST", "/score", Some(&body), &a)
        .expect("frontend: over-budget round trip");
    let limited_429 = limited.status == 429;
    let headers_present = limited.header("x-ratelimit-limit").is_some()
        && limited.header("x-ratelimit-remaining") == Some("0")
        && limited.header("x-ratelimit-reset").is_some()
        && limited.header("retry-after").is_some_and(|v| v != "0");
    assert!(
        limited_429 && headers_present,
        "over-budget client must get 429 + X-RateLimit-* headers, got {} {:?}",
        limited.status,
        limited.headers
    );
    let b = [("X-Client-Id", "rl-b")];
    let unaffected = http_roundtrip_with_headers(&mut conn, "POST", "/score", Some(&body), &b)
        .expect("frontend: second-client round trip");
    let second_client_unaffected = unaffected.status == 200;
    assert!(
        second_client_unaffected,
        "a second client must not inherit the first client's exhausted bucket: {} {}",
        unaffected.status, unaffected.body
    );
    println!(
        "frontend rate limit: burst {} exhausted → 429 with X-RateLimit-* headers; second client unaffected",
        config.burst
    );
    server.shutdown();
    RateLimitSmoke {
        rate_per_sec: config.rate_per_sec,
        burst: config.burst,
        limited_429,
        headers_present,
        second_client_unaffected,
    }
}

// ---------------------------------------------------------------------------
// Multi-process gateway phase
// ---------------------------------------------------------------------------

/// One spawned `er-serve` backend process; killed on drop.
struct BackendProcess {
    child: std::process::Child,
    addr: SocketAddr,
}

impl Drop for BackendProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The `er-serve` binary next to this benchmark's own executable (both land
/// in the same cargo target directory when the workspace binaries are
/// built).
fn er_serve_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let mut candidates = vec![dir.join("er-serve")];
    if let Some(parent) = dir.parent() {
        candidates.push(parent.join("er-serve"));
    }
    candidates.into_iter().find(|c| c.is_file())
}

/// Spawns one backend process serving `artifact` on an ephemeral port and
/// scrapes its `LISTENING <addr>` banner for the bound address.
fn spawn_backend(binary: &Path, artifact: &Path, fault_plan: Option<&str>) -> BackendProcess {
    use std::io::BufRead;
    let mut command = std::process::Command::new(binary);
    command
        .arg("--artifact")
        .arg(artifact)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--threads")
        .arg("1")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .env_remove("ER_FAULT_PLAN");
    if let Some(plan) = fault_plan {
        command.env("ER_FAULT_PLAN", plan);
    }
    let mut child = command
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", binary.display()));
    let stdout = child.stdout.take().expect("piped backend stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("read backend banner");
    let addr: SocketAddr = banner
        .strip_prefix("LISTENING ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unexpected backend banner: {banner:?}"));
    // Keep draining the pipe so a chatty backend can never block on it.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    BackendProcess { child, addr }
}

fn gateway_config(backends: &[BackendProcess], baseline: &Path) -> GatewayConfig {
    GatewayConfig {
        backends: backends.iter().map(|b| b.addr).collect(),
        baseline_artifact: baseline.display().to_string(),
        hedge_after: None,
        health_interval: Duration::from_millis(200),
        connect_timeout: Duration::from_secs(2),
        upstream_timeout: Duration::from_secs(10),
        ..GatewayConfig::default()
    }
}

/// Drives one canary cycle: `/reload` the candidate onto the gateway's
/// canary backends, then replay traffic until the controller's verdict
/// (promotion or rollback) fires, bit-comparing every served score against
/// the baseline engine. Returns the attestation block.
fn gateway_canary_cycle(
    gateway: &GatewayServer,
    candidate: &Path,
    stream: &[ScoreRequest],
    expected: &[f64],
) -> GatewayCanary {
    let mut conn = TcpStream::connect(gateway.local_addr()).expect("gateway: connect for reload");
    let body = format!(
        "{{\"path\": {}}}",
        serde::json::to_string(&candidate.display().to_string())
    );
    let reload = http_roundtrip(&mut conn, "POST", "/reload", Some(&body)).expect("gateway: reload round trip");
    assert_eq!(reload.status, 200, "gateway reload refused: {}", reload.body);

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut requests = 0usize;
    let mut non_2xx = 0u64;
    let mut bit_exact = true;
    let stats = loop {
        let request = &stream[requests % stream.len()];
        let expected_score = expected[requests % stream.len()];
        let body = serde::json::to_string(request);
        let response =
            http_roundtrip(&mut conn, "POST", "/score", Some(&body)).expect("gateway: canary-cycle request severed");
        requests += 1;
        if response.status != 200 {
            non_2xx += 1;
        } else {
            let (_, scores) = parse_score_response(&response.body).expect("gateway: malformed score body");
            if scores.len() != 1 || scores[0].to_bits() != expected_score.to_bits() {
                bit_exact = false;
            }
        }
        let stats = gateway.stats();
        if stats.canary.promotions >= 1 || stats.canary.rollbacks >= 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "gateway canary verdict never fired after {requests} requests: {:?}",
            stats.canary
        );
    };
    assert_eq!(stats.canary.phase, "stable", "a verdict must land back in Stable");
    let digests: Vec<&str> = stats.backends.iter().map(|b| b.model_digest.as_str()).collect();
    let digests_converged = !digests.is_empty() && !digests[0].is_empty() && digests.iter().all(|d| *d == digests[0]);
    GatewayCanary {
        candidate_path: candidate.display().to_string(),
        requests,
        promotions: stats.canary.promotions,
        rollbacks: stats.canary.rollbacks,
        promotion_fired: stats.canary.promotions >= 1,
        rollback_fired: stats.canary.rollbacks >= 1,
        non_2xx,
        zero_severed: non_2xx == 0,
        bit_exact,
        digests_converged,
    }
}

/// The multi-process gateway phase: spawns real `er-serve` child processes
/// and routes through an in-process [`GatewayServer`] (the gateway *binary*
/// is the same library entry; `scripts/kick-tires.sh` exercises it as a
/// separate process). Four sub-phases, each on fresh backends:
///
/// 1. **Scaling series** — the identical closed-loop replay against 1 and 2
///    backends; aggregate throughput must scale with backend count.
/// 2. **Hedging** — one backend stalls every score via `ER_FAULT_PLAN`;
///    requests aimed at it must be won by the hedge, bit-exactly.
/// 3. **Canary promotion** — an equivalent candidate walks shadow → serving
///    → automatic promotion with zero errors.
/// 4. **Canary rollback** — a divergent candidate is caught by shadow
///    comparison and rolled back automatically, zero severed connections.
fn gateway_bench(
    engine: &ScoringEngine,
    artifact_v1_path: &Path,
    stream: &[ScoreRequest],
    clients: usize,
) -> Option<GatewayBench> {
    let Some(binary) = er_serve_binary() else {
        println!();
        println!(
            "gateway phase SKIPPED: er-serve binary not found next to this executable \
             (build it with `cargo build --release -p er-serve` first)"
        );
        return None;
    };
    let expected = engine.score_batch(stream);
    println!();
    println!(
        "-- gateway phase ({} requests, {clients} clients, backend binary {}) --",
        stream.len(),
        binary.display()
    );

    // Phase 1: scaling series.
    let mut series = Vec::new();
    for n in [1usize, 2] {
        let backends: Vec<BackendProcess> = (0..n).map(|_| spawn_backend(&binary, artifact_v1_path, None)).collect();
        let gateway = GatewayServer::start(gateway_config(&backends, artifact_v1_path)).expect("start gateway");
        let progress = AtomicUsize::new(0);
        let outcome = run_socket_replay(gateway.local_addr(), stream, clients, &expected, &expected, &progress);
        assert_eq!(
            outcome.non_2xx, 0,
            "gateway scaling replay ({n} backends) must be all-2xx"
        );
        assert!(
            outcome.bit_exact,
            "gateway relay diverged from in-process scoring ({n} backends)"
        );
        println!(
            "gateway series[{n} backend{}]: {:>10.0} req/s  p50 {:>7.1}µs  p99 {:>7.1}µs",
            if n == 1 { "" } else { "s" },
            outcome.throughput_rps,
            outcome.latency.p50_us,
            outcome.latency.p99_us
        );
        series.push(GatewayScalingEntry {
            backends: n,
            requests: stream.len(),
            clients,
            elapsed_secs: outcome.elapsed_secs,
            throughput_rps: outcome.throughput_rps,
            latency: outcome.latency,
            non_2xx: outcome.non_2xx,
            all_2xx: outcome.non_2xx == 0,
            bit_exact: outcome.bit_exact,
        });
        gateway.shutdown();
    }
    let scaling_2x = series[1].throughput_rps / series[0].throughput_rps.max(1e-9);
    println!("gateway scaling 2 backends / 1 backend: {scaling_2x:.2}x");

    // Phase 2: hedging against an injected straggler. Backend 1 stalls its
    // first 16 scores; requests whose ring primary is backend 1 must be
    // answered by the hedge to backend 0 instead.
    let hedging = {
        let fault_spec = "seed=7; score_stall@0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15:300ms".to_string();
        let hedge_after_ms = 25u64;
        let backends = vec![
            spawn_backend(&binary, artifact_v1_path, None),
            spawn_backend(&binary, artifact_v1_path, Some(&fault_spec)),
        ];
        let mut config = gateway_config(&backends, artifact_v1_path);
        config.hedge_after = Some(Duration::from_millis(hedge_after_ms));
        let gateway = GatewayServer::start(config).expect("start hedging gateway");
        let ring = HashRing::new(2, GatewayConfig::default().vnodes);
        let stalled: Vec<usize> = (0..stream.len())
            .filter(|&i| ring.route(stream[i].pair_id, |_| true) == Some(1))
            .take(8)
            .collect();
        assert!(
            !stalled.is_empty(),
            "no request in the stream routes to the stalled backend"
        );
        let mut conn = TcpStream::connect(gateway.local_addr()).expect("gateway: hedging connect");
        let mut all_2xx = true;
        let mut bit_exact = true;
        for &i in &stalled {
            let body = serde::json::to_string(&stream[i]);
            let response =
                http_roundtrip(&mut conn, "POST", "/score", Some(&body)).expect("gateway: hedged request severed");
            all_2xx &= response.status == 200;
            if response.status == 200 {
                let (_, scores) = parse_score_response(&response.body).expect("gateway: malformed hedged body");
                bit_exact &= scores.len() == 1 && scores[0].to_bits() == expected[i].to_bits();
            }
        }
        let stats = gateway.stats();
        let hedge_fired = stats.hedges_won >= 1;
        assert!(all_2xx, "a hedged request failed");
        assert!(bit_exact, "a hedged score diverged");
        assert!(
            hedge_fired,
            "no hedge won against a backend stalling every score: {stats:?}"
        );
        println!(
            "gateway hedging: {} stalled requests, {} hedges launched, {} won",
            stalled.len(),
            stats.hedges_launched,
            stats.hedges_won
        );
        GatewayHedging {
            fault_spec,
            hedge_after_ms,
            requests: stalled.len(),
            hedges_launched: stats.hedges_launched,
            hedges_won: stats.hedges_won,
            hedge_fired,
            all_2xx,
            bit_exact,
        }
    };

    // Phase 3 + 4: the canary cycles, each on a fresh 2-backend fleet with
    // backend 1 designated canary and a fast verdict (8 comparisons).
    let canary_fleet = || -> (Vec<BackendProcess>, GatewayServer) {
        let backends: Vec<BackendProcess> = (0..2).map(|_| spawn_backend(&binary, artifact_v1_path, None)).collect();
        let mut config = gateway_config(&backends, artifact_v1_path);
        config.canary_backends = vec![1];
        config.canary = CanaryConfig {
            shadow_sample_bp: 10_000,
            min_samples: 8,
            divergence_threshold: 1e-9,
            ladder: vec![2_000],
            auto_advance: true,
        };
        let gateway = GatewayServer::start(config).expect("start canary gateway");
        (backends, gateway)
    };

    // An equivalent candidate: the served model re-exported under a new
    // path — identical parameters, identical digest, must promote.
    let promote_path = artifact_v1_path.with_file_name("serve_model_gateway_promote.json");
    ModelArtifact::new(engine.model().clone())
        .save(&promote_path)
        .expect("save equivalent candidate");
    let canary_promotion = {
        let (_backends, gateway) = canary_fleet();
        let cycle = gateway_canary_cycle(&gateway, &promote_path, stream, &expected);
        assert!(cycle.promotion_fired, "equivalent candidate must promote: {cycle:?}");
        assert!(
            cycle.zero_severed && cycle.bit_exact,
            "promotion cycle degraded traffic: {cycle:?}"
        );
        assert!(
            cycle.digests_converged,
            "fleet digests diverged after promotion: {cycle:?}"
        );
        println!(
            "gateway canary promotion: fired after {} requests, zero errors, digests converged",
            cycle.requests
        );
        cycle
    };

    // A divergent candidate: the retrained variant — shadow comparison must
    // catch it and roll the canary back without touching live traffic.
    let rollback_path = artifact_v1_path.with_file_name("serve_model_gateway_divergent.json");
    ModelArtifact::new(retrained_variant(engine.model()))
        .save(&rollback_path)
        .expect("save divergent candidate");
    let canary_rollback = {
        let (_backends, gateway) = canary_fleet();
        let cycle = gateway_canary_cycle(&gateway, &rollback_path, stream, &expected);
        assert!(cycle.rollback_fired, "divergent candidate must roll back: {cycle:?}");
        assert!(
            !cycle.promotion_fired,
            "a divergent candidate must never promote: {cycle:?}"
        );
        assert!(
            cycle.zero_severed && cycle.bit_exact,
            "rollback cycle degraded traffic: {cycle:?}"
        );
        assert!(
            cycle.digests_converged,
            "canary backend still diverged after rollback: {cycle:?}"
        );
        println!(
            "gateway canary rollback: fired after {} requests, zero severed connections, fleet restored",
            cycle.requests
        );
        cycle
    };

    Some(GatewayBench {
        multi_process: true,
        backend_binary: binary.display().to_string(),
        series,
        scaling_2x,
        hedging,
        canary_promotion,
        canary_rollback,
    })
}
