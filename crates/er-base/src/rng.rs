//! Deterministic random-number helpers.
//!
//! Every stochastic step of the reproduction (dataset generation, splits,
//! classifier initialization, bootstrap sampling, risk-model training) derives
//! its RNG from an explicit seed so experiments can be repeated exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a seeded [`StdRng`].
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Uses a SplitMix64-style mix so that nearby `(seed, stream)` pairs produce
/// uncorrelated child seeds; the exact constants follow the public-domain
/// SplitMix64 reference.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a seeded RNG for a named sub-stream of an experiment.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    seeded(derive_seed(seed, stream))
}

/// Samples from a standard normal using the Box–Muller transform.
///
/// Kept here (instead of pulling `rand_distr`) to stay within the allowed
/// dependency set.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples from `N(mean, std^2)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * sample_standard_normal(rng)
}

/// Samples an index from a discrete distribution given by non-negative weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn sample_weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn substreams_reproduce() {
        let a: Vec<u32> = (0..5).map(|_| substream(9, 3).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| substream(9, 3).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn normal_sampling_moments() {
        let mut rng = seeded(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(5);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_empty_panics() {
        let mut rng = seeded(1);
        sample_weighted_index(&mut rng, &[]);
    }
}
