//! Risk-model training: pairwise learning-to-rank with analytic gradients
//! (Section 6.2 of the paper).
//!
//! The trainer tunes the rule weights, the rule RSDs, the influence-function
//! shape `(α, β)` and the classifier-output bucket RSDs so that mislabeled
//! pairs are ranked above correctly labeled ones.  The loss is the pairwise
//! cross entropy of Eq. 13–15; the paper optimizes it with gradient descent on
//! TensorFlow — here the gradients are derived analytically (portfolio
//! aggregation → differentiable VaR score → RankNet-style loss) and verified
//! against finite differences in the test suite.
//!
//! # The factorized hot path
//!
//! The naive epoch evaluates the model four times per ranking pair (twice for
//! the loss, twice for the gradient), making it O(rank_pairs × features) with
//! a component-vector allocation per evaluation.  Because the pairwise loss
//! is a function of per-input scores only, its gradient *factorizes*:
//!
//! ```text
//! ∂L/∂θ = Σ_i λ_i · ∂γ_i/∂θ,   λ_i = Σ_{(a,b): a=i} d_ab − Σ_{(a,b): b=i} d_ab,
//! d_ab = (p_ab − target_ab) / |pairs|
//! ```
//!
//! so one epoch needs exactly one forward evaluation and (at most) one
//! gradient evaluation per *input*, plus an O(rank_pairs) scalar sweep.
//! [`EpochScratch`] implements the three passes with reusable buffers — after
//! the first epoch the trainer performs no heap allocation — and parallelizes
//! the forward and gradient passes over a persistent [`er_pool::WorkerPool`]
//! living in the scratch, so worker threads are spawned once per training
//! run (not once per epoch pass, as the earlier `std::thread::scope`
//! implementation did).  The
//! gradient is accumulated into fixed-size per-chunk shards that are reduced
//! in chunk order, so training is bit-identical for every thread count.
//!
//! Per-input portfolios are built in structure-of-arrays
//! [`ComponentBlock`]s and aggregated through the canonical chunked SoA
//! kernel (see [`crate::portfolio`]), which is bit-identical to the AoS
//! reference layout — so the factorization *and* the layout change are both
//! verified against [`loss_and_gradient`], which deliberately stays on the
//! AoS path.
//!
//! [`loss_and_gradient`] keeps the per-pair reference implementation; tests
//! (and `train_bench`) verify the factorized epoch against it.

use crate::feature::PairRiskInput;
use crate::model::LearnRiskModel;
use crate::portfolio::{
    aggregate, component_gradients, ComponentBlock, ComponentGradients, GradientBlock, PortfolioComponent,
};
use crate::var::{training_risk_gradients, training_risk_score};
use er_base::rng::substream;
use er_base::stats::{clamp_prob, safe_ln, sigmoid};
use er_pool::WorkerPool;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Hyper-parameters of risk-model training.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RiskTrainConfig {
    /// Number of optimization epochs (the paper uses 1000).
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L1 regularization on rule weights.
    pub l1: f64,
    /// L2 regularization on rule weights.
    pub l2: f64,
    /// Maximum number of ranking pairs sampled per epoch.
    pub max_rank_pairs: usize,
    /// Whether to use Adam (otherwise plain gradient descent, as in Eq. 16-17).
    pub use_adam: bool,
    /// Random seed for pair sampling.
    pub seed: u64,
}

impl Default for RiskTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 0.02,
            l1: 1e-4,
            l2: 1e-3,
            max_rank_pairs: 4000,
            use_adam: true,
            seed: 23,
        }
    }
}

/// Flat parameter vector layout:
/// `[rule_weights | rule_rsd | alpha | beta | output_rsd]`.
pub fn flatten_params(model: &LearnRiskModel) -> Vec<f64> {
    let mut out = Vec::with_capacity(model.param_count());
    flatten_params_into(model, &mut out);
    out
}

/// [`flatten_params`] into a caller-owned buffer (cleared first), so the
/// per-epoch projection round trip allocates nothing after warm-up.
pub fn flatten_params_into(model: &LearnRiskModel, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(model.param_count());
    out.extend_from_slice(&model.rule_weights);
    out.extend_from_slice(&model.rule_rsd);
    out.push(model.influence.alpha);
    out.push(model.influence.beta);
    out.extend_from_slice(&model.output_rsd);
}

/// Writes a flat parameter vector back into the model, projecting every
/// parameter onto its feasible range.
pub fn unflatten_params(model: &mut LearnRiskModel, params: &[f64]) {
    let n = model.features.len();
    let k = model.output_rsd.len();
    assert_eq!(params.len(), 2 * n + 2 + k);
    for (w, &p) in model.rule_weights.iter_mut().zip(&params[..n]) {
        *w = p.clamp(1e-3, 1e3);
    }
    for (r, &p) in model.rule_rsd.iter_mut().zip(&params[n..2 * n]) {
        *r = p.clamp(1e-3, 2.0);
    }
    model.influence.alpha = params[2 * n].clamp(0.05, 2.0);
    model.influence.beta = params[2 * n + 1].clamp(0.0, 100.0);
    for (r, &p) in model.output_rsd.iter_mut().zip(&params[2 * n + 2..]) {
        *r = p.clamp(1e-3, 2.0);
    }
}

/// Scatters `scale · ∂γ/∂θ` of one input into the flat gradient vector,
/// reading each portfolio slot's [`ComponentGradients`] from `term`.
///
/// Shared by the per-pair AoS reference path ([`loss_and_gradient`], where
/// `term` computes per-slot gradients on the fly) and the factorized SoA
/// epoch ([`EpochScratch::gradient_pass`], where `term` reads the bulk
/// [`GradientBlock`]).  The gradient values of the two sources are
/// bit-identical (see `portfolio`), so both paths compute the same per-input
/// derivative with the same operation order.
fn scatter_score_gradient(
    model: &LearnRiskModel,
    input: &PairRiskInput,
    n_components: usize,
    z_theta: f64,
    scale: f64,
    grad: &mut [f64],
    term: impl Fn(usize) -> ComponentGradients,
) {
    let (d_gamma_d_mean, d_gamma_d_std) = training_risk_gradients(input.machine_says_match, z_theta);
    let n = model.features.len();

    // Rule-feature components come first, in the order of `rule_indices`.
    for (slot, &ri) in input.rule_indices.iter().enumerate() {
        let j = ri as usize;
        let g = term(slot);
        // ∂γ/∂w_j
        let d_w = d_gamma_d_mean * g.d_mean_d_weight + d_gamma_d_std * g.d_std_d_weight;
        grad[j] += scale * d_w;
        // σ_j = RSD_j · μ_j  ⇒  ∂γ/∂RSD_j = ∂γ/∂σ_j · μ_j.
        let mu_j = model.features.expectations[j];
        let d_rsd = d_gamma_d_std * g.d_std_d_component_std * mu_j;
        grad[n + j] += scale * d_rsd;
    }

    // Classifier-output component is last.
    let g = term(n_components - 1);
    let p = input.classifier_output.clamp(0.0, 1.0);
    let d_weight = d_gamma_d_mean * g.d_mean_d_weight + d_gamma_d_std * g.d_std_d_weight;
    // α and β act through the influence weight.
    grad[2 * n] += scale * d_weight * model.influence.d_weight_d_alpha(p);
    grad[2 * n + 1] += scale * d_weight * model.influence.d_weight_d_beta();
    // Bucket RSD: σ_cls = RSD_bucket · p.
    let bucket = model.output_bucket(p);
    grad[2 * n + 2 + bucket] += scale * d_gamma_d_std * g.d_std_d_component_std * p;
}

/// The differentiable training risk score γ of one pair, plus its gradient
/// with respect to the flat parameter vector (accumulated into `grad` scaled
/// by `scale`), reusing a caller-owned AoS component buffer — the per-pair
/// *reference* implementation the factorized SoA epoch is verified against.
fn score_with_gradient(
    model: &LearnRiskModel,
    input: &PairRiskInput,
    scale: f64,
    grad: &mut [f64],
    comps: &mut Vec<PortfolioComponent>,
) -> f64 {
    model.components_into(input, comps);
    let agg = aggregate(comps);
    let z = model.z_theta();
    let score = training_risk_score(agg.mean, agg.std(), input.machine_says_match, z);
    if scale != 0.0 {
        scatter_score_gradient(model, input, comps.len(), z, scale, grad, |slot| {
            component_gradients(comps, &agg, slot)
        });
    }
    score
}

/// Adds the L1/L2 penalty on the rule weights to `loss` and `grad` (the paper
/// regularizes the learnable weights to counter overfitting).
fn regularize(model: &LearnRiskModel, config: &RiskTrainConfig, loss: &mut f64, grad: &mut [f64]) {
    let n = model.features.len();
    for (g, &w) in grad.iter_mut().zip(&model.rule_weights).take(n) {
        *loss += config.l1 * w.abs() + config.l2 * w * w;
        *g += config.l1 * w.signum() + 2.0 * config.l2 * w;
    }
}

/// Computes the pairwise ranking loss and its gradient over an explicit list
/// of ordered index pairs `(a, b)` — the per-pair *reference* path, which
/// evaluates the model four times per pair.
///
/// Exposed (rather than private to the trainer) so that tests can verify the
/// analytic gradient against finite differences and the factorized epoch
/// ([`EpochScratch`]) against this implementation; `train_bench` uses it as
/// the old-path-equivalent baseline.
pub fn loss_and_gradient(
    model: &LearnRiskModel,
    inputs: &[PairRiskInput],
    rank_pairs: &[(u32, u32)],
    config: &RiskTrainConfig,
) -> (f64, Vec<f64>) {
    let dim = model.param_count();
    let mut grad = vec![0.0; dim];
    let mut loss = 0.0;
    let mut comps = Vec::new();
    let n_pairs = rank_pairs.len().max(1) as f64;

    for &(a, b) in rank_pairs {
        let ia = &inputs[a as usize];
        let ib = &inputs[b as usize];
        // Scores without gradient first to get the loss weight.
        let gamma_a = score_with_gradient(model, ia, 0.0, &mut grad, &mut comps);
        let gamma_b = score_with_gradient(model, ib, 0.0, &mut grad, &mut comps);
        let p_ab = clamp_prob(sigmoid(gamma_a - gamma_b));
        let target = 0.5 * (1.0 + ia.risk_label as f64 - ib.risk_label as f64);
        loss += -(target * safe_ln(p_ab) + (1.0 - target) * safe_ln(1.0 - p_ab));
        // dL/dγ_a = p_ab - target; dL/dγ_b = -(p_ab - target).
        let d = (p_ab - target) / n_pairs;
        score_with_gradient(model, ia, d, &mut grad, &mut comps);
        score_with_gradient(model, ib, -d, &mut grad, &mut comps);
    }
    loss /= n_pairs;
    regularize(model, config, &mut loss, &mut grad);
    (loss, grad)
}

/// Inputs per gradient-accumulation chunk.  The chunk grid is a function of
/// the input count only — never of the thread count — and chunk shards are
/// reduced in chunk order, which is what makes training bit-identical across
/// thread counts.
const GRAD_CHUNK: usize = 128;

/// Minimum forward-pass inputs per worker before another lane is engaged;
/// below this the fan-out overhead exceeds the scoring work.
const MIN_FORWARD_INPUTS_PER_WORKER: usize = 512;

/// How many pool lanes to actually use for `work_items` units of work.
fn effective_workers(threads: usize, work_items: usize, min_per_worker: usize) -> usize {
    threads.max(1).min(work_items.div_ceil(min_per_worker.max(1))).max(1)
}

/// The scratch's persistent worker pool, (re)built only when a pass first
/// needs more lanes than the current pool carries — across the epochs of one
/// training run this spawns threads at most a handful of times (a high-water
/// mark), where the previous scoped-thread implementation respawned every
/// epoch pass.
fn ensure_pool(slot: &mut Option<WorkerPool>, lanes: usize) -> &WorkerPool {
    if slot.as_ref().is_none_or(|pool| pool.lanes() < lanes) {
        *slot = Some(WorkerPool::new(lanes));
    }
    match slot {
        Some(pool) => pool,
        None => unreachable!("the pool was just installed"),
    }
}

/// Reusable buffers of the factorized training epoch (see the module docs):
/// per-input forward scores, per-input λ coefficients, per-chunk gradient
/// shards and per-worker SoA scratch.  Construct once, reuse across epochs
/// (and across models of the same feature set); after the first epoch no
/// pass allocates.
///
/// Both the forward and the gradient pass build each input's portfolio in a
/// per-worker [`ComponentBlock`] and reduce it through the canonical chunked
/// SoA kernel — bit-identical to the AoS reference path, and (as before)
/// bit-identical across thread counts thanks to the fixed chunk-order shard
/// reduction.
#[derive(Default)]
pub struct EpochScratch {
    /// Forward score γ_i per input.
    scores: Vec<f64>,
    /// λ_i per input (see the module docs).
    lambdas: Vec<f64>,
    /// One flat gradient shard per λ-active fixed-size input chunk.
    chunk_grads: Vec<Vec<f64>>,
    /// One SoA component block per worker thread.
    worker_comps: Vec<ComponentBlock>,
    /// One SoA gradient-term block per worker thread (gradient pass only).
    worker_terms: Vec<GradientBlock>,
    /// Distinct input indices referenced by the epoch's rank pairs, in first-
    /// appearance order.
    active: Vec<u32>,
    /// Gradient-chunk indices containing a non-zero λ, ascending.
    active_chunks: Vec<usize>,
    /// Per-input membership flags backing `active`.
    touched: Vec<bool>,
    /// Forward scores of the active inputs, aligned with `active`.
    active_scores: Vec<f64>,
    /// Persistent worker pool for the forward and gradient fan-outs; built
    /// lazily at the first multi-lane pass and reused across epochs.
    pool: Option<WorkerPool>,
}

impl EpochScratch {
    /// Creates empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward scores of the last forward pass, aligned with its inputs.
    /// After [`EpochScratch::factorized_loss_and_gradient`], inputs that no
    /// rank pair referenced hold 0.0 (they were not scored).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    fn ensure_worker_buffers(&mut self, workers: usize) {
        while self.worker_comps.len() < workers {
            self.worker_comps.push(ComponentBlock::new());
        }
        while self.worker_terms.len() < workers {
            self.worker_terms.push(GradientBlock::new());
        }
    }

    /// Step 1: computes each input's training score γ_i exactly once —
    /// O(inputs), not O(rank_pairs) — in parallel over at most `threads`
    /// scoped workers.  Each score lands in its own slot, so the result does
    /// not depend on the thread count.
    pub fn forward_pass(&mut self, model: &LearnRiskModel, inputs: &[PairRiskInput], threads: usize) {
        self.active.clear();
        self.active.extend(0..inputs.len() as u32);
        self.forward_pass_active(model, inputs, threads);
    }

    /// Collects the distinct input indices referenced by `rank_pairs` into
    /// `active` (first-appearance order, so the list is independent of the
    /// thread count).
    fn mark_active(&mut self, n_inputs: usize, rank_pairs: &[(u32, u32)]) {
        self.touched.clear();
        self.touched.resize(n_inputs, false);
        self.active.clear();
        for &(a, b) in rank_pairs {
            for i in [a, b] {
                let flag = &mut self.touched[i as usize];
                if !*flag {
                    *flag = true;
                    self.active.push(i);
                }
            }
        }
    }

    /// Forward scoring of the input indices currently in `active` (all of
    /// them for [`EpochScratch::forward_pass`], the pair-referenced subset
    /// from `mark_active` on the factorized path).  In the sampled regime —
    /// many inputs, a capped pair budget — only O(min(2·rank_pairs, inputs))
    /// model evaluations run instead of O(inputs).  Scores of untouched
    /// inputs are left at 0.0; the λ sweep never reads them.
    fn forward_pass_active(&mut self, model: &LearnRiskModel, inputs: &[PairRiskInput], threads: usize) {
        self.scores.clear();
        self.scores.resize(inputs.len(), 0.0);
        self.active_scores.clear();
        self.active_scores.resize(self.active.len(), 0.0);
        let workers = effective_workers(threads, self.active.len(), MIN_FORWARD_INPUTS_PER_WORKER);
        self.ensure_worker_buffers(workers);
        let z = model.z_theta();
        let active = &self.active;
        if workers <= 1 {
            let comps = &mut self.worker_comps[0];
            for (&i, slot) in active.iter().zip(&mut self.active_scores) {
                *slot = model.training_score_with_z(&inputs[i as usize], z, comps);
            }
        } else {
            let per = active.len().div_ceil(workers);
            let pool = ensure_pool(&mut self.pool, workers);
            pool.scope(|scope| {
                for ((index_chunk, score_chunk), comps) in active
                    .chunks(per)
                    .zip(self.active_scores.chunks_mut(per))
                    .zip(self.worker_comps.iter_mut())
                {
                    scope.spawn(move || {
                        for (&i, slot) in index_chunk.iter().zip(score_chunk) {
                            *slot = model.training_score_with_z(&inputs[i as usize], z, comps);
                        }
                    });
                }
            })
            .propagate();
        }
        // Scatter back to the per-input slots the λ sweep indexes by.
        for (&i, &score) in active.iter().zip(&self.active_scores) {
            self.scores[i as usize] = score;
        }
    }

    /// Step 2: sweeps the rank-pair list once, accumulating each input's λ
    /// coefficient and the epoch loss (unregularized).  O(rank_pairs) scalar
    /// work — no model evaluation.  Requires a preceding
    /// [`EpochScratch::forward_pass`] over the same inputs.
    pub fn lambda_pass(&mut self, inputs: &[PairRiskInput], rank_pairs: &[(u32, u32)]) -> f64 {
        assert_eq!(
            self.scores.len(),
            inputs.len(),
            "forward_pass must run on the same inputs first"
        );
        self.lambdas.clear();
        self.lambdas.resize(inputs.len(), 0.0);
        let n_pairs = rank_pairs.len().max(1) as f64;
        let mut loss = 0.0;
        for &(a, b) in rank_pairs {
            let (a, b) = (a as usize, b as usize);
            let p_ab = clamp_prob(sigmoid(self.scores[a] - self.scores[b]));
            let target = 0.5 * (1.0 + inputs[a].risk_label as f64 - inputs[b].risk_label as f64);
            loss += -(target * safe_ln(p_ab) + (1.0 - target) * safe_ln(1.0 - p_ab));
            // dL/dγ_a = p_ab - target; dL/dγ_b = -(p_ab - target).
            let d = (p_ab - target) / n_pairs;
            self.lambdas[a] += d;
            self.lambdas[b] -= d;
        }
        loss / n_pairs
    }

    /// Step 3: one gradient evaluation per input with a non-zero λ, in
    /// parallel over fixed-size input chunks.  Only chunks containing a
    /// non-zero λ get a shard (so the pass is O(λ-active inputs) plus one
    /// scalar sweep of λ, not O(inputs)); each shard accumulates its chunk's
    /// inputs in index order, and the shards are reduced into `grad` in
    /// ascending chunk order on the calling thread — the chunk grid depends
    /// only on the input count, so the result is bit-identical for every
    /// thread count.  Requires a preceding [`EpochScratch::lambda_pass`].
    pub fn gradient_pass(
        &mut self,
        model: &LearnRiskModel,
        inputs: &[PairRiskInput],
        threads: usize,
        grad: &mut [f64],
    ) {
        let dim = model.param_count();
        assert_eq!(grad.len(), dim, "gradient buffer must match the parameter count");
        assert_eq!(
            self.lambdas.len(),
            inputs.len(),
            "lambda_pass must run on the same inputs first"
        );
        // Chunks with at least one non-zero λ, in ascending order.
        let n_chunks = inputs.len().div_ceil(GRAD_CHUNK);
        self.active_chunks.clear();
        for c in 0..n_chunks {
            let start = c * GRAD_CHUNK;
            let end = (start + GRAD_CHUNK).min(inputs.len());
            if self.lambdas[start..end].iter().any(|&l| l != 0.0) {
                self.active_chunks.push(c);
            }
        }
        grad.fill(0.0);
        let n_active = self.active_chunks.len();
        if n_active == 0 {
            return;
        }
        while self.chunk_grads.len() < n_active {
            self.chunk_grads.push(Vec::new());
        }
        for shard in &mut self.chunk_grads[..n_active] {
            shard.clear();
            shard.resize(dim, 0.0);
        }
        let workers = effective_workers(threads, n_active, 1);
        self.ensure_worker_buffers(workers);
        let z = model.z_theta();
        let lambdas = &self.lambdas;
        let active_chunks = &self.active_chunks;
        let shards = &mut self.chunk_grads[..n_active];
        if workers <= 1 {
            let comps = &mut self.worker_comps[0];
            let terms = &mut self.worker_terms[0];
            for (shard, &c) in shards.iter_mut().zip(active_chunks) {
                gradient_chunk(model, inputs, lambdas, z, c, comps, terms, shard);
            }
        } else {
            let per = n_active.div_ceil(workers);
            let pool = ensure_pool(&mut self.pool, workers);
            pool.scope(|scope| {
                for (((shard_slice, chunk_ids), comps), terms) in shards
                    .chunks_mut(per)
                    .zip(active_chunks.chunks(per))
                    .zip(self.worker_comps.iter_mut())
                    .zip(self.worker_terms.iter_mut())
                {
                    scope.spawn(move || {
                        for (shard, &c) in shard_slice.iter_mut().zip(chunk_ids) {
                            gradient_chunk(model, inputs, lambdas, z, c, comps, terms, shard);
                        }
                    });
                }
            })
            .propagate();
        }
        // Reduce the shards in fixed (ascending) chunk order.
        for shard in self.chunk_grads[..n_active].iter() {
            for (g, s) in grad.iter_mut().zip(shard) {
                *g += s;
            }
        }
    }

    /// One factorized epoch: forward pass + λ sweep + gradient pass +
    /// regularization.  Drop-in replacement for [`loss_and_gradient`] (the
    /// gradient lands in `grad`, the regularized loss is returned) that is
    /// O(inputs + rank_pairs) instead of O(rank_pairs × features) and
    /// allocation-free once the scratch has warmed up.
    pub fn factorized_loss_and_gradient(
        &mut self,
        model: &LearnRiskModel,
        inputs: &[PairRiskInput],
        rank_pairs: &[(u32, u32)],
        config: &RiskTrainConfig,
        threads: usize,
        grad: &mut [f64],
    ) -> f64 {
        let mut span = EpochSpan::default();
        self.factorized_loss_and_gradient_timed(model, inputs, rank_pairs, config, threads, grad, &mut span)
    }

    /// [`Self::factorized_loss_and_gradient`] that additionally stamps the
    /// wall-clock duration of the epoch's three passes into `span`
    /// (`epoch` itself is the caller's to fill).  Timing sits *around* the
    /// passes, so losses and gradients stay bit-identical to the untimed
    /// path.
    #[allow(clippy::too_many_arguments)]
    pub fn factorized_loss_and_gradient_timed(
        &mut self,
        model: &LearnRiskModel,
        inputs: &[PairRiskInput],
        rank_pairs: &[(u32, u32)],
        config: &RiskTrainConfig,
        threads: usize,
        grad: &mut [f64],
        span: &mut EpochSpan,
    ) -> f64 {
        // Forward-score only the inputs the pairs reference: in the sampled
        // regime (inputs ≫ max_rank_pairs) scoring every input would make
        // the epoch O(inputs) even when only a fraction participates.
        self.mark_active(inputs.len(), rank_pairs);
        let forward_start = Instant::now();
        self.forward_pass_active(model, inputs, threads);
        let lambda_start = Instant::now();
        let mut loss = self.lambda_pass(inputs, rank_pairs);
        let gradient_start = Instant::now();
        self.gradient_pass(model, inputs, threads, grad);
        let gradient_end = Instant::now();
        regularize(model, config, &mut loss, grad);
        span.forward_secs = (lambda_start - forward_start).as_secs_f64();
        span.lambda_secs = (gradient_start - lambda_start).as_secs_f64();
        span.gradient_secs = (gradient_end - gradient_start).as_secs_f64();
        loss
    }
}

/// Gradient accumulation of one fixed-size input chunk into its shard: per
/// λ-active input, build the SoA portfolio, aggregate it with the fused
/// chunked kernel, compute every component's gradient terms in one bulk
/// elementwise pass, then scatter them into the shard.
#[allow(clippy::too_many_arguments)]
fn gradient_chunk(
    model: &LearnRiskModel,
    inputs: &[PairRiskInput],
    lambdas: &[f64],
    z_theta: f64,
    chunk_index: usize,
    comps: &mut ComponentBlock,
    terms: &mut GradientBlock,
    shard: &mut [f64],
) {
    let start = chunk_index * GRAD_CHUNK;
    let end = (start + GRAD_CHUNK).min(inputs.len());
    for i in start..end {
        let lambda = lambdas[i];
        if lambda == 0.0 {
            continue;
        }
        let input = &inputs[i];
        model.components_into_block(input, comps);
        let agg = comps.aggregate();
        comps.component_gradients_into(&agg, terms);
        scatter_score_gradient(model, input, comps.len(), z_theta, lambda, shard, |slot| {
            terms.gradients(slot)
        });
    }
}

/// Whether the positive × negative cartesian product should be enumerated
/// exhaustively (it fits the pair budget) — overflow-safe, so absurdly large
/// input sets fall back to sampling instead of wrapping around.
fn enumerate_exhaustively(positives: usize, negatives: usize, max_pairs: usize) -> bool {
    positives.checked_mul(negatives).is_some_and(|total| total <= max_pairs)
}

/// Reusable rank-pair sampler: splits the inputs into mislabeled (positive)
/// and correct (negative) index sets once, then samples each epoch's pair
/// list into a caller-owned buffer without re-scanning the inputs.
pub struct RankPairSampler {
    positives: Vec<u32>,
    negatives: Vec<u32>,
}

impl RankPairSampler {
    /// Indexes the inputs by risk label.
    pub fn new(inputs: &[PairRiskInput]) -> Self {
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            if input.risk_label == 1 {
                positives.push(i as u32);
            } else {
                negatives.push(i as u32);
            }
        }
        Self { positives, negatives }
    }

    /// Whether no informative ordering exists (one of the label sets is
    /// empty).
    pub fn is_degenerate(&self) -> bool {
        self.positives.is_empty() || self.negatives.is_empty()
    }

    /// Builds the ranking pairs of one epoch into `out` (cleared first):
    /// every mislabeled training pair is matched with sampled
    /// correctly-labeled pairs (the informative orderings for the target of
    /// Eq. 14), capped at `max_pairs`.
    ///
    /// When the full cartesian product fits the cap it is enumerated in index
    /// order with an exact reservation and no shuffle — pair order does not
    /// affect the trainer, so shuffling the full product was pure overhead.
    /// The product is computed with `checked_mul`, falling back to the
    /// sampling branch on overflow.
    pub fn sample_into<R: Rng + ?Sized>(&self, max_pairs: usize, rng: &mut R, out: &mut Vec<(u32, u32)>) {
        out.clear();
        if self.is_degenerate() {
            return;
        }
        if enumerate_exhaustively(self.positives.len(), self.negatives.len(), max_pairs) {
            out.reserve(self.positives.len() * self.negatives.len());
            for &p in &self.positives {
                for &n in &self.negatives {
                    out.push((p, n));
                }
            }
        } else {
            out.reserve(max_pairs);
            for _ in 0..max_pairs {
                let p = self.positives[rng.gen_range(0..self.positives.len())];
                let n = self.negatives[rng.gen_range(0..self.negatives.len())];
                out.push((p, n));
            }
            out.shuffle(rng);
        }
    }
}

/// Builds the ranking pairs of one epoch (see [`RankPairSampler::sample_into`],
/// which the trainer uses to avoid the per-epoch allocation).
pub fn sample_rank_pairs<R: Rng + ?Sized>(inputs: &[PairRiskInput], max_pairs: usize, rng: &mut R) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    RankPairSampler::new(inputs).sample_into(max_pairs, rng, &mut out);
    out
}

/// Wall-clock attribution of one factorized epoch: how long each of the
/// three passes (forward score, λ sweep, gradient accumulation) took.
/// Collected by [`train_with_threads`] so `train_bench` can report where
/// epoch time actually goes, the same way request traces attribute serving
/// latency to stages.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochSpan {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Seconds in the parallel forward pass (per-input portfolio scores).
    pub forward_secs: f64,
    /// Seconds in the O(rank_pairs) scalar λ sweep.
    pub lambda_secs: f64,
    /// Seconds in the parallel gradient accumulation + shard reduction.
    pub gradient_secs: f64,
}

/// Training history for diagnostics and the scalability experiments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Loss after each epoch.
    pub losses: Vec<f64>,
    /// Number of ranking pairs sampled in each epoch (aligned with `losses`),
    /// so sampling variance across epochs is reportable.
    pub rank_pair_counts: Vec<usize>,
    /// Number of ranking pairs of the *last* epoch — kept for compatibility
    /// with consumers of the old scalar field; `rank_pair_counts` has the
    /// full per-epoch series.
    pub rank_pairs_per_epoch: usize,
    /// Per-epoch wall-clock attribution of the three factorized passes
    /// (aligned with `losses`).
    pub epoch_spans: Vec<EpochSpan>,
}

/// Worker threads [`train`] uses by default: every CPU available to the
/// process.  Training is bit-identical for every thread count (see
/// [`EpochScratch`]), so the default only affects speed, never results.
pub fn default_train_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Trains the risk model on risk-training data (the validation split of the
/// classifier, as in Section 4.3), using [`default_train_threads`] workers.
pub fn train(model: &mut LearnRiskModel, inputs: &[PairRiskInput], config: &RiskTrainConfig) -> TrainReport {
    train_with_threads(model, inputs, config, default_train_threads())
}

/// [`train`] with an explicit worker-thread count.  The factorized epoch is
/// deterministic across thread counts: for the same model, inputs and config,
/// every `threads` value produces bit-identical losses and parameters.
pub fn train_with_threads(
    model: &mut LearnRiskModel,
    inputs: &[PairRiskInput],
    config: &RiskTrainConfig,
    threads: usize,
) -> TrainReport {
    let mut report = TrainReport::default();
    if inputs.is_empty() {
        return report;
    }
    let mut rng = substream(config.seed, 0x71);
    let sampler = RankPairSampler::new(inputs);
    let mut params = flatten_params(model);
    let mut grad = vec![0.0; params.len()];
    let mut rank_pairs: Vec<(u32, u32)> = Vec::new();
    let mut scratch = EpochScratch::new();
    // Adam state.
    let mut m = vec![0.0; params.len()];
    let mut v = vec![0.0; params.len()];
    let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

    for epoch in 0..config.epochs {
        sampler.sample_into(config.max_rank_pairs, &mut rng, &mut rank_pairs);
        if rank_pairs.is_empty() {
            // Nothing to rank (no mislabeled pairs in the risk-training data):
            // the model keeps its prior parameters.
            break;
        }
        report.rank_pair_counts.push(rank_pairs.len());
        report.rank_pairs_per_epoch = rank_pairs.len();
        let mut span = EpochSpan {
            epoch,
            ..EpochSpan::default()
        };
        let loss = scratch.factorized_loss_and_gradient_timed(
            model,
            inputs,
            &rank_pairs,
            config,
            threads,
            &mut grad,
            &mut span,
        );
        report.epoch_spans.push(span);
        report.losses.push(loss);

        if config.use_adam {
            let t = (epoch + 1) as i32;
            let bc1 = 1.0 - beta1.powi(t);
            let bc2 = 1.0 - beta2.powi(t);
            for i in 0..params.len() {
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                params[i] -= config.learning_rate * (m[i] / bc1) / ((v[i] / bc2).sqrt() + eps);
            }
        } else {
            for (p, g) in params.iter_mut().zip(&grad) {
                *p -= config.learning_rate * g;
            }
        }
        unflatten_params(model, &params);
        // Re-read the projected parameters so optimizer state stays consistent.
        flatten_params_into(model, &mut params);
    }
    report
}

/// Convenience: AUROC of the model's risk ranking against the risk labels of
/// the inputs.
pub fn evaluate_auroc(model: &LearnRiskModel, inputs: &[PairRiskInput]) -> f64 {
    let scores = model.rank(inputs);
    let labels: Vec<u8> = inputs.iter().map(|i| i.risk_label).collect();
    er_base::auroc(&scores, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::RiskFeatureSet;
    use crate::model::RiskModelConfig;
    use er_base::rng::seeded;
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};

    fn toy_model() -> LearnRiskModel {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 50, 0.95),
            Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Equivalent, 40, 0.95),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.95],
            support: vec![50, 40],
        };
        LearnRiskModel::new(
            fs,
            RiskModelConfig {
                output_buckets: 4,
                ..Default::default()
            },
        )
    }

    /// Synthetic risk-training data: the classifier output is mostly right;
    /// rule 0 fires on some pairs the classifier wrongly labels as matches and
    /// rule 1 fires on pairs wrongly labeled as unmatches.
    fn toy_inputs(n: usize, seed: u64) -> Vec<PairRiskInput> {
        let mut rng = seeded(seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let truth_match = rng.gen_bool(0.4);
            // Classifier: 80% accurate, more confident when right.
            let correct = rng.gen_bool(0.8);
            let says_match = if correct { truth_match } else { !truth_match };
            let output: f64 = if says_match {
                rng.gen_range(0.55..0.99)
            } else {
                rng.gen_range(0.01..0.45)
            };
            // Rules: the inequivalence rule fires for most true non-matches,
            // the equivalence rule for most true matches (plus some noise).
            let mut rules = Vec::new();
            if !truth_match && rng.gen_bool(0.7) {
                rules.push(0u32);
            }
            if truth_match && rng.gen_bool(0.7) {
                rules.push(1u32);
            }
            if rng.gen_bool(0.05) {
                rules.push(if rng.gen_bool(0.5) { 0 } else { 1 });
            }
            out.push(PairRiskInput {
                rule_indices: rules,
                classifier_output: output,
                machine_says_match: says_match,
                risk_label: u8::from(says_match != truth_match),
            });
        }
        out
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let model = toy_model();
        let inputs = toy_inputs(40, 3);
        let mut rng = seeded(4);
        let rank_pairs = sample_rank_pairs(&inputs, 200, &mut rng);
        assert!(!rank_pairs.is_empty());
        let config = RiskTrainConfig {
            l1: 1e-3,
            l2: 1e-3,
            ..Default::default()
        };
        let (_, grad) = loss_and_gradient(&model, &inputs, &rank_pairs, &config);

        let params = flatten_params(&model);
        let eps = 1e-6;
        for idx in 0..params.len() {
            let mut plus = model.clone();
            let mut p_plus = params.clone();
            p_plus[idx] += eps;
            unflatten_params(&mut plus, &p_plus);
            let mut minus = model.clone();
            let mut p_minus = params.clone();
            p_minus[idx] -= eps;
            unflatten_params(&mut minus, &p_minus);
            let (l_plus, _) = loss_and_gradient(&plus, &inputs, &rank_pairs, &config);
            let (l_minus, _) = loss_and_gradient(&minus, &inputs, &rank_pairs, &config);
            let numeric = (l_plus - l_minus) / (2.0 * eps);
            assert!(
                (numeric - grad[idx]).abs() < 1e-4,
                "param {idx}: numeric {numeric} vs analytic {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn factorized_epoch_matches_the_per_pair_reference() {
        let model = toy_model();
        let inputs = toy_inputs(120, 13);
        let mut rng = seeded(14);
        let rank_pairs = sample_rank_pairs(&inputs, 600, &mut rng);
        assert!(!rank_pairs.is_empty());
        let config = RiskTrainConfig::default();
        let (loss_ref, grad_ref) = loss_and_gradient(&model, &inputs, &rank_pairs, &config);

        let mut scratch = EpochScratch::new();
        let mut grad = vec![0.0; model.param_count()];
        for threads in [1usize, 3] {
            let loss = scratch.factorized_loss_and_gradient(&model, &inputs, &rank_pairs, &config, threads, &mut grad);
            assert!(
                (loss - loss_ref).abs() < 1e-9,
                "threads {threads}: loss {loss} vs reference {loss_ref}"
            );
            for (idx, (f, r)) in grad.iter().zip(&grad_ref).enumerate() {
                assert!(
                    (f - r).abs() < 1e-9,
                    "threads {threads}, param {idx}: factorized {f} vs reference {r}"
                );
            }
        }
    }

    #[test]
    fn factorized_epoch_matches_reference_when_most_inputs_are_inactive() {
        // A tiny pair budget over many inputs: the active-input optimization
        // must only score what the pairs reference and still agree with the
        // per-pair path.
        let model = toy_model();
        let inputs = toy_inputs(2000, 17);
        let mut rng = seeded(18);
        let rank_pairs = sample_rank_pairs(&inputs, 40, &mut rng);
        assert!(!rank_pairs.is_empty() && rank_pairs.len() <= 40);
        let config = RiskTrainConfig::default();
        let (loss_ref, grad_ref) = loss_and_gradient(&model, &inputs, &rank_pairs, &config);
        let mut scratch = EpochScratch::new();
        let mut grad = vec![0.0; model.param_count()];
        for threads in [1usize, 4] {
            let loss = scratch.factorized_loss_and_gradient(&model, &inputs, &rank_pairs, &config, threads, &mut grad);
            assert!((loss - loss_ref).abs() < 1e-9);
            for (f, r) in grad.iter().zip(&grad_ref) {
                assert!((f - r).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn thread_counts_produce_bit_identical_training() {
        let inputs = toy_inputs(300, 21);
        let config = RiskTrainConfig {
            epochs: 40,
            learning_rate: 0.05,
            ..Default::default()
        };
        let mut baseline = toy_model();
        let baseline_report = train_with_threads(&mut baseline, &inputs, &config, 1);
        assert!(!baseline_report.losses.is_empty());
        for threads in [2usize, 4, 7] {
            let mut model = toy_model();
            let report = train_with_threads(&mut model, &inputs, &config, threads);
            let loss_bits: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
            let base_bits: Vec<u64> = baseline_report.losses.iter().map(|l| l.to_bits()).collect();
            assert_eq!(loss_bits, base_bits, "losses diverged at {threads} threads");
            let param_bits: Vec<u64> = flatten_params(&model).iter().map(|p| p.to_bits()).collect();
            let base_param_bits: Vec<u64> = flatten_params(&baseline).iter().map(|p| p.to_bits()).collect();
            assert_eq!(param_bits, base_param_bits, "parameters diverged at {threads} threads");
        }
    }

    /// The pre-factorization trainer, re-implemented on the per-pair
    /// reference epoch: same sampling stream, same optimizer.  Guards the
    /// acceptance criterion that factorizing the epoch does not change what
    /// the trainer learns.
    fn reference_train(model: &mut LearnRiskModel, inputs: &[PairRiskInput], config: &RiskTrainConfig) -> TrainReport {
        let mut report = TrainReport::default();
        let mut rng = substream(config.seed, 0x71);
        let sampler = RankPairSampler::new(inputs);
        let mut params = flatten_params(model);
        let mut rank_pairs = Vec::new();
        let mut m = vec![0.0; params.len()];
        let mut v = vec![0.0; params.len()];
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        for epoch in 0..config.epochs {
            sampler.sample_into(config.max_rank_pairs, &mut rng, &mut rank_pairs);
            if rank_pairs.is_empty() {
                break;
            }
            let (loss, grad) = loss_and_gradient(model, inputs, &rank_pairs, config);
            report.losses.push(loss);
            if config.use_adam {
                let t = (epoch + 1) as i32;
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                for i in 0..params.len() {
                    m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                    v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                    params[i] -= config.learning_rate * (m[i] / bc1) / ((v[i] / bc2).sqrt() + eps);
                }
            } else {
                for (p, g) in params.iter_mut().zip(&grad) {
                    *p -= config.learning_rate * g;
                }
            }
            unflatten_params(model, &params);
            params = flatten_params(model);
        }
        report
    }

    #[test]
    fn factorized_training_matches_the_reference_trainer() {
        let inputs = toy_inputs(300, 5);
        let test_inputs = toy_inputs(300, 6);
        let config = RiskTrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            ..Default::default()
        };
        let mut reference = toy_model();
        let reference_report = reference_train(&mut reference, &inputs, &config);
        let mut factorized = toy_model();
        let factorized_report = train(&mut factorized, &inputs, &config);
        assert_eq!(reference_report.losses.len(), factorized_report.losses.len());
        for (epoch, (r, f)) in reference_report
            .losses
            .iter()
            .zip(&factorized_report.losses)
            .enumerate()
        {
            assert!(
                (r - f).abs() < 1e-7,
                "epoch {epoch}: reference loss {r} vs factorized {f}"
            );
        }
        let auroc_ref = evaluate_auroc(&reference, &test_inputs);
        let auroc_fac = evaluate_auroc(&factorized, &test_inputs);
        assert!(
            (auroc_ref - auroc_fac).abs() < 1e-6,
            "AUROC diverged: reference {auroc_ref} vs factorized {auroc_fac}"
        );
    }

    #[test]
    fn training_reduces_loss_and_improves_auroc() {
        let mut model = toy_model();
        let train_inputs = toy_inputs(300, 5);
        let test_inputs = toy_inputs(300, 6);
        let before = evaluate_auroc(&model, &test_inputs);
        let config = RiskTrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            ..Default::default()
        };
        let report = train(&mut model, &train_inputs, &config);
        assert!(!report.losses.is_empty());
        let first = report.losses.first().unwrap();
        let last = report.losses.last().unwrap();
        assert!(last < first, "loss should decrease: {first} -> {last}");
        let after = evaluate_auroc(&model, &test_inputs);
        assert!(after >= before - 0.02, "AUROC should not degrade: {before} -> {after}");
        assert!(after > 0.6, "trained AUROC too low: {after}");
    }

    #[test]
    fn report_records_per_epoch_pair_counts() {
        let mut model = toy_model();
        let inputs = toy_inputs(200, 31);
        let config = RiskTrainConfig {
            epochs: 30,
            ..Default::default()
        };
        let report = train(&mut model, &inputs, &config);
        assert_eq!(report.rank_pair_counts.len(), report.losses.len());
        assert_eq!(
            report.rank_pair_counts.last().copied().unwrap_or_default(),
            report.rank_pairs_per_epoch,
            "the compatibility scalar must equal the last epoch's count"
        );
        assert!(report.rank_pair_counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn exhaustive_enumeration_guards_against_overflow() {
        assert!(enumerate_exhaustively(3, 4, 12));
        assert!(!enumerate_exhaustively(3, 5, 12));
        // A product that overflows usize must fall back to sampling, not wrap.
        assert!(!enumerate_exhaustively(usize::MAX, 2, usize::MAX));
        assert!(!enumerate_exhaustively(usize::MAX / 2, 3, usize::MAX));
    }

    #[test]
    fn projection_keeps_parameters_feasible() {
        let mut model = toy_model();
        let mut params = flatten_params(&model);
        params.iter_mut().for_each(|p| *p = -5.0);
        unflatten_params(&mut model, &params);
        assert!(model.rule_weights.iter().all(|&w| w >= 1e-3));
        assert!(model.rule_rsd.iter().all(|&r| r >= 1e-3));
        assert!(model.influence.alpha >= 0.05);
        assert!(model.influence.beta >= 0.0);
        assert!(model.output_rsd.iter().all(|&r| r >= 1e-3));
    }

    #[test]
    fn sampling_handles_degenerate_label_sets() {
        let mut rng = seeded(7);
        let all_correct: Vec<PairRiskInput> = toy_inputs(20, 8)
            .into_iter()
            .map(|mut i| {
                i.risk_label = 0;
                i
            })
            .collect();
        assert!(sample_rank_pairs(&all_correct, 100, &mut rng).is_empty());
        // Training on data without any mislabeled pair is a no-op.
        let mut model = toy_model();
        let report = train(&mut model, &all_correct, &RiskTrainConfig::default());
        assert!(report.losses.is_empty());
        // Empty inputs likewise.
        let report = train(&mut model, &[], &RiskTrainConfig::default());
        assert!(report.losses.is_empty());
    }

    #[test]
    fn sampling_caps_the_number_of_pairs() {
        let inputs = toy_inputs(200, 9);
        let mut rng = seeded(10);
        let pairs = sample_rank_pairs(&inputs, 500, &mut rng);
        assert!(pairs.len() <= 500);
        assert!(!pairs.is_empty());
        // Each sampled ordering is (mislabeled, correct).
        for &(a, b) in &pairs {
            assert_eq!(inputs[a as usize].risk_label, 1);
            assert_eq!(inputs[b as usize].risk_label, 0);
        }
    }

    #[test]
    fn exhaustive_sampling_emits_the_full_product_without_rng() {
        let inputs = toy_inputs(40, 15);
        let sampler = RankPairSampler::new(&inputs);
        assert!(!sampler.is_degenerate());
        let mut rng = seeded(16);
        let mut pairs = Vec::new();
        sampler.sample_into(usize::MAX, &mut rng, &mut pairs);
        let positives = inputs.iter().filter(|i| i.risk_label == 1).count();
        let negatives = inputs.len() - positives;
        assert_eq!(pairs.len(), positives * negatives);
        // Exhaustive enumeration is deterministic: a second pass (any RNG
        // state) produces the identical list.
        let mut again = Vec::new();
        sampler.sample_into(usize::MAX, &mut seeded(99), &mut again);
        assert_eq!(pairs, again);
    }

    #[test]
    fn plain_gradient_descent_also_trains() {
        let mut model = toy_model();
        let inputs = toy_inputs(200, 11);
        let config = RiskTrainConfig {
            epochs: 80,
            learning_rate: 0.05,
            use_adam: false,
            ..Default::default()
        };
        let report = train(&mut model, &inputs, &config);
        assert!(report.losses.last().unwrap() <= report.losses.first().unwrap());
    }

    #[test]
    fn learned_weights_upweight_informative_rules() {
        let mut model = toy_model();
        let inputs = toy_inputs(400, 12);
        train(
            &mut model,
            &inputs,
            &RiskTrainConfig {
                epochs: 150,
                learning_rate: 0.05,
                ..Default::default()
            },
        );
        // After training, the AUROC on the training data itself should be high.
        let auroc = evaluate_auroc(&model, &inputs);
        assert!(auroc > 0.7, "training-data AUROC {auroc}");
    }
}
