//! The scoring engine: a trained model plus its compiled rule index.
//!
//! [`ScoringEngine::score_request`] resolves which rules fire on a raw
//! basic-metric row through the [`CompiledRuleIndex`], then scores through
//! the exact same [`LearnRiskModel::risk_score`] code path the batch
//! pipeline uses — the fired-rule list is produced in the same (ascending)
//! order the offline linear scan yields, so online scores are bit-identical
//! to offline ones. This is what makes the artifact round-trip property
//! (train → save → load → serve) testable to full `f64` precision.

use crate::index::{CompiledRuleIndex, MatchScratch, RowLengthError};
use learnrisk_core::{ComponentBlock, LearnRiskModel, PairRiskInput, PortfolioError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scoring request: a candidate pair reduced to its serving inputs.
///
/// The caller (feature service / classifier front-end) supplies the pair's
/// basic-metric row and the classifier decision; the engine resolves rule
/// coverage and the risk score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreRequest {
    /// Caller-assigned pair identity, used as the cache key for repeated
    /// traffic. Requests with equal ids must describe the same pair.
    pub pair_id: u64,
    /// The pair's basic-metric row (same layout the rules were trained on).
    pub metric_row: Vec<f64>,
    /// Classifier equivalence-probability output.
    pub classifier_output: f64,
    /// Whether the classifier labeled the pair as matching.
    pub machine_says_match: bool,
}

/// Why a request could not be scored — the error the fallible serving path
/// returns instead of panicking, so one malformed artifact or request
/// degrades to an error response rather than killing a worker thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreError {
    /// The request's metric row is shorter than the rule set requires.
    Row(RowLengthError),
    /// The pair's portfolio could not be aggregated (e.g. a corrupt artifact
    /// producing a non-positive total weight).
    Portfolio(PortfolioError),
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::Row(e) => write!(f, "{e}"),
            ScoreError::Portfolio(e) => write!(f, "cannot aggregate the pair's portfolio: {e}"),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Reusable per-worker scratch for the engine (rule-match counters, the
/// assembled [`PairRiskInput`], and the SoA portfolio block the model
/// aggregates through); create one per thread via
/// [`ScoringEngine::scratch`].
#[derive(Debug, Clone)]
pub struct EngineScratch {
    matcher: MatchScratch,
    input: PairRiskInput,
    components: ComponentBlock,
}

/// A servable risk model: the trained state plus the compiled rule index.
#[derive(Debug, Clone)]
pub struct ScoringEngine {
    model: LearnRiskModel,
    index: CompiledRuleIndex,
}

impl ScoringEngine {
    /// Compiles the rule index and wraps the model for serving.
    ///
    /// # Panics
    /// Panics if the model fails [`LearnRiskModel::validate`]; load models
    /// from artifacts (which validate on load) or pass freshly trained ones.
    pub fn new(model: LearnRiskModel) -> Self {
        if let Err(why) = model.validate() {
            panic!("refusing to serve an invalid model: {why}");
        }
        let index = CompiledRuleIndex::compile(&model.features.rules);
        Self { model, index }
    }

    /// The underlying trained model.
    pub fn model(&self) -> &LearnRiskModel {
        &self.model
    }

    /// The compiled rule index.
    pub fn index(&self) -> &CompiledRuleIndex {
        &self.index
    }

    /// Shortest metric row this engine can score (delegates to the index);
    /// the serving front-end uses this to turn short rows into 422 responses
    /// instead of worker panics.
    pub fn required_row_len(&self) -> usize {
        self.index.required_row_len()
    }

    /// Creates scratch state sized for this engine.
    pub fn scratch(&self) -> EngineScratch {
        EngineScratch {
            matcher: self.index.scratch(),
            input: PairRiskInput {
                rule_indices: Vec::with_capacity(16),
                classifier_output: 0.0,
                machine_says_match: false,
                risk_label: 0,
            },
            components: ComponentBlock::with_capacity(17),
        }
    }

    /// Scores one request, reusing `scratch` (no per-request allocation once
    /// the scratch vectors have warmed up).
    ///
    /// # Panics
    /// Panics on a malformed request or artifact (short metric row,
    /// un-aggregatable portfolio); [`Self::try_score_request`] is the
    /// non-panicking form the executor's request path uses.
    pub fn score_request(&self, request: &ScoreRequest, scratch: &mut EngineScratch) -> f64 {
        self.try_score_request(request, scratch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::score_request`]: a malformed request (metric row
    /// shorter than the rule set requires) or a degenerate portfolio from a
    /// corrupt artifact becomes a [`ScoreError`] instead of a panic.
    pub fn try_score_request(&self, request: &ScoreRequest, scratch: &mut EngineScratch) -> Result<f64, ScoreError> {
        self.index
            .try_matching_rules_into(
                &request.metric_row,
                &mut scratch.matcher,
                &mut scratch.input.rule_indices,
            )
            .map_err(ScoreError::Row)?;
        scratch.input.classifier_output = request.classifier_output;
        scratch.input.machine_says_match = request.machine_says_match;
        self.model
            .try_risk_score_with(&scratch.input, &mut scratch.components)
            .map_err(ScoreError::Portfolio)
    }

    /// Scores a pre-resolved risk input (rule coverage already known), e.g.
    /// when replaying batch-pipeline outputs.
    pub fn score_pair(&self, input: &PairRiskInput) -> f64 {
        self.model.risk_score(input)
    }

    /// Scores a batch sequentially. For multi-threaded batches with caching,
    /// wrap the engine in a [`crate::ShardedExecutor`].
    pub fn score_batch(&self, requests: &[ScoreRequest]) -> Vec<f64> {
        let mut scratch = self.scratch();
        requests.iter().map(|r| self.score_request(r, &mut scratch)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::{Decision, Label, LabeledPair, Pair, PairId, Record, RecordId};
    use er_rulegen::{CmpOp, Condition, Rule};
    use learnrisk_core::{build_input_from_row, RiskFeatureSet, RiskModelConfig};
    use std::sync::Arc;

    fn model() -> LearnRiskModel {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.97),
            Rule::new(
                vec![Condition::new(1, CmpOp::Le, 0.3), Condition::new(2, CmpOp::Gt, 0.6)],
                Label::Equivalent,
                15,
                0.93,
            ),
            Rule::new(vec![Condition::new(2, CmpOp::Le, 0.2)], Label::Inequivalent, 9, 0.9),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.92, 0.1],
            support: vec![20, 15, 9],
        };
        let mut m = LearnRiskModel::new(fs, RiskModelConfig::default());
        m.rule_weights = vec![1.3, 0.7, 2.1];
        m.rule_rsd = vec![0.25, 0.4, 0.31];
        m
    }

    fn offline_score(model: &LearnRiskModel, req: &ScoreRequest) -> f64 {
        // The batch path: linear-scan rule resolution via build_input_from_row.
        let rec = |id| Arc::new(Record::new(RecordId(id), vec![]));
        let lp = LabeledPair::new(
            Pair::new(PairId(req.pair_id as u32), rec(0), rec(1), Label::Equivalent),
            Decision::from_probability(req.classifier_output),
        );
        let input = build_input_from_row(&model.features, &req.metric_row, &lp);
        model.risk_score(&input)
    }

    fn request(pair_id: u64, row: Vec<f64>, p: f64) -> ScoreRequest {
        ScoreRequest {
            pair_id,
            metric_row: row,
            classifier_output: p,
            machine_says_match: p >= 0.5,
        }
    }

    #[test]
    fn online_scores_are_bit_identical_to_the_offline_path() {
        let model = model();
        let engine = ScoringEngine::new(model.clone());
        let mut scratch = engine.scratch();
        for (i, row) in [
            vec![0.9, 0.1, 0.8],
            vec![0.2, 0.9, 0.1],
            vec![0.51, 0.3, 0.61],
            vec![0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ]
        .into_iter()
        .enumerate()
        {
            for p in [0.03, 0.49, 0.5, 0.97] {
                let req = request(i as u64, row.clone(), p);
                let online = engine.score_request(&req, &mut scratch);
                let offline = offline_score(&model, &req);
                assert_eq!(online.to_bits(), offline.to_bits(), "row {row:?} p {p}");
            }
        }
    }

    #[test]
    fn score_batch_matches_per_request_scoring() {
        let engine = ScoringEngine::new(model());
        let reqs: Vec<ScoreRequest> = (0..20)
            .map(|i| {
                let x = i as f64 / 20.0;
                request(i, vec![x, 1.0 - x, (x * 7.0).fract()], x)
            })
            .collect();
        let batch = engine.score_batch(&reqs);
        let mut scratch = engine.scratch();
        for (req, &score) in reqs.iter().zip(&batch) {
            assert_eq!(engine.score_request(req, &mut scratch).to_bits(), score.to_bits());
        }
    }

    #[test]
    fn score_pair_delegates_to_the_model() {
        let model = model();
        let engine = ScoringEngine::new(model.clone());
        let input = PairRiskInput {
            rule_indices: vec![0, 2],
            classifier_output: 0.8,
            machine_says_match: true,
            risk_label: 0,
        };
        assert_eq!(engine.score_pair(&input).to_bits(), model.risk_score(&input).to_bits());
    }

    #[test]
    #[should_panic(expected = "refusing to serve an invalid model")]
    fn invalid_models_are_refused() {
        let mut bad = model();
        bad.rule_weights.pop();
        ScoringEngine::new(bad);
    }

    #[test]
    fn malformed_requests_degrade_to_errors_on_the_fallible_path() {
        let engine = ScoringEngine::new(model());
        let mut scratch = engine.scratch();
        // Well-formed request: the fallible path returns the identical score.
        let ok = request(0, vec![0.9, 0.1, 0.8], 0.7);
        let plain = engine.score_request(&ok, &mut scratch);
        let fallible = engine.try_score_request(&ok, &mut scratch).expect("well-formed");
        assert_eq!(plain.to_bits(), fallible.to_bits());
        // Short metric row: an error, not a panic — and the scratch survives.
        let short = request(1, vec![0.9], 0.7);
        let err = engine.try_score_request(&short, &mut scratch).unwrap_err();
        assert!(matches!(err, ScoreError::Row(_)), "{err}");
        assert!(err.to_string().contains("metric row has 1 entries"));
        let after = engine.try_score_request(&ok, &mut scratch).expect("scratch reusable");
        assert_eq!(plain.to_bits(), after.to_bits());
    }
}
