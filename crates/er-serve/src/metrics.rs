//! A lock-cheap metrics registry with Prometheus text exposition.
//!
//! The registry is the **single source of truth** for everything the server
//! observes about itself: the `/stats` JSON counters are re-derived from it
//! and `GET /metrics` renders it in the Prometheus text format (v0.0.4), so
//! the two endpoints can never disagree. Every primitive is built on
//! [`AtomicU64`]:
//!
//! * [`Counter`] — monotonic `u64` (`inc`/`add`); [`Counter::store`] exists
//!   only to mirror counters owned elsewhere (the executor's cache hit/miss
//!   totals) into the exposition at scrape time.
//! * [`Gauge`] — an `f64` stored as bits (queue depth, model version).
//! * [`Histogram`] — fixed bucket bounds with **exclusive** upper bounds: an
//!   observation equal to a bound lands in the *next* bucket (the bucket
//!   whose half-open range `[lower, upper)` starts at that bound), plus an
//!   implicit `+Inf` overflow bucket and atomically maintained `sum`/`count`.
//!   Exposition is cumulative `le`-labeled, as Prometheus expects; the
//!   exclusive-vs-inclusive distinction is only observable for values
//!   exactly on a bound, which for continuous latencies is measure-zero.
//! * [`CounterVec`] / [`GaugeVec`] / [`HistogramVec`] — labeled families
//!   (per route, per artifact version, per reload outcome). Label lookup
//!   takes one short mutex on a `BTreeMap`; the returned `Arc` handle then
//!   observes lock-free, so hot paths can cache it.
//!
//! The module also ships the consumer side — [`parse_exposition`] and
//! [`extract_histogram`] — used by `serve_bench` and the smoke tiers to
//! prove the scrape parses, that `er_serve_score_requests_total` reconciles
//! with the replay's own request count, and that histogram-derived
//! percentiles bracket the replay harness's measured ones.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — only for mirroring a counter owned elsewhere
    /// (e.g. the executor's cache counters) into the registry at scrape time.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous `f64` value (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with exclusive upper bounds (see the
/// [module docs](self)) plus a `+Inf` overflow bucket and `sum`/`count`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Arc<[f64]>,
    /// `bounds.len() + 1` buckets; the last one is the `+Inf` overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given strictly increasing, finite bucket bounds.
    pub fn new(bounds: Arc<[f64]>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            bounds,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation. Bounds are exclusive: `value` lands in the
    /// first bucket whose upper bound is strictly greater than it.
    pub fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|b| value >= *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // A CAS loop instead of a lock: histogram observation stays wait-free
        // in the common uncontended case.
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (not cumulative), `+Inf` overflow last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// A resolved label set: `(name, value)` pairs in declaration order.
pub type LabelPairs = Vec<(&'static str, String)>;

fn label_key(labels: &[(&'static str, &str)]) -> LabelPairs {
    labels.iter().map(|(n, v)| (*n, v.to_string())).collect()
}

/// A labeled family of [`Counter`]s.
#[derive(Debug, Default)]
pub struct CounterVec {
    children: Mutex<BTreeMap<LabelPairs, Arc<Counter>>>,
}

impl CounterVec {
    /// The child for this label set, created on first use.
    pub fn with(&self, labels: &[(&'static str, &str)]) -> Arc<Counter> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(children.entry(label_key(labels)).or_default())
    }

    /// Every child's label set and current value.
    pub fn snapshot(&self) -> Vec<(LabelPairs, u64)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Sum across all children.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().map(|(_, v)| v).sum()
    }
}

/// A labeled family of [`Gauge`]s.
#[derive(Debug, Default)]
pub struct GaugeVec {
    children: Mutex<BTreeMap<LabelPairs, Arc<Gauge>>>,
}

impl GaugeVec {
    /// The child for this label set, created on first use.
    pub fn with(&self, labels: &[(&'static str, &str)]) -> Arc<Gauge> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(children.entry(label_key(labels)).or_default())
    }

    fn snapshot(&self) -> Vec<(LabelPairs, f64)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }
}

/// A labeled family of [`Histogram`]s sharing one set of bucket bounds.
#[derive(Debug)]
pub struct HistogramVec {
    bounds: Arc<[f64]>,
    children: Mutex<BTreeMap<LabelPairs, Arc<Histogram>>>,
}

impl HistogramVec {
    /// A family whose children all use `bounds`.
    pub fn new(bounds: Arc<[f64]>) -> Self {
        Self {
            bounds,
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The child for this label set, created on first use.
    pub fn with(&self, labels: &[(&'static str, &str)]) -> Arc<Histogram> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            children
                .entry(label_key(labels))
                .or_insert_with(|| Arc::new(Histogram::new(Arc::clone(&self.bounds)))),
        )
    }

    fn snapshot(&self) -> Vec<(LabelPairs, Arc<Histogram>)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
    }
}

/// Latency bucket bounds in seconds: 25µs doubling to ~3.3s. Sized for
/// socket round trips through the micro-batching window (hundreds of µs on
/// loopback) while keeping resolution at the tails.
pub fn latency_bounds() -> Arc<[f64]> {
    let mut bounds = vec![25e-6, 50e-6];
    let mut b = 100e-6;
    while b < 4.0 {
        bounds.push(b);
        b *= 2.0;
    }
    bounds.into()
}

/// Micro-batch size bucket bounds (exclusive, so a bound of 2 separates
/// singleton batches from coalesced ones).
pub fn batch_size_bounds() -> Arc<[f64]> {
    vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0].into()
}

/// The server's metric registry; see the [module docs](self). Field names
/// map 1:1 onto the exposition's `er_serve_*` metric names.
///
/// # Examples
///
/// ```
/// use er_serve::MetricsRegistry;
///
/// let metrics = MetricsRegistry::new();
/// metrics.responses.with(&[("route", "/score"), ("status", "200")]).inc();
/// metrics.request_duration.with(&[("route", "/score")]).observe(0.0007);
///
/// // Rendered as Prometheus text exposition (what `GET /metrics` serves):
/// let text = metrics.render();
/// assert!(text.contains("# TYPE er_serve_responses_total counter"));
/// assert!(text.contains(r#"er_serve_responses_total{route="/score",status="200"} 1"#));
///
/// // And parsed back by the bundled scrape-side parser:
/// let samples = er_serve::parse_exposition(&text).unwrap_or_default();
/// assert!(samples.iter().any(|s| s.name == "er_serve_responses_total"));
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    /// `er_serve_responses_total{route,status}` — every HTTP response.
    pub responses: CounterVec,
    /// `er_serve_request_duration_seconds{route}` — wall time from a parsed
    /// request to its response being written.
    pub request_duration: HistogramVec,
    /// `er_serve_score_requests_total{version}` — scoring requests answered
    /// with scores, labeled by the artifact version that scored them.
    pub score_requests: CounterVec,
    /// `er_serve_score_duration_seconds{version}` — `/score` admission →
    /// reply latency per artifact version.
    pub score_duration: HistogramVec,
    /// `er_serve_batches_total` — micro-batches scored.
    pub batches: Counter,
    /// `er_serve_batched_requests_total` — requests coalesced across all
    /// micro-batches.
    pub batched_requests: Counter,
    /// `er_serve_batch_size` — requests per micro-batch.
    pub batch_size: Histogram,
    /// `er_serve_queue_depth` — admitted-but-unscored jobs (scrape-time).
    pub queue_depth: Gauge,
    /// `er_serve_model_version` — currently serving artifact version.
    pub model_version: Gauge,
    /// `er_serve_rejected_total{cause}` — shed requests split by cause:
    /// `cause="rate_limited"` (429, per-client token bucket: this client must
    /// slow down), `cause="queue_full"` (429, admission-queue overflow: the
    /// server is momentarily saturated), `cause="deadline"` (504, the job's
    /// `X-Deadline-Ms` budget expired before scoring started), and
    /// `cause="overloaded"` (503, the accept loop is at its connection cap) —
    /// so dashboards can tell admission pressure from client abuse without
    /// parsing response headers.
    pub rejected: CounterVec,
    /// `er_serve_reloads_total{outcome}` — hot-reload outcomes
    /// (`applied` / `refused`).
    pub reloads: CounterVec,
    /// `er_serve_cache_hits_total{version}` — executor score-cache hits,
    /// mirrored at scrape time.
    pub cache_hits: CounterVec,
    /// `er_serve_cache_misses_total{version}` — executor score-cache misses,
    /// mirrored at scrape time.
    pub cache_misses: CounterVec,
    /// `er_serve_cache_hit_rate{version}` — hits / (hits + misses).
    pub cache_hit_rate: GaugeVec,
    /// `er_serve_cache_entries{version}` — live entries in the score cache.
    pub cache_entries: GaugeVec,
    /// `er_serve_worker_panics_total{role}` — panics caught by supervision,
    /// by worker role (`batcher` vs `shard`). Every count here is a request
    /// that got a deterministic 500 (batcher) or a transparently re-scored
    /// chunk (shard) instead of a severed connection.
    pub worker_panics: CounterVec,
    /// `er_serve_worker_restarts_total{role}` — supervised worker threads
    /// restarted after an unexpected unwind escaped a batch.
    pub worker_restarts: CounterVec,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with the default bucket layouts.
    pub fn new() -> Self {
        Self {
            responses: CounterVec::default(),
            request_duration: HistogramVec::new(latency_bounds()),
            score_requests: CounterVec::default(),
            score_duration: HistogramVec::new(latency_bounds()),
            batches: Counter::default(),
            batched_requests: Counter::default(),
            batch_size: Histogram::new(batch_size_bounds()),
            queue_depth: Gauge::default(),
            model_version: Gauge::default(),
            rejected: CounterVec::default(),
            reloads: CounterVec::default(),
            cache_hits: CounterVec::default(),
            cache_misses: CounterVec::default(),
            cache_hit_rate: GaugeVec::default(),
            cache_entries: GaugeVec::default(),
            worker_panics: CounterVec::default(),
            worker_restarts: CounterVec::default(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        render_counter_vec(
            &mut out,
            "er_serve_responses_total",
            "HTTP responses by route and status.",
            &self.responses,
        );
        render_histogram_vec(
            &mut out,
            "er_serve_request_duration_seconds",
            "Request handling time by route.",
            &self.request_duration,
        );
        render_counter_vec(
            &mut out,
            "er_serve_score_requests_total",
            "Scoring requests answered with scores, by artifact version.",
            &self.score_requests,
        );
        render_histogram_vec(
            &mut out,
            "er_serve_score_duration_seconds",
            "Score admission-to-reply latency by artifact version.",
            &self.score_duration,
        );
        render_counter(
            &mut out,
            "er_serve_batches_total",
            "Micro-batches scored.",
            &self.batches,
        );
        render_counter(
            &mut out,
            "er_serve_batched_requests_total",
            "Requests coalesced across all micro-batches.",
            &self.batched_requests,
        );
        render_histogram(
            &mut out,
            "er_serve_batch_size",
            "Requests per micro-batch.",
            &[],
            &self.batch_size,
            true,
        );
        render_gauge(
            &mut out,
            "er_serve_queue_depth",
            "Admitted-but-unscored jobs in the admission queue.",
            self.queue_depth.get(),
        );
        render_gauge(
            &mut out,
            "er_serve_model_version",
            "Artifact version currently serving.",
            self.model_version.get(),
        );
        render_counter_vec(
            &mut out,
            "er_serve_rejected_total",
            "Requests shed, by cause (rate_limited, queue_full, deadline, overloaded).",
            &self.rejected,
        );
        render_counter_vec(
            &mut out,
            "er_serve_reloads_total",
            "Hot-reload outcomes.",
            &self.reloads,
        );
        render_counter_vec(
            &mut out,
            "er_serve_cache_hits_total",
            "Score-cache hits by artifact version.",
            &self.cache_hits,
        );
        render_counter_vec(
            &mut out,
            "er_serve_cache_misses_total",
            "Score-cache misses by artifact version.",
            &self.cache_misses,
        );
        render_gauge_vec(
            &mut out,
            "er_serve_cache_hit_rate",
            "Score-cache hit rate by artifact version.",
            &self.cache_hit_rate,
        );
        render_gauge_vec(
            &mut out,
            "er_serve_cache_entries",
            "Live score-cache entries by artifact version.",
            &self.cache_entries,
        );
        render_counter_vec(
            &mut out,
            "er_serve_worker_panics_total",
            "Panics caught by worker supervision, by role (batcher vs shard).",
            &self.worker_panics,
        );
        render_counter_vec(
            &mut out,
            "er_serve_worker_restarts_total",
            "Supervised worker threads restarted after an escaped unwind.",
            &self.worker_restarts,
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Exposition rendering
// ---------------------------------------------------------------------------

/// Formats an f64 the way Prometheus text exposition expects (shortest
/// round-trip; integral values without a trailing `.0`).
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(n, v)| format!("{n}={:?}", v.replace('\\', "\\\\").replace('\n', "\\n")))
        .collect();
    if let Some((n, v)) = extra {
        parts.push(format!("{n}={v:?}"));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn render_counter(out: &mut String, name: &str, help: &str, counter: &Counter) {
    header(out, name, "counter", help);
    out.push_str(&format!("{name} {}\n", counter.get()));
}

fn render_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    header(out, name, "gauge", help);
    out.push_str(&format!("{name} {}\n", fmt_value(value)));
}

fn render_counter_vec(out: &mut String, name: &str, help: &str, vec: &CounterVec) {
    header(out, name, "counter", help);
    for (labels, value) in vec.snapshot() {
        out.push_str(&format!("{name}{} {value}\n", fmt_labels(&labels, None)));
    }
}

fn render_gauge_vec(out: &mut String, name: &str, help: &str, vec: &GaugeVec) {
    header(out, name, "gauge", help);
    for (labels, value) in vec.snapshot() {
        out.push_str(&format!("{name}{} {}\n", fmt_labels(&labels, None), fmt_value(value)));
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(&'static str, String)],
    histogram: &Histogram,
    with_header: bool,
) {
    if with_header {
        header(out, name, "histogram", help);
    }
    let counts = histogram.bucket_counts();
    let mut cumulative = 0u64;
    for (i, count) in counts.iter().enumerate() {
        cumulative += count;
        let le = if i < histogram.bounds().len() {
            fmt_value(histogram.bounds()[i])
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            fmt_labels(labels, Some(("le", &le)))
        ));
    }
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        fmt_labels(labels, None),
        fmt_value(histogram.sum())
    ));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        fmt_labels(labels, None),
        histogram.count()
    ));
}

fn render_histogram_vec(out: &mut String, name: &str, help: &str, vec: &HistogramVec) {
    header(out, name, "histogram", help);
    for (labels, histogram) in vec.snapshot() {
        render_histogram(out, name, help, &labels, &histogram, false);
    }
}

// ---------------------------------------------------------------------------
// Exposition parsing (the consumer side: serve_bench, smoke tiers, tests)
// ---------------------------------------------------------------------------

/// One sample line of a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms: `<base>_bucket` / `_sum` / `_count`).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Whether this sample carries every `(name, value)` pair in `filter`.
    pub fn matches(&self, filter: &[(&str, &str)]) -> bool {
        filter
            .iter()
            .all(|(n, v)| self.labels.iter().any(|(ln, lv)| ln == n && lv == v))
    }

    /// The value of label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit()))
}

/// Parses a Prometheus text exposition into samples, rejecting any line that
/// is neither a comment nor a well-formed `name{labels} value` sample.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parse_line = |line: &str| -> Option<Sample> {
            let (name_part, rest) = match line.find('{') {
                Some(brace) => {
                    let close = line.rfind('}')?;
                    (&line[..brace], Some((&line[brace + 1..close], &line[close + 1..])))
                }
                None => {
                    let space = line.find(' ')?;
                    (&line[..space], None)
                }
            };
            if !valid_metric_name(name_part) {
                return None;
            }
            let (labels, value_part) = match rest {
                Some((label_part, value_part)) => {
                    let mut labels = Vec::new();
                    for pair in split_label_pairs(label_part)? {
                        labels.push(pair);
                    }
                    (labels, value_part)
                }
                None => (Vec::new(), &line[name_part.len()..]),
            };
            let value: f64 = value_part.trim().parse().ok()?;
            Some(Sample {
                name: name_part.to_string(),
                labels,
                value,
            })
        };
        match parse_line(line) {
            Some(sample) => samples.push(sample),
            None => return Err(format!("exposition line {} is malformed: {line:?}", lineno + 1)),
        }
    }
    Ok(samples)
}

/// Splits `a="x",b="y"` into pairs, honoring `\"` and `\\` escapes.
fn split_label_pairs(s: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let name = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next()?.1 != '"' {
            return None;
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end?;
        pairs.push((name, value));
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(pairs)
}

/// A histogram reconstructed from exposition samples.
#[derive(Debug, Clone)]
pub struct ParsedHistogram {
    /// Finite bucket upper bounds, ascending (the `+Inf` bucket is implied).
    pub bounds: Vec<f64>,
    /// Cumulative counts per bucket, `+Inf` last (equals `count`).
    pub cumulative: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl ParsedHistogram {
    /// The half-open bucket range `[lower, upper)` containing the
    /// `q`-quantile observation under the replay harness's percentile
    /// definition (`rank = round(q × (count − 1))`, 0-based), widened by
    /// `widen` buckets on each side. `upper` is `+Inf` when the range
    /// reaches the overflow bucket. Returns `None` on an empty histogram.
    pub fn quantile_bounds(&self, q: f64, widen: usize) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let rank = (q * (self.count - 1) as f64).round() as u64 + 1; // 1-based
        let idx = self.cumulative.partition_point(|&c| c < rank);
        let lower_idx = idx.saturating_sub(widen);
        let upper_idx = idx + widen;
        let lower = if lower_idx == 0 {
            0.0
        } else {
            self.bounds[lower_idx - 1]
        };
        let upper = if upper_idx < self.bounds.len() {
            self.bounds[upper_idx]
        } else {
            f64::INFINITY
        };
        Some((lower, upper))
    }
}

/// Reconstructs the histogram `base_name` (its `_bucket`/`_sum`/`_count`
/// samples) whose labels carry every pair in `filter`. Validates the
/// cumulative bucket counts are monotone and consistent with `_count`.
pub fn extract_histogram(samples: &[Sample], base_name: &str, filter: &[(&str, &str)]) -> Option<ParsedHistogram> {
    let bucket_name = format!("{base_name}_bucket");
    let mut buckets: Vec<(f64, u64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name && s.matches(filter))
        .filter_map(|s| {
            let le = s.label("le")?;
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            Some((le, s.value as u64))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let find = |suffix: &str| {
        samples
            .iter()
            .find(|s| s.name == format!("{base_name}{suffix}") && s.matches(filter))
            .map(|s| s.value)
    };
    let sum = find("_sum")?;
    let count = find("_count")? as u64;
    let (bounds, cumulative): (Vec<f64>, Vec<u64>) = buckets.into_iter().unzip();
    if bounds.last() != Some(&f64::INFINITY)
        || cumulative.windows(2).any(|w| w[0] > w[1])
        || cumulative.last() != Some(&count)
    {
        return None;
    }
    Some(ParsedHistogram {
        bounds: bounds[..bounds.len() - 1].to_vec(),
        cumulative,
        sum,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_upper_bounds_are_exclusive() {
        // Bounds [1, 2, 4]: an observation exactly at a bound must land in
        // the bucket *starting* at that bound, not the one ending there.
        let h = Histogram::new(vec![1.0, 2.0, 4.0].into());
        h.observe(0.5); // [0, 1)
        h.observe(1.0); // [1, 2) — exclusive: not in the first bucket
        h.observe(2.0); // [2, 4)
        h.observe(3.9); // [2, 4)
        assert_eq!(h.bucket_counts(), vec![1, 1, 2, 0]);
    }

    #[test]
    fn histogram_overflow_lands_in_the_inf_bucket() {
        let h = Histogram::new(vec![1.0, 2.0].into());
        h.observe(2.0); // exactly the last finite bound → +Inf bucket
        h.observe(100.0);
        assert_eq!(h.bucket_counts(), vec![0, 0, 2]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_sum_and_count_stay_consistent() {
        let h = Histogram::new(latency_bounds());
        let values = [0.0001, 0.0035, 0.12, 7.5, 0.0];
        for v in values {
            h.observe(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        assert!((h.sum() - values.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(vec![2.0, 1.0].into());
    }

    #[test]
    fn labeled_families_isolate_children() {
        let vec = CounterVec::default();
        vec.with(&[("route", "/score"), ("status", "200")]).add(3);
        vec.with(&[("route", "/score"), ("status", "429")]).inc();
        vec.with(&[("route", "/healthz"), ("status", "200")]).inc();
        assert_eq!(vec.with(&[("route", "/score"), ("status", "200")]).get(), 3);
        assert_eq!(vec.total(), 5);
        assert_eq!(vec.snapshot().len(), 3);
    }

    #[test]
    fn render_parse_round_trip() {
        let registry = MetricsRegistry::new();
        registry
            .responses
            .with(&[("route", "/score"), ("status", "200")])
            .add(7);
        registry.request_duration.with(&[("route", "/score")]).observe(0.0003);
        registry.score_requests.with(&[("version", "1")]).add(7);
        registry.batches.add(2);
        registry.batch_size.observe(3.0);
        registry.queue_depth.set(4.0);
        registry.model_version.set(1.0);
        registry.reloads.with(&[("outcome", "applied")]).inc();
        registry.rejected.with(&[("cause", "rate_limited")]).add(2);
        registry.rejected.with(&[("cause", "queue_full")]).inc();

        let text = registry.render();
        let samples = parse_exposition(&text).expect("rendered exposition must parse");
        let find = |name: &str, filter: &[(&str, &str)]| {
            samples
                .iter()
                .find(|s| s.name == name && s.matches(filter))
                .unwrap_or_else(|| panic!("missing {name} {filter:?} in:\n{text}"))
                .value
        };
        assert_eq!(
            find("er_serve_responses_total", &[("route", "/score"), ("status", "200")]),
            7.0
        );
        assert_eq!(find("er_serve_score_requests_total", &[("version", "1")]), 7.0);
        assert_eq!(find("er_serve_batches_total", &[]), 2.0);
        assert_eq!(find("er_serve_queue_depth", &[]), 4.0);
        assert_eq!(find("er_serve_reloads_total", &[("outcome", "applied")]), 1.0);
        assert_eq!(find("er_serve_rejected_total", &[("cause", "rate_limited")]), 2.0);
        assert_eq!(find("er_serve_rejected_total", &[("cause", "queue_full")]), 1.0);
        assert_eq!(
            find("er_serve_request_duration_seconds_count", &[("route", "/score")]),
            1.0
        );
        // Cumulative +Inf bucket equals the count.
        assert_eq!(
            find(
                "er_serve_request_duration_seconds_bucket",
                &[("route", "/score"), ("le", "+Inf")]
            ),
            1.0
        );
    }

    #[test]
    fn malformed_exposition_lines_are_rejected() {
        assert!(parse_exposition("ok_metric 1\n# comment\n").is_ok());
        assert!(parse_exposition("not a metric line\n").is_err());
        assert!(parse_exposition("bad{unclosed=\"x\" 1\n").is_err());
        assert!(parse_exposition("1leading_digit 2\n").is_err());
    }

    #[test]
    fn extract_histogram_validates_cumulative_counts() {
        let h = Histogram::new(vec![0.001, 0.01].into());
        for v in [0.0005, 0.002, 0.5] {
            h.observe(v);
        }
        let mut out = String::new();
        render_histogram(&mut out, "m", "help", &[("route", "/score".into())], &h, true);
        let samples = parse_exposition(&out).expect("parse");
        let parsed = extract_histogram(&samples, "m", &[("route", "/score")]).expect("extract");
        assert_eq!(parsed.count, 3);
        assert_eq!(parsed.cumulative, vec![1, 2, 3]);
        assert_eq!(parsed.bounds, vec![0.001, 0.01]);
        assert!((parsed.sum - 0.5025).abs() < 1e-12);
        // A filter that matches nothing extracts nothing.
        assert!(extract_histogram(&samples, "m", &[("route", "/other")]).is_none());
    }

    #[test]
    fn quantile_bounds_bracket_the_observations() {
        let h = Histogram::new(vec![0.001, 0.01, 0.1].into());
        for _ in 0..90 {
            h.observe(0.0005); // [0, 0.001)
        }
        for _ in 0..10 {
            h.observe(0.05); // [0.01, 0.1)
        }
        let mut out = String::new();
        render_histogram(&mut out, "m", "h", &[], &h, true);
        let parsed = extract_histogram(&parse_exposition(&out).expect("parse"), "m", &[]).expect("extract");
        assert_eq!(parsed.quantile_bounds(0.5, 0), Some((0.0, 0.001)));
        let (lo, hi) = parsed.quantile_bounds(0.95, 0).expect("p95");
        assert_eq!((lo, hi), (0.01, 0.1));
        // Widening by one bucket relaxes both sides.
        assert_eq!(parsed.quantile_bounds(0.95, 1), Some((0.001, f64::INFINITY)));
    }
}
