//! Versioned persistence of a trained risk model.
//!
//! A [`ModelArtifact`] captures the *full* trained state of a
//! [`LearnRiskModel`] — generated rules, prior expectations, learned rule
//! weights/RSDs, the influence-function shape, per-bucket output RSDs and the
//! VaR configuration — as deterministic JSON. The loader is strict: it
//! refuses artifacts written under a different format version and artifacts
//! whose model fails [`LearnRiskModel::validate`], so a serving process can
//! never come up on a model it would mis-score.

use learnrisk_core::LearnRiskModel;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// The artifact format version this build reads and writes.
///
/// Bump whenever the serialized shape of [`LearnRiskModel`] (or this wrapper)
/// changes incompatibly; old binaries will then reject new artifacts with a
/// [`ArtifactError::VersionMismatch`] instead of misinterpreting them.
pub const FORMAT_VERSION: u32 = 1;

/// A trained risk model packaged for serving.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Format version the artifact was written under (see [`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Human-readable producer tag (crate name/version), for provenance only.
    pub producer: String,
    /// The full trained model state.
    pub model: LearnRiskModel,
}

/// Why an artifact could not be written or loaded.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure while reading or writing the artifact.
    Io(std::io::Error),
    /// The payload is not a well-formed artifact document.
    Malformed(serde::Error),
    /// The artifact was written under a different format version.
    VersionMismatch {
        /// Version recorded in the artifact.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The artifact parsed but its model fails structural validation.
    InvalidModel(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Malformed(e) => write!(f, "malformed artifact: {e}"),
            ArtifactError::VersionMismatch { found, supported } => write!(
                f,
                "artifact format version {found} is not supported by this build (expected {supported}); \
                 re-export the model with a matching er-serve version"
            ),
            ArtifactError::InvalidModel(why) => write!(f, "artifact model failed validation: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl ModelArtifact {
    /// Packages a trained model under the current [`FORMAT_VERSION`].
    pub fn new(model: LearnRiskModel) -> Self {
        Self {
            format_version: FORMAT_VERSION,
            producer: format!("{} {}", env!("CARGO_PKG_NAME"), env!("CARGO_PKG_VERSION")),
            model,
        }
    }

    /// Serializes the artifact as pretty-printed JSON.
    ///
    /// The encoding is deterministic (ordered keys, shortest round-trip float
    /// formatting), so identical models produce byte-identical artifacts.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses and fully validates an artifact document.
    ///
    /// The format version is checked *before* the model payload is decoded,
    /// so a future-format artifact fails with a clear [`ArtifactError::VersionMismatch`]
    /// rather than a confusing field-level parse error.
    pub fn from_json(text: &str) -> Result<Self, ArtifactError> {
        let value = serde::json::parse(text).map_err(ArtifactError::Malformed)?;
        let found: u32 = match value.get("format_version") {
            Some(v) => serde::from_value(v).map_err(ArtifactError::Malformed)?,
            None => {
                return Err(ArtifactError::Malformed(serde::Error::new(
                    "artifact is missing the `format_version` field",
                )))
            }
        };
        if found != FORMAT_VERSION {
            return Err(ArtifactError::VersionMismatch {
                found,
                supported: FORMAT_VERSION,
            });
        }
        let artifact: ModelArtifact = serde::from_value(&value).map_err(ArtifactError::Malformed)?;
        artifact.model.validate().map_err(ArtifactError::InvalidModel)?;
        Ok(artifact)
    }

    /// Writes the artifact to a file, creating parent directories as needed.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads and validates an artifact from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }

    /// Stable content digest of the model payload — see [`model_digest`].
    /// The `producer` tag and `format_version` wrapper are excluded, so two
    /// artifacts carrying the same trained parameters digest identically
    /// regardless of which process exported them.
    pub fn digest(&self) -> String {
        model_digest(&self.model)
    }
}

/// Hex-encoded FNV-1a (64-bit) over the model's deterministic JSON
/// encoding. Because the encoding has ordered keys and shortest-round-trip
/// float formatting, equal parameters produce equal digests and any
/// parameter change (a single rule weight included) changes the digest.
/// The gateway compares this against `GET /healthz` to attest which
/// artifact a backend is actually serving.
pub fn model_digest(model: &LearnRiskModel) -> String {
    let json = serde::json::to_string(model);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use learnrisk_core::{RiskFeatureSet, RiskModelConfig};

    fn tiny_model() -> LearnRiskModel {
        use er_base::Label;
        use er_rulegen::{CmpOp, Condition, Rule};
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 12, 0.95),
            Rule::new(
                vec![Condition::new(1, CmpOp::Le, 0.25), Condition::new(0, CmpOp::Gt, 0.1)],
                Label::Equivalent,
                7,
                0.9,
            ),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.04, 0.96],
            support: vec![12, 7],
        };
        LearnRiskModel::new(fs, RiskModelConfig::default())
    }

    #[test]
    fn json_round_trip_preserves_every_parameter() {
        let mut model = tiny_model();
        // Perturb learnable parameters to non-default values with awkward
        // binary representations.
        model.rule_weights = vec![1.0 / 3.0, 0.1 + 0.2];
        model.rule_rsd = vec![0.123456789012345, 5e-17f64.max(1e-3)];
        model.influence.alpha = 0.2000000000000001;
        model.influence.beta = 3.9999999999999996;
        let artifact = ModelArtifact::new(model);
        let restored = ModelArtifact::from_json(&artifact.to_json()).expect("round trip");
        assert_eq!(restored.format_version, FORMAT_VERSION);
        assert_eq!(restored.model.rule_weights, artifact.model.rule_weights);
        assert_eq!(restored.model.rule_rsd, artifact.model.rule_rsd);
        assert_eq!(restored.model.influence, artifact.model.influence);
        assert_eq!(restored.model.output_rsd, artifact.model.output_rsd);
        assert_eq!(restored.model.features.rules, artifact.model.features.rules);
        assert_eq!(
            restored.model.features.expectations,
            artifact.model.features.expectations
        );
    }

    #[test]
    fn future_format_versions_are_rejected_with_a_clear_error() {
        let artifact = ModelArtifact::new(tiny_model());
        let bumped = artifact.to_json().replace(
            &format!("\"format_version\": {FORMAT_VERSION}"),
            &format!("\"format_version\": {}", FORMAT_VERSION + 1),
        );
        let err = ModelArtifact::from_json(&bumped).unwrap_err();
        match err {
            ArtifactError::VersionMismatch { found, supported } => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
        assert!(err.to_string().contains("format version"), "{err}");
    }

    #[test]
    fn missing_version_and_garbage_are_malformed() {
        assert!(matches!(
            ModelArtifact::from_json("{}"),
            Err(ArtifactError::Malformed(_))
        ));
        assert!(matches!(
            ModelArtifact::from_json("not json"),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_models_fail_validation_on_load() {
        let artifact = ModelArtifact::new(tiny_model());
        // Drop one rule weight: lengths no longer line up with the rules.
        let corrupt = artifact.to_json().replace(
            "\"rule_weights\": [\n      1.0,\n      1.0\n    ]",
            "\"rule_weights\": [\n      1.0\n    ]",
        );
        assert_ne!(corrupt, artifact.to_json(), "corruption must hit the payload");
        match ModelArtifact::from_json(&corrupt) {
            Err(ArtifactError::InvalidModel(why)) => assert!(why.contains("rule_weights"), "{why}"),
            other => panic!("expected InvalidModel, got {other:?}"),
        }
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("er-serve-artifact-test");
        let path = dir.join("nested").join("model.json");
        let artifact = ModelArtifact::new(tiny_model());
        artifact.save(&path).expect("save");
        let loaded = ModelArtifact::load(&path).expect("load");
        assert_eq!(loaded.to_json(), artifact.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }
}
