//! A bounded least-recently-used cache over a slab-backed intrusive list.
//!
//! The serving executor keys one of these per shard on pair id, so repeated
//! pairs in skewed traffic are answered without re-scoring. All operations
//! are `O(1)`: the entries live in a slab (`Vec`) threaded with an intrusive
//! doubly-linked recency list, and a `HashMap` maps keys to slab slots.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded LRU map. Capacity 0 is allowed and caches nothing.
#[derive(Debug, Clone)]
pub struct LruCache<K: Eq + Hash + Copy, V: Copy> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
}

impl<K: Eq + Hash + Copy, V: Copy> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let slot = *self.map.get(key)?;
        self.move_to_front(slot);
        Some(self.nodes[slot].value)
    }

    /// Inserts or refreshes an entry, evicting the least recently used entry
    /// when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.nodes[slot].value = value;
            self.move_to_front(slot);
            return;
        }
        let slot = if self.map.len() == self.capacity {
            // Recycle the LRU slot in place.
            let slot = self.tail;
            self.detach(slot);
            self.map.remove(&self.nodes[slot].key);
            self.nodes[slot].key = key;
            self.nodes[slot].value = value;
            slot
        } else {
            self.nodes.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn move_to_front(&mut self, slot: usize) {
        if self.head != slot {
            self.detach(slot);
            self.attach_front(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert(1u64, 10.0f64);
        cache.insert(2, 20.0);
        assert_eq!(cache.get(&1), Some(10.0)); // 1 is now MRU
        cache.insert(3, 30.0); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(10.0));
        assert_eq!(cache.get(&3), Some(30.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn insert_refreshes_existing_keys() {
        let mut cache = LruCache::new(2);
        cache.insert(1u32, 1i32);
        cache.insert(2, 2);
        cache.insert(1, 11); // refresh value and recency
        cache.insert(3, 3); // evicts 2, not 1
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&3), Some(3));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = LruCache::new(0);
        cache.insert(1u64, 1.0f64);
        assert_eq!(cache.get(&1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn single_slot_cache_keeps_the_latest() {
        let mut cache = LruCache::new(1);
        for k in 0u64..10 {
            cache.insert(k, k as f64);
            assert_eq!(cache.get(&k), Some(k as f64));
            if k > 0 {
                assert_eq!(cache.get(&(k - 1)), None);
            }
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_insert_then_insert_again_stays_empty() {
        // Re-inserting into a capacity-0 cache must not panic or leak slots
        // (the eviction branch must never run when nothing was stored).
        let mut cache = LruCache::new(0);
        for _ in 0..3 {
            cache.insert(42u64, 1.0f64);
            cache.insert(42u64, 2.0f64);
        }
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(&42), None);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn evicted_key_can_be_reinserted() {
        // Eviction recycles the slab slot in place; a re-insert of the
        // evicted key must land in a (possibly recycled) slot with the new
        // value and full recency, not resurrect the stale mapping.
        let mut cache = LruCache::new(2);
        cache.insert(1u64, 10.0f64);
        cache.insert(2, 20.0);
        cache.insert(3, 30.0); // evicts 1
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 11.0); // re-insert the evicted key (evicts 2)
        assert_eq!(cache.get(&1), Some(11.0), "re-inserted key serves the new value");
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&3), Some(30.0));
        assert_eq!(cache.len(), 2);
        // The slab must not have grown beyond capacity while recycling.
        cache.insert(4, 40.0);
        cache.insert(5, 50.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn a_hit_reorders_eviction_to_spare_the_touched_key() {
        // Fill to capacity, touch the oldest entry, then insert: the victim
        // must be the least recently *used* entry, not the oldest insert.
        let mut cache = LruCache::new(3);
        cache.insert(1u64, 1.0f64);
        cache.insert(2, 2.0);
        cache.insert(3, 3.0);
        assert_eq!(cache.get(&1), Some(1.0)); // recency now [1, 3, 2]
        cache.insert(4, 4.0); // must evict 2
        assert_eq!(cache.get(&2), None, "hit on 1 must redirect eviction to 2");
        assert_eq!(cache.get(&1), Some(1.0));
        assert_eq!(cache.get(&3), Some(3.0));
        assert_eq!(cache.get(&4), Some(4.0));
        // Chain of hits: touching 3 then 1 leaves 4 as the victim.
        cache.get(&3);
        cache.get(&1);
        cache.insert(5, 5.0);
        assert_eq!(cache.get(&4), None);
        assert_eq!(cache.get(&3), Some(3.0));
    }

    #[test]
    fn single_slot_refresh_does_not_evict_itself() {
        // Capacity 1 + insert of the *same* key must take the refresh path,
        // not evict-then-reinsert (which would churn the slab pointlessly
        // and, with a buggy detach, corrupt the single-node list).
        let mut cache = LruCache::new(1);
        cache.insert(9u64, 1.0f64);
        cache.insert(9, 2.0);
        assert_eq!(cache.get(&9), Some(2.0));
        assert_eq!(cache.len(), 1);
        // And a hit on the only entry must be a no-op reorder.
        assert_eq!(cache.get(&9), Some(2.0));
        cache.insert(10, 3.0);
        assert_eq!(cache.get(&9), None);
        assert_eq!(cache.get(&10), Some(3.0));
    }

    #[test]
    fn stress_against_a_naive_model() {
        // Mirror the cache against a brute-force recency list.
        let mut cache = LruCache::new(8);
        let mut model: Vec<(u64, f64)> = Vec::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..10_000 {
            // xorshift64* — deterministic operation stream.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let key = (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) % 24; // 24 hot keys
            let value = key as f64 * 1.5;
            if x & 1 == 0 {
                cache.insert(key, value);
                if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                    model.remove(pos);
                }
                model.insert(0, (key, value));
                model.truncate(8);
            } else {
                let expected = model.iter().position(|&(k, _)| k == key).map(|pos| {
                    let entry = model.remove(pos);
                    model.insert(0, entry);
                    entry.1
                });
                assert_eq!(cache.get(&key), expected, "key {key}");
            }
            assert_eq!(cache.len(), model.len());
        }
    }
}
