//! Perf-trajectory regression detection: diffs a current
//! `serve_bench.json` + `train_bench.json` (+ optional `fig13.json`)
//! set against a committed baseline (`out/baseline/*.json`) and classifies
//! every comparable metric.
//!
//! The `bench_diff` binary wraps this module; CI's `perf-gate` job fails
//! when any metric regresses beyond tolerance.  Design rules:
//!
//! * **Ratio metrics** (`aggregation.soa_speedup`,
//!   `single_thread_speedup`) are machine-local ratios of two measurements
//!   taken back-to-back in one process — they are compared even when the
//!   baseline was recorded on different hardware.
//! * **Absolute metrics** (`throughput_rps`, latency percentiles) shift
//!   with the runner, so they are only compared when both runs report the
//!   same `available_parallelism`; otherwise they are skipped with a note.
//! * **Noise guards**: a configurable relative tolerance (default 25%)
//!   plus an absolute latency floor — sub-`latency_floor_us` percentiles
//!   are timer jitter, not signal.
//! * A current run whose `round_trip_bit_exact` is anything but `true`
//!   (false, missing, renamed) always fails: serving correctness is not a
//!   perf tradeoff.  Likewise a comparison that yields zero metrics
//!   (schema drift) or a non-finite metric value is a failure, never a
//!   vacuous pass.
//! * **Front-end block** (`frontend.replay` socket round-trips,
//!   `frontend.reload` latency under hot reload): absolute metrics follow
//!   the same same-hardware + noise-floor rules; the bit-exactness
//!   attestations (`bit_exact`, `bit_exact_per_version`) are hard-gated
//!   like `round_trip_bit_exact` once the committed baseline carries them.

use serde::{json, Value};
use std::fmt;

/// Tunables of a diff run.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative worsening beyond which a metric regresses (0.25 = 25%).
    pub tolerance: f64,
    /// Latency percentiles below this many microseconds (in both runs) are
    /// skipped as timer jitter.
    pub latency_floor_us: f64,
    /// Tolerance multiplier applied to ratio metrics when the two runs
    /// report different hardware (`available_parallelism`) — speedup ratios
    /// are machine-local but their magnitude still shifts with cache sizes
    /// and ALU latencies, so the cross-hardware gate is looser (it still
    /// catches halvings, the signature of a broken hot path).
    pub cross_hardware_factor: f64,
    /// Stage runtimes below this many seconds (in both runs) are skipped as
    /// scheduler jitter — the fig13 analogue of `latency_floor_us`.
    pub runtime_floor_secs: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.25,
            latency_floor_us: 20.0,
            cross_hardware_factor: 2.0,
            runtime_floor_secs: 0.01,
        }
    }
}

/// Which direction is better for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are better (throughput, speedups).
    HigherIsBetter,
    /// Smaller numbers are better (latency).
    LowerIsBetter,
}

/// Classification of one metric's baseline → current movement.
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// Within tolerance.
    Ok,
    /// Better than baseline beyond tolerance — a baseline-refresh candidate.
    Improved,
    /// Worse than baseline beyond tolerance — fails the gate.
    Regressed,
    /// Not compared, with the reason.
    Skipped(String),
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Dotted path identifying the metric (e.g.
    /// `serve.runs_uncached[threads=2].throughput_rps`).
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Metric direction.
    pub direction: Direction,
    /// Relative change in the *better* direction: positive = improvement.
    pub change: f64,
    /// Classification under the configured tolerance.
    pub status: Status,
}

/// The full diff of one baseline/current pair.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Every metric considered, in extraction order.
    pub metrics: Vec<MetricDiff>,
    /// Context notes (hardware mismatches, unmatched configurations).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Metrics that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&MetricDiff> {
        self.metrics.iter().filter(|m| m.status == Status::Regressed).collect()
    }

    /// Metrics that improved beyond tolerance (baseline-refresh candidates).
    pub fn improvements(&self) -> Vec<&MetricDiff> {
        self.metrics.iter().filter(|m| m.status == Status::Improved).collect()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<58} {:>14} {:>14} {:>9}  Status",
            "Metric", "Baseline", "Current", "Change"
        )?;
        for m in &self.metrics {
            let status = match &m.status {
                Status::Ok => "ok".to_string(),
                Status::Improved => "IMPROVED".to_string(),
                Status::Regressed => "REGRESSED".to_string(),
                Status::Skipped(reason) => format!("skipped ({reason})"),
            };
            writeln!(
                f,
                "{:<58} {:>14.4} {:>14.4} {:>+8.1}%  {}",
                m.name,
                m.baseline,
                m.current,
                m.change * 100.0,
                status
            )?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        let regressions = self.regressions().len();
        let improvements = self.improvements().len();
        writeln!(
            f,
            "summary: {} metrics, {} regressed, {} improved",
            self.metrics.len(),
            regressions,
            improvements
        )?;
        if regressions > 0 {
            writeln!(
                f,
                "PERF GATE: FAIL — investigate or (if intended) refresh out/baseline/"
            )?;
        } else {
            writeln!(f, "PERF GATE: PASS")?;
            if improvements > 0 {
                writeln!(
                    f,
                    "hint: improvements beyond tolerance — consider refreshing the baseline \
                     (`cargo run -p er-bench --release --bin bench_diff -- --write-baseline`)"
                )?;
            }
        }
        Ok(())
    }
}

/// Reads a numeric field from a JSON value tree.
fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn field_num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(num)
}

/// Classifies one metric under the given relative tolerance.
fn classify(name: &str, baseline: f64, current: f64, direction: Direction, tolerance: f64) -> MetricDiff {
    // Relative change in the better direction: positive = improvement.
    let change = if baseline.abs() > 0.0 {
        match direction {
            Direction::HigherIsBetter => (current - baseline) / baseline,
            Direction::LowerIsBetter => (baseline - current) / baseline,
        }
    } else {
        0.0
    };
    let status = if !baseline.is_finite() || !current.is_finite() {
        // A non-finite perf metric means the benchmark itself is broken —
        // that must fail the gate, not sail through as "no change".
        Status::Regressed
    } else if baseline.abs() == 0.0 {
        Status::Skipped("baseline is zero".into())
    } else if change < -tolerance {
        Status::Regressed
    } else if change > tolerance {
        Status::Improved
    } else {
        Status::Ok
    };
    MetricDiff {
        name: name.to_string(),
        baseline,
        current,
        direction,
        change,
        status,
    }
}

fn push_metric(
    report: &mut DiffReport,
    name: &str,
    baseline: Option<f64>,
    current: Option<f64>,
    direction: Direction,
    tolerance: f64,
) {
    match (baseline, current) {
        (Some(b), Some(c)) => report.metrics.push(classify(name, b, c, direction, tolerance)),
        // A gated signal the baseline measured has vanished from the current
        // run — that is schema drift disarming the gate, and must fail.
        (Some(b), None) => report.metrics.push(MetricDiff {
            name: name.to_string(),
            baseline: b,
            current: f64::NAN,
            direction,
            change: -1.0,
            status: Status::Regressed,
        }),
        // A metric the baseline never measured (newly added): nothing to
        // compare yet — note it so the baseline gets refreshed.
        _ => report.notes.push(format!(
            "{name}: absent from the baseline, not compared — refresh out/baseline/"
        )),
    }
}

/// Whether both runs report the same CPU budget — absolute throughput and
/// latency numbers are only comparable when they do.
fn same_hardware(baseline: &Value, current: &Value) -> bool {
    match (
        field_num(baseline, "available_parallelism"),
        field_num(current, "available_parallelism"),
    ) {
        (Some(b), Some(c)) => b == c,
        _ => false,
    }
}

/// Finds the element of a JSON sequence whose `key` field equals `value`.
fn find_by<'v>(seq: Option<&'v Value>, key: &str, value: f64) -> Option<&'v Value> {
    seq?.as_seq()?.iter().find(|e| field_num(e, key) == Some(value))
}

/// Diffs two `train_bench.json` trees into `report`.
pub fn diff_train(baseline: &Value, current: &Value, config: &DiffConfig, report: &mut DiffReport) {
    let ratio_tolerance = if same_hardware(baseline, current) {
        config.tolerance
    } else {
        report.notes.push(format!(
            "train: available_parallelism differs between baseline and current run; \
             ratio metrics gated at {:.0}% instead of {:.0}%",
            config.tolerance * config.cross_hardware_factor * 100.0,
            config.tolerance * 100.0
        ));
        config.tolerance * config.cross_hardware_factor
    };
    push_metric(
        report,
        "train.aggregation.soa_speedup",
        baseline.get("aggregation").and_then(|a| field_num(a, "soa_speedup")),
        current.get("aggregation").and_then(|a| field_num(a, "soa_speedup")),
        Direction::HigherIsBetter,
        ratio_tolerance,
    );
    let base_points = baseline.get("points").and_then(Value::as_seq).unwrap_or(&[]);
    for point in base_points {
        let Some(inputs) = field_num(point, "inputs") else {
            continue;
        };
        let Some(matching) = find_by(current.get("points"), "inputs", inputs) else {
            report
                .notes
                .push(format!("train.points[inputs={inputs}]: no matching current point"));
            continue;
        };
        push_metric(
            report,
            &format!("train.points[inputs={inputs}].single_thread_speedup"),
            field_num(point, "single_thread_speedup"),
            field_num(matching, "single_thread_speedup"),
            Direction::HigherIsBetter,
            ratio_tolerance,
        );
    }
}

/// Diffs two `serve_bench.json` trees into `report`.
pub fn diff_serve(baseline: &Value, current: &Value, config: &DiffConfig, report: &mut DiffReport) {
    // Serving correctness is not a perf tradeoff: anything other than an
    // explicit `true` round-trip flag in the current run (false, missing, or
    // a renamed field) fails the gate outright.
    if current.get("round_trip_bit_exact") != Some(&Value::Bool(true)) {
        report.metrics.push(MetricDiff {
            name: "serve.round_trip_bit_exact".into(),
            baseline: 1.0,
            current: 0.0,
            direction: Direction::HigherIsBetter,
            change: -1.0,
            status: Status::Regressed,
        });
    }
    let hardware_matches = same_hardware(baseline, current);
    let ratio_tolerance = if hardware_matches {
        config.tolerance
    } else {
        config.tolerance * config.cross_hardware_factor
    };
    if !hardware_matches {
        report.notes.push(
            "serve: available_parallelism differs between baseline and current run; absolute \
             throughput/latency metrics skipped (ratio metrics still gated, loosened)"
                .into(),
        );
    }
    push_metric(
        report,
        "serve.aggregation.soa_speedup",
        baseline.get("aggregation").and_then(|a| field_num(a, "soa_speedup")),
        current.get("aggregation").and_then(|a| field_num(a, "soa_speedup")),
        Direction::HigherIsBetter,
        ratio_tolerance,
    );
    for mode in ["runs_uncached", "runs_cached"] {
        let base_runs = baseline.get(mode).and_then(Value::as_seq).unwrap_or(&[]);
        for run in base_runs {
            let Some(threads) = field_num(run, "threads") else {
                continue;
            };
            let Some(matching) = find_by(current.get(mode), "threads", threads) else {
                report
                    .notes
                    .push(format!("serve.{mode}[threads={threads}]: no matching current run"));
                continue;
            };
            let prefix = format!("serve.{mode}[threads={threads}]");
            if !hardware_matches {
                continue;
            }
            diff_run_metrics(report, &prefix, run, matching, config);
        }
    }
    diff_frontend(baseline, current, config, hardware_matches, report);
    diff_gateway(baseline, current, config, hardware_matches, report);
}

/// Compares one replay run's absolute metrics (`throughput_rps` plus the
/// latency percentiles under the noise floor) — shared by the in-process
/// replay modes and the HTTP front-end blocks.
fn diff_run_metrics(report: &mut DiffReport, prefix: &str, base_run: &Value, current_run: &Value, config: &DiffConfig) {
    push_metric(
        report,
        &format!("{prefix}.throughput_rps"),
        field_num(base_run, "throughput_rps"),
        field_num(current_run, "throughput_rps"),
        Direction::HigherIsBetter,
        config.tolerance,
    );
    for pct in ["p50_us", "p95_us", "p99_us"] {
        let base_latency = base_run.get("latency").and_then(|l| field_num(l, pct));
        let current_latency = current_run.get("latency").and_then(|l| field_num(l, pct));
        if let (Some(b), Some(c)) = (base_latency, current_latency) {
            if b < config.latency_floor_us && c < config.latency_floor_us {
                report.metrics.push(MetricDiff {
                    name: format!("{prefix}.latency.{pct}"),
                    baseline: b,
                    current: c,
                    direction: Direction::LowerIsBetter,
                    change: 0.0,
                    status: Status::Skipped(format!("below {}µs noise floor", config.latency_floor_us)),
                });
                continue;
            }
        }
        push_metric(
            report,
            &format!("{prefix}.latency.{pct}"),
            base_latency,
            current_latency,
            Direction::LowerIsBetter,
            config.tolerance,
        );
    }
}

/// Diffs the HTTP front-end block (`frontend.replay` socket round-trip
/// latency, `frontend.replay_metrics_off` instrumentation-off control,
/// `frontend.reload` latency-under-reload, the `frontend.tracing` A/B).
/// Correctness attestations (`bit_exact`, `bit_exact_per_version`, the
/// `/metrics` scrape and rate-limit smoke flags, the tracing
/// reconciliations, the chaos-phase invariants — no severed connections,
/// panic counters reconciled, bit-exactness across supervisor restarts,
/// the old version serving through torn reloads, deadline shedding
/// bounding p99) are hard-gated like `round_trip_bit_exact` *once
/// the baseline carries them*: from then on a current run where they are
/// false, renamed or missing fails the gate — an attested signal cannot
/// silently stop being attested.  `metrics_on_relative_throughput` and
/// `tracing.tracing_on_relative_throughput` (the zero-overhead claims:
/// instrumented throughput over its uninstrumented control) are
/// machine-local ratios, so they are gated even cross-hardware, loosened.
fn diff_frontend(
    baseline: &Value,
    current: &Value,
    config: &DiffConfig,
    hardware_matches: bool,
    report: &mut DiffReport,
) {
    let Some(base_front) = baseline.get("frontend") else {
        if current.get("frontend").is_some() {
            report
                .notes
                .push("serve.frontend: absent from the baseline, not compared — refresh out/baseline/".to_string());
        }
        return;
    };
    let current_front = current.get("frontend");
    for (section, flag) in [
        ("replay", "bit_exact"),
        ("reload", "bit_exact_per_version"),
        ("metrics", "scrape_parsed"),
        ("metrics", "reconciles_with_replay"),
        ("metrics", "histogram_reconciled"),
        ("rate_limit", "limited_429"),
        ("rate_limit", "headers_present"),
        ("rate_limit", "second_client_unaffected"),
        ("tracing", "span_counts_match"),
        ("tracing", "spans_nest_within_totals"),
        ("tracing", "stage_taxonomy_complete"),
        ("tracing", "totals_bracket_replay"),
        ("tracing", "chrome_export_parsed"),
        ("chaos", "zero_severed_connections"),
        ("chaos", "panics_reconciled"),
        ("chaos", "bit_exact_across_restarts"),
        ("chaos", "old_version_served_throughout"),
        ("chaos", "deadline_shedding_bounds_p99"),
    ] {
        let attested_in_baseline = base_front.get(section).and_then(|s| s.get(flag)).is_some();
        let current_flag = current_front.and_then(|f| f.get(section)).and_then(|s| s.get(flag));
        if attested_in_baseline && current_flag != Some(&Value::Bool(true)) {
            report.metrics.push(MetricDiff {
                name: format!("serve.frontend.{section}.{flag}"),
                baseline: 1.0,
                current: 0.0,
                direction: Direction::HigherIsBetter,
                change: -1.0,
                status: Status::Regressed,
            });
        }
    }
    // The high-connection-count series: every entry present in the baseline
    // must exist in the current run (matched by connection count) with its
    // three attestations true — holding 1024+ mostly-idle connections with
    // zero severed and bit-exact scores is a capability, not a perf number,
    // so it is hard-gated like the flags above.
    let base_series = base_front
        .get("connections")
        .and_then(|c| c.get("series"))
        .and_then(Value::as_seq)
        .unwrap_or(&[]);
    for base_entry in base_series {
        let Some(count) = field_num(base_entry, "connections") else {
            continue;
        };
        let current_entry = find_by(
            current_front
                .and_then(|f| f.get("connections"))
                .and_then(|c| c.get("series")),
            "connections",
            count,
        );
        for flag in ["all_2xx", "zero_severed", "bit_exact"] {
            if base_entry.get(flag).is_none() {
                continue;
            }
            if current_entry.and_then(|e| e.get(flag)) != Some(&Value::Bool(true)) {
                report.metrics.push(MetricDiff {
                    name: format!("serve.frontend.connections[{count}].{flag}"),
                    baseline: 1.0,
                    current: 0.0,
                    direction: Direction::HigherIsBetter,
                    change: -1.0,
                    status: Status::Regressed,
                });
            }
        }
        // Accept-to-first-byte latency is an absolute number; gate it only
        // on matching hardware, with the usual noise floor.
        if let Some(current_entry) = current_entry {
            if hardware_matches {
                for (metric, pct) in [("accept_to_first_byte", "p50_us"), ("accept_to_first_byte", "p99_us")] {
                    let base_latency = base_entry.get(metric).and_then(|l| field_num(l, pct));
                    let current_latency = current_entry.get(metric).and_then(|l| field_num(l, pct));
                    if let (Some(b), Some(c)) = (base_latency, current_latency) {
                        if b < config.latency_floor_us && c < config.latency_floor_us {
                            continue;
                        }
                    }
                    push_metric(
                        report,
                        &format!("serve.frontend.connections[{count}].{metric}.{pct}"),
                        base_latency,
                        current_latency,
                        Direction::LowerIsBetter,
                        config.tolerance,
                    );
                }
            }
        }
    }
    let ratio_tolerance = if hardware_matches {
        config.tolerance
    } else {
        config.tolerance * config.cross_hardware_factor
    };
    if base_front.get("metrics_on_relative_throughput").is_some() || current_front.is_some() {
        push_metric(
            report,
            "serve.frontend.metrics_on_relative_throughput",
            field_num(base_front, "metrics_on_relative_throughput"),
            current_front.and_then(|f| field_num(f, "metrics_on_relative_throughput")),
            Direction::HigherIsBetter,
            ratio_tolerance,
        );
    }
    // The tracing overhead ratio mirrors the metrics one: back-to-back A/B in
    // one process, so gated even cross-hardware (loosened).
    let base_tracing_ratio = base_front
        .get("tracing")
        .and_then(|t| field_num(t, "tracing_on_relative_throughput"));
    let current_tracing_ratio = current_front
        .and_then(|f| f.get("tracing"))
        .and_then(|t| field_num(t, "tracing_on_relative_throughput"));
    if base_tracing_ratio.is_some() || current_tracing_ratio.is_some() {
        push_metric(
            report,
            "serve.frontend.tracing.tracing_on_relative_throughput",
            base_tracing_ratio,
            current_tracing_ratio,
            Direction::HigherIsBetter,
            ratio_tolerance,
        );
    }
    if !hardware_matches {
        return;
    }
    for section in ["replay", "replay_metrics_off", "reload"] {
        let (Some(base_run), Some(current_run)) = (base_front.get(section), current_front.and_then(|f| f.get(section)))
        else {
            continue;
        };
        diff_run_metrics(
            report,
            &format!("serve.frontend.{section}"),
            base_run,
            current_run,
            config,
        );
    }
    // The tracing A/B replays are absolute socket runs like the sections
    // above, one level deeper in the tree.
    for section in ["replay_trace_off", "replay_trace_on"] {
        let (Some(base_run), Some(current_run)) = (
            base_front.get("tracing").and_then(|t| t.get(section)),
            current_front
                .and_then(|f| f.get("tracing"))
                .and_then(|t| t.get(section)),
        ) else {
            continue;
        };
        diff_run_metrics(
            report,
            &format!("serve.frontend.tracing.{section}"),
            base_run,
            current_run,
            config,
        );
    }
}

/// Diffs the multi-process gateway block (`gateway.series` scaling,
/// `gateway.scaling_2x`, the hedging smoke and both canary cycles).
///
/// The attestation flags — `multi_process`, the per-entry
/// `all_2xx`/`bit_exact`, `hedging.hedge_fired`, the canary cycles'
/// `promotion_fired`/`rollback_fired`/`zero_severed`/`bit_exact`/
/// `digests_converged` — are hard-gated like the front-end flags once the
/// baseline carries them: a current run where they are false, missing or
/// renamed (including the whole phase going absent because the backend
/// binary was not built) fails the gate. `scaling_2x` is a machine-local
/// ratio of two back-to-back replays, so it is gated even cross-hardware
/// (loosened); the series' absolute throughput/latency numbers follow the
/// usual same-hardware rule.
fn diff_gateway(
    baseline: &Value,
    current: &Value,
    config: &DiffConfig,
    hardware_matches: bool,
    report: &mut DiffReport,
) {
    // `gateway` is optional in the schema (serialized as null when the
    // backend binary is missing) — treat null exactly like absent.
    let non_null = |v: &Value| !matches!(v, Value::Null);
    let base_gateway = baseline.get("gateway").filter(|v| non_null(v));
    let current_gateway = current.get("gateway").filter(|v| non_null(v));
    let Some(base_gateway) = base_gateway else {
        if current_gateway.is_some() {
            report
                .notes
                .push("serve.gateway: absent from the baseline, not compared — refresh out/baseline/".to_string());
        }
        return;
    };
    let gate_flag =
        |report: &mut DiffReport, name: String, attested_in_baseline: bool, current_flag: Option<&Value>| {
            if attested_in_baseline && current_flag != Some(&Value::Bool(true)) {
                report.metrics.push(MetricDiff {
                    name,
                    baseline: 1.0,
                    current: 0.0,
                    direction: Direction::HigherIsBetter,
                    change: -1.0,
                    status: Status::Regressed,
                });
            }
        };
    gate_flag(
        report,
        "serve.gateway.multi_process".into(),
        base_gateway.get("multi_process").is_some(),
        current_gateway.and_then(|g| g.get("multi_process")),
    );
    for (section, flags) in [
        ("hedging", &["hedge_fired", "all_2xx", "bit_exact"][..]),
        (
            "canary_promotion",
            &["promotion_fired", "zero_severed", "bit_exact", "digests_converged"][..],
        ),
        (
            "canary_rollback",
            &["rollback_fired", "zero_severed", "bit_exact", "digests_converged"][..],
        ),
    ] {
        for flag in flags {
            gate_flag(
                report,
                format!("serve.gateway.{section}.{flag}"),
                base_gateway.get(section).and_then(|s| s.get(flag)).is_some(),
                current_gateway.and_then(|g| g.get(section)).and_then(|s| s.get(flag)),
            );
        }
    }
    // Scaling series: attestations hard-gated per entry (matched by backend
    // count), absolute numbers same-hardware only.
    let base_series = base_gateway.get("series").and_then(Value::as_seq).unwrap_or(&[]);
    for base_entry in base_series {
        let Some(backends) = field_num(base_entry, "backends") else {
            continue;
        };
        let current_entry = find_by(current_gateway.and_then(|g| g.get("series")), "backends", backends);
        for flag in ["all_2xx", "bit_exact"] {
            gate_flag(
                report,
                format!("serve.gateway.series[backends={backends}].{flag}"),
                base_entry.get(flag).is_some(),
                current_entry.and_then(|e| e.get(flag)),
            );
        }
        if let Some(current_entry) = current_entry {
            if hardware_matches {
                diff_run_metrics(
                    report,
                    &format!("serve.gateway.series[backends={backends}]"),
                    base_entry,
                    current_entry,
                    config,
                );
            }
        } else {
            report.notes.push(format!(
                "serve.gateway.series[backends={backends}]: no matching current entry"
            ));
        }
    }
    // The near-linear-scaling claim: aggregate throughput at 2 backends over
    // 1, measured back-to-back in one process — a ratio metric.
    let ratio_tolerance = if hardware_matches {
        config.tolerance
    } else {
        config.tolerance * config.cross_hardware_factor
    };
    push_metric(
        report,
        "serve.gateway.scaling_2x",
        field_num(base_gateway, "scaling_2x"),
        current_gateway.and_then(|g| field_num(g, "scaling_2x")),
        Direction::HigherIsBetter,
        ratio_tolerance,
    );
}

/// Diffs two `fig13.json` trees (the scalability run) into `report`.
///
/// Points are matched by `(stage, training_size)`.  Only the per-thread
/// stages are gated: `risk_training[tN]` runtimes (lower is better, skipped
/// when both sit under `runtime_floor_secs`) and `engine_scoring[tN]`
/// batched-scoring throughput (higher is better).  The headline
/// `rule_generation` / `risk_training` stages stay informational — they are
/// single measurements of multi-second phases whose drift the per-thread
/// stages already cover.  All fig13 metrics are absolute wall-clock numbers,
/// so they are only compared on matching hardware.
pub fn diff_fig13(baseline: &Value, current: &Value, config: &DiffConfig, report: &mut DiffReport) {
    if !same_hardware(baseline, current) {
        report.notes.push(
            "fig13: available_parallelism differs between baseline and current run; \
             scalability metrics skipped (absolute wall-clock numbers)"
                .into(),
        );
        return;
    }
    let base_points = baseline.get("points").and_then(Value::as_seq).unwrap_or(&[]);
    let current_points = current.get("points").and_then(Value::as_seq).unwrap_or(&[]);
    for point in base_points {
        let (Some(stage), Some(size)) = (
            point.get("stage").and_then(Value::as_str),
            field_num(point, "training_size"),
        ) else {
            continue;
        };
        let per_thread_training = stage.starts_with("risk_training[");
        let engine_scoring = stage.starts_with("engine_scoring[");
        if !per_thread_training && !engine_scoring {
            continue;
        }
        let Some(matching) = current_points.iter().find(|p| {
            p.get("stage").and_then(Value::as_str) == Some(stage) && field_num(p, "training_size") == Some(size)
        }) else {
            report
                .notes
                .push(format!("fig13.{stage}[size={size}]: no matching current point"));
            continue;
        };
        if per_thread_training {
            let base_runtime = field_num(point, "runtime_secs");
            let current_runtime = field_num(matching, "runtime_secs");
            if let (Some(b), Some(c)) = (base_runtime, current_runtime) {
                if b < config.runtime_floor_secs && c < config.runtime_floor_secs {
                    report.metrics.push(MetricDiff {
                        name: format!("fig13.{stage}[size={size}].runtime_secs"),
                        baseline: b,
                        current: c,
                        direction: Direction::LowerIsBetter,
                        change: 0.0,
                        status: Status::Skipped(format!("below {}s runtime floor", config.runtime_floor_secs)),
                    });
                    continue;
                }
            }
            push_metric(
                report,
                &format!("fig13.{stage}[size={size}].runtime_secs"),
                base_runtime,
                current_runtime,
                Direction::LowerIsBetter,
                config.tolerance,
            );
        } else {
            push_metric(
                report,
                &format!("fig13.{stage}[size={size}].throughput_pairs_per_sec"),
                field_num(point, "throughput_pairs_per_sec"),
                field_num(matching, "throughput_pairs_per_sec"),
                Direction::HigherIsBetter,
                config.tolerance,
            );
        }
    }
}

/// Parses and diffs the benchmark files; `*_json` arguments are the raw
/// file contents (baseline, current) for (serve, train, fig13).  The fig13
/// pair is optional — `None` means the file does not exist on that side.  A
/// baseline that carries `fig13.json` while the current run lost it is
/// schema drift disarming the gate and fails; the reverse (a baseline
/// recorded before fig13 was gated) only notes a refresh.
pub fn diff_all(
    serve_baseline: &str,
    serve_current: &str,
    train_baseline: &str,
    train_current: &str,
    fig13_baseline: Option<&str>,
    fig13_current: Option<&str>,
    config: &DiffConfig,
) -> Result<DiffReport, String> {
    let parse = |label: &str, text: &str| json::parse(text).map_err(|e| format!("{label}: {e}"));
    let serve_base = parse("baseline serve_bench.json", serve_baseline)?;
    let serve_cur = parse("current serve_bench.json", serve_current)?;
    let train_base = parse("baseline train_bench.json", train_baseline)?;
    let train_cur = parse("current train_bench.json", train_current)?;
    let mut report = DiffReport::default();
    diff_train(&train_base, &train_cur, config, &mut report);
    diff_serve(&serve_base, &serve_cur, config, &mut report);
    match (fig13_baseline, fig13_current) {
        (Some(base), Some(cur)) => {
            let fig13_base = parse("baseline fig13.json", base)?;
            let fig13_cur = parse("current fig13.json", cur)?;
            diff_fig13(&fig13_base, &fig13_cur, config, &mut report);
        }
        (Some(_), None) => report.metrics.push(MetricDiff {
            name: "fig13.points".into(),
            baseline: 1.0,
            current: f64::NAN,
            direction: Direction::HigherIsBetter,
            change: -1.0,
            status: Status::Regressed,
        }),
        (None, Some(_)) => report
            .notes
            .push("fig13: absent from the baseline, not compared — refresh out/baseline/".into()),
        (None, None) => {}
    }
    // A gate that compared nothing protects nothing: a schema drift that
    // empties the metric set must be a hard error, not a vacuous pass.
    if report.metrics.is_empty() {
        return Err(format!(
            "no comparable metrics found — benchmark JSON schema drifted? notes: {}",
            report.notes.join("; ")
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_json(speedup: f64, agg: f64) -> String {
        format!(
            r#"{{"available_parallelism": 1, "aggregation": {{"soa_speedup": {agg}}},
                 "points": [{{"inputs": 500, "single_thread_speedup": {speedup}}}]}}"#
        )
    }

    fn serve_json(parallelism: u32, rps: f64, p99: f64, agg: f64, bit_exact: bool) -> String {
        format!(
            r#"{{"available_parallelism": {parallelism}, "round_trip_bit_exact": {bit_exact},
                 "aggregation": {{"soa_speedup": {agg}}},
                 "runs_uncached": [{{"threads": 1, "throughput_rps": {rps},
                    "latency": {{"p50_us": 1.0, "p95_us": 2.0, "p99_us": {p99}}}}}],
                 "runs_cached": []}}"#
        )
    }

    fn run(serve_b: &str, serve_c: &str, train_b: &str, train_c: &str) -> DiffReport {
        diff_all(serve_b, serve_c, train_b, train_c, None, None, &DiffConfig::default()).expect("parse")
    }

    fn run_with_fig13(serve: &str, train: &str, fig13_b: Option<&str>, fig13_c: Option<&str>) -> DiffReport {
        diff_all(serve, serve, train, train, fig13_b, fig13_c, &DiffConfig::default()).expect("parse")
    }

    #[test]
    fn identical_runs_pass() {
        let (s, t) = (serve_json(1, 1e6, 50.0, 1.5, true), train_json(15.0, 1.5));
        let report = run(&s, &s, &t, &t);
        assert!(report.regressions().is_empty(), "{report}");
        assert!(report.improvements().is_empty());
        assert!(report.metrics.len() >= 5);
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 0.9e6, 58.0, 1.4, true), // -10% rps, +16% p99
            &train_json(15.0, 1.5),
            &train_json(13.0, 1.4),
        );
        assert!(report.regressions().is_empty(), "{report}");
    }

    #[test]
    fn injected_throughput_regression_fails() {
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 0.5e6, 50.0, 1.5, true), // -50% throughput
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert!(regressed[0].name.contains("throughput_rps"));
    }

    #[test]
    fn injected_speedup_regression_fails_even_across_hardware() {
        // Different CPU budgets: absolute metrics skipped, ratio metrics
        // still gated — a halved factorization speedup must fail.
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(4, 4e6, 10.0, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(6.0, 1.5), // -60% single-thread speedup
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert!(regressed[0].name.contains("single_thread_speedup"));
        assert!(report.notes.iter().any(|n| n.contains("available_parallelism")));
        assert!(!report.metrics.iter().any(|m| m.name.contains("throughput")));
    }

    #[test]
    fn latency_regressions_beyond_tolerance_fail() {
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 1e6, 90.0, 1.5, true), // +80% p99
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert!(regressed[0].name.contains("p99"));
    }

    #[test]
    fn sub_floor_latencies_are_noise_not_signal() {
        // p99 "doubles" from 1µs to 2µs: below the 20µs floor, skipped.
        let report = run(
            &serve_json(1, 1e6, 1.0, 1.5, true),
            &serve_json(1, 1e6, 2.0, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
        assert!(report
            .metrics
            .iter()
            .any(|m| m.name.contains("p99") && matches!(m.status, Status::Skipped(_))));
    }

    #[test]
    fn broken_round_trip_fails_the_gate() {
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 1e6, 50.0, 1.5, false),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report
            .regressions()
            .iter()
            .any(|m| m.name == "serve.round_trip_bit_exact"));
    }

    #[test]
    fn improvements_are_flagged_for_baseline_refresh() {
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 2e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty());
        assert_eq!(report.improvements().len(), 1);
        assert!(report.to_string().contains("refreshing the baseline"));
    }

    #[test]
    fn unmatched_configurations_note_but_do_not_fail() {
        let base_train = r#"{"available_parallelism": 1, "aggregation": {"soa_speedup": 1.5},
            "points": [{"inputs": 9999, "single_thread_speedup": 12.0}]}"#;
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 1e6, 50.0, 1.5, true),
            base_train,
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
        assert!(report.notes.iter().any(|n| n.contains("inputs=9999")));
    }

    #[test]
    fn malformed_json_is_an_error_not_a_pass() {
        let err = diff_all("{", "{}", "{}", "{}", None, None, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("serve_bench"), "{err}");
    }

    #[test]
    fn a_vanished_gated_metric_fails_the_gate() {
        // The baseline measured soa_speedup but the current file lost it
        // (field renamed/dropped): partial schema drift must fail, not
        // degrade to a note while the gate stays green.
        let current_train = r#"{"available_parallelism": 1, "aggregation": {},
            "points": [{"inputs": 500, "single_thread_speedup": 15.0}]}"#;
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            current_train,
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert_eq!(regressed[0].name, "train.aggregation.soa_speedup");
        // The reverse direction (baseline lacks a newly added metric) only
        // notes a refresh — there is nothing to compare against yet.
        let old_baseline_train = r#"{"available_parallelism": 1,
            "points": [{"inputs": 500, "single_thread_speedup": 15.0}]}"#;
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 1e6, 50.0, 1.5, true),
            old_baseline_train,
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
        assert!(report.notes.iter().any(|n| n.contains("absent from the baseline")));
    }

    #[test]
    fn schema_drift_that_empties_the_metric_set_is_an_error() {
        // Current files that parse but expose no recognizable metrics (e.g.
        // after a field rename) must be a hard error, not a vacuous pass.
        let bare_serve = r#"{"round_trip_bit_exact": true}"#;
        let err = diff_all(bare_serve, bare_serve, "{}", "{}", None, None, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("no comparable metrics"), "{err}");
    }

    #[test]
    fn missing_round_trip_flag_fails_the_gate() {
        // A current serve file without the bit-exactness flag (renamed or
        // dropped) must fail — correctness attestation cannot silently vanish.
        let current = r#"{"available_parallelism": 1,
            "aggregation": {"soa_speedup": 1.5}, "runs_uncached": [], "runs_cached": []}"#;
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            current,
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report
            .regressions()
            .iter()
            .any(|m| m.name == "serve.round_trip_bit_exact"));
    }

    fn serve_json_with_frontend(
        parallelism: u32,
        reload_p99: f64,
        replay_bit_exact: bool,
        reload_bit_exact: bool,
    ) -> String {
        format!(
            r#"{{"available_parallelism": {parallelism}, "round_trip_bit_exact": true,
                 "aggregation": {{"soa_speedup": 1.5}},
                 "runs_uncached": [], "runs_cached": [],
                 "frontend": {{
                    "replay": {{"throughput_rps": 5000.0, "bit_exact": {replay_bit_exact},
                                "latency": {{"p50_us": 80.0, "p95_us": 150.0, "p99_us": 200.0}}}},
                    "reload": {{"throughput_rps": 4500.0, "bit_exact_per_version": {reload_bit_exact},
                                "latency": {{"p50_us": 85.0, "p95_us": 160.0, "p99_us": {reload_p99}}}}}
                 }}}}"#
        )
    }

    #[test]
    fn latency_exactly_at_the_noise_floor_is_signal_not_noise() {
        // The floor is exclusive: percentiles *at* the 20µs floor are
        // compared (only strictly-below-floor pairs are timer jitter), so a
        // regression from exactly 20µs must fail, not be skipped.
        let report = run(
            &serve_json(1, 1e6, 20.0, 1.5, true),
            &serve_json(1, 1e6, 40.0, 1.5, true), // +100% p99 from the boundary
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert!(regressed[0].name.contains("p99"));
        // One microsecond under the floor on both sides: skipped.
        let report = run(
            &serve_json(1, 1e6, 19.0, 1.5, true),
            &serve_json(1, 1e6, 19.99, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
        assert!(report
            .metrics
            .iter()
            .any(|m| m.name.contains("p99") && matches!(m.status, Status::Skipped(_))));
    }

    #[test]
    fn cross_hardware_ratio_drift_within_loosened_tolerance_passes() {
        // Different CPU budgets loosen ratio gating by cross_hardware_factor
        // (2× → 50%): a 33% speedup drop would fail same-hardware but must
        // pass cross-hardware, while the matching-hardware run still fails.
        let cross_train = r#"{"available_parallelism": 4, "aggregation": {"soa_speedup": 1.2},
                 "points": [{"inputs": 500, "single_thread_speedup": 10.0}]}"#;
        let cross = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(4, 4e6, 10.0, 1.2, true), // agg 1.5 → 1.2 (-20%)
            &train_json(15.0, 1.5),
            cross_train, // speedup 15 → 10 (-33%) on different hardware
        );
        assert!(cross.regressions().is_empty(), "{cross}");
        assert!(cross.notes.iter().any(|n| n.contains("available_parallelism")));
        let same = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(10.0, 1.2), // same -33% on matching hardware
        );
        let regressed = same.regressions();
        assert_eq!(regressed.len(), 1, "{same}");
        assert!(regressed[0].name.contains("single_thread_speedup"));
    }

    #[test]
    fn frontend_attestations_are_hard_gated_once_baselined() {
        // Baseline attests socket bit-exactness; a current run where the
        // attestation is false must fail…
        let report = run(
            &serve_json_with_frontend(1, 200.0, true, true),
            &serve_json_with_frontend(1, 200.0, false, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.replay.bit_exact"),
            "{report}"
        );
        // …and so must a current run that lost the frontend block entirely
        // (schema drift disarming the gate).
        let report = run(
            &serve_json_with_frontend(1, 200.0, true, true),
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let names: Vec<&str> = report.regressions().iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"serve.frontend.replay.bit_exact"), "{report}");
        assert!(
            names.contains(&"serve.frontend.reload.bit_exact_per_version"),
            "{report}"
        );
    }

    fn serve_json_with_chaos(zero_severed: bool, panics_reconciled: bool) -> String {
        format!(
            r#"{{"available_parallelism": 1, "round_trip_bit_exact": true,
                 "aggregation": {{"soa_speedup": 1.5}},
                 "runs_uncached": [], "runs_cached": [],
                 "frontend": {{
                    "replay": {{"throughput_rps": 5000.0, "bit_exact": true,
                                "latency": {{"p50_us": 80.0, "p95_us": 150.0, "p99_us": 200.0}}}},
                    "reload": {{"throughput_rps": 4500.0, "bit_exact_per_version": true,
                                "latency": {{"p50_us": 85.0, "p95_us": 160.0, "p99_us": 200.0}}}},
                    "chaos": {{"zero_severed_connections": {zero_severed},
                               "panics_reconciled": {panics_reconciled},
                               "bit_exact_across_restarts": true,
                               "old_version_served_throughout": true,
                               "deadline_shedding_bounds_p99": true}}
                 }}}}"#
        )
    }

    #[test]
    fn chaos_attestations_are_hard_gated_once_baselined() {
        // Once a baseline attests the chaos invariants (no severed
        // connections, panic counters reconciled), a current run where one
        // flips false must regress…
        let report = run(
            &serve_json_with_chaos(true, true),
            &serve_json_with_chaos(false, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.chaos.zero_severed_connections"),
            "{report}"
        );
        // …and so must a run that dropped the chaos section entirely.
        let report = run(
            &serve_json_with_chaos(true, true),
            &serve_json_with_frontend(1, 200.0, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let names: Vec<&str> = report.regressions().iter().map(|m| m.name.as_str()).collect();
        assert!(
            names.contains(&"serve.frontend.chaos.zero_severed_connections"),
            "{report}"
        );
        assert!(names.contains(&"serve.frontend.chaos.panics_reconciled"), "{report}");
        assert!(
            names.contains(&"serve.frontend.chaos.deadline_shedding_bounds_p99"),
            "{report}"
        );
        // A baseline without a chaos section never arms the gate.
        let report = run(
            &serve_json_with_frontend(1, 200.0, true, true),
            &serve_json_with_chaos(true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
    }

    fn serve_json_with_gateway(parallelism: u32, scaling_2x: f64, rollback_fired: bool, bit_exact: bool) -> String {
        format!(
            r#"{{"available_parallelism": {parallelism}, "round_trip_bit_exact": true,
                 "aggregation": {{"soa_speedup": 1.5}},
                 "runs_uncached": [], "runs_cached": [],
                 "gateway": {{
                    "multi_process": true, "backend_binary": "er-serve",
                    "series": [
                      {{"backends": 1, "requests": 1200, "clients": 4, "elapsed_secs": 0.4,
                        "throughput_rps": 3000.0, "non_2xx": 0, "all_2xx": true, "bit_exact": {bit_exact},
                        "latency": {{"p50_us": 120.0, "p95_us": 300.0, "p99_us": 400.0}}}},
                      {{"backends": 2, "requests": 1200, "clients": 4, "elapsed_secs": 0.22,
                        "throughput_rps": 5400.0, "non_2xx": 0, "all_2xx": true, "bit_exact": true,
                        "latency": {{"p50_us": 110.0, "p95_us": 280.0, "p99_us": 380.0}}}}],
                    "scaling_2x": {scaling_2x},
                    "hedging": {{"fault_spec": "score_stall", "hedge_after_ms": 25, "requests": 8,
                                 "hedges_launched": 8, "hedges_won": 8,
                                 "hedge_fired": true, "all_2xx": true, "bit_exact": true}},
                    "canary_promotion": {{"candidate_path": "p.json", "requests": 40,
                                 "promotions": 1, "rollbacks": 0, "promotion_fired": true,
                                 "rollback_fired": false, "non_2xx": 0, "zero_severed": true,
                                 "bit_exact": true, "digests_converged": true}},
                    "canary_rollback": {{"candidate_path": "d.json", "requests": 20,
                                 "promotions": 0, "rollbacks": 1, "promotion_fired": false,
                                 "rollback_fired": {rollback_fired}, "non_2xx": 0, "zero_severed": true,
                                 "bit_exact": true, "digests_converged": true}}
                 }}}}"#
        )
    }

    #[test]
    fn gateway_attestations_are_hard_gated_once_baselined() {
        // A current run where the auto-rollback attestation flips false fails…
        let report = run(
            &serve_json_with_gateway(1, 1.8, true, true),
            &serve_json_with_gateway(1, 1.8, false, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.gateway.canary_rollback.rollback_fired"),
            "{report}"
        );
        // …so does one losing a per-series bit-exactness attestation…
        let report = run(
            &serve_json_with_gateway(1, 1.8, true, true),
            &serve_json_with_gateway(1, 1.8, true, false),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.gateway.series[backends=1].bit_exact"),
            "{report}"
        );
        // …and so does losing the gateway phase entirely (e.g. the backend
        // binary silently going missing serializes the block as null).
        let report = run(
            &serve_json_with_gateway(1, 1.8, true, true),
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let names: Vec<&str> = report.regressions().iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"serve.gateway.multi_process"), "{report}");
        assert!(names.contains(&"serve.gateway.hedging.hedge_fired"), "{report}");
        assert!(
            names.contains(&"serve.gateway.canary_promotion.promotion_fired"),
            "{report}"
        );
    }

    #[test]
    fn gateway_scaling_collapse_fails_even_across_hardware() {
        // scaling_2x is a within-run ratio: collapsing from 1.8× to 0.7×
        // fails even when the CPU budgets differ (absolute series numbers
        // are skipped there, and the tolerance is loosened but not lifted).
        let report = run(
            &serve_json_with_gateway(1, 1.8, true, true),
            &serve_json_with_gateway(4, 0.7, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert_eq!(regressed[0].name, "serve.gateway.scaling_2x");
        assert!(!report
            .metrics
            .iter()
            .any(|m| m.name.contains("series[backends=1].throughput")));
    }

    #[test]
    fn gateway_only_in_current_notes_a_baseline_refresh() {
        // A null gateway block in the baseline (backend binary missing when
        // it was recorded) never arms the gate — it only notes the refresh.
        let pre_gateway = r#"{"available_parallelism": 1, "round_trip_bit_exact": true,
             "aggregation": {"soa_speedup": 1.5},
             "runs_uncached": [], "runs_cached": [], "gateway": null}"#;
        let report = run(
            pre_gateway,
            &serve_json_with_gateway(1, 1.8, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
        assert!(report.notes.iter().any(|n| n.contains("serve.gateway")), "{report}");
    }

    #[test]
    fn frontend_only_in_current_notes_a_baseline_refresh() {
        // The reverse direction: a baseline recorded before the front-end
        // existed compares nothing frontend — it only notes the refresh.
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json_with_frontend(1, 200.0, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
        assert!(report.notes.iter().any(|n| n.contains("serve.frontend")), "{report}");
    }

    #[test]
    fn frontend_latency_under_reload_regression_fails() {
        let report = run(
            &serve_json_with_frontend(1, 200.0, true, true),
            &serve_json_with_frontend(1, 500.0, true, true), // +150% reload p99
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert_eq!(regressed[0].name, "serve.frontend.reload.latency.p99_us");
        // Cross-hardware, the same absolute drift is skipped entirely.
        let report = run(
            &serve_json_with_frontend(1, 200.0, true, true),
            &serve_json_with_frontend(4, 500.0, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(report.regressions().is_empty(), "{report}");
        assert!(!report
            .metrics
            .iter()
            .any(|m| m.name.contains("frontend.reload.latency")));
    }

    fn serve_json_with_observability(parallelism: u32, ratio: f64, scrape_parsed: bool, limited_429: bool) -> String {
        format!(
            r#"{{"available_parallelism": {parallelism}, "round_trip_bit_exact": true,
                 "aggregation": {{"soa_speedup": 1.5}},
                 "runs_uncached": [], "runs_cached": [],
                 "frontend": {{
                    "replay": {{"throughput_rps": 5000.0, "bit_exact": true,
                                "latency": {{"p50_us": 80.0, "p95_us": 150.0, "p99_us": 200.0}}}},
                    "replay_metrics_off": {{"throughput_rps": 5100.0, "bit_exact": true,
                                "latency": {{"p50_us": 78.0, "p95_us": 148.0, "p99_us": 195.0}}}},
                    "metrics_on_relative_throughput": {ratio},
                    "metrics": {{"scrape_parsed": {scrape_parsed}, "reconciles_with_replay": true,
                                 "histogram_reconciled": true, "score_requests_total": 600}},
                    "rate_limit": {{"limited_429": {limited_429}, "headers_present": true,
                                    "second_client_unaffected": true}},
                    "reload": {{"throughput_rps": 4500.0, "bit_exact_per_version": true,
                                "latency": {{"p50_us": 85.0, "p95_us": 160.0, "p99_us": 210.0}}}}
                 }}}}"#
        )
    }

    #[test]
    fn observability_attestations_are_hard_gated_once_baselined() {
        // A baseline attesting the /metrics scrape and rate-limit smoke means
        // a current run where either flag is false (or gone) fails the gate.
        let report = run(
            &serve_json_with_observability(1, 0.99, true, true),
            &serve_json_with_observability(1, 0.99, false, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.metrics.scrape_parsed"),
            "{report}"
        );
        let report = run(
            &serve_json_with_observability(1, 0.99, true, true),
            &serve_json_with_observability(1, 0.99, true, false),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.rate_limit.limited_429"),
            "{report}"
        );
    }

    #[test]
    fn metrics_overhead_ratio_is_gated_even_cross_hardware() {
        // metrics-on throughput collapsing to 60% of metrics-off is a broken
        // instrumentation hot path; as a machine-local ratio it must fail
        // even same-hardware…
        let report = run(
            &serve_json_with_observability(1, 0.99, true, true),
            &serve_json_with_observability(1, 0.60, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.metrics_on_relative_throughput"),
            "{report}"
        );
        // …while cross-hardware the gate loosens (2× → 50%): a 39% drop
        // passes, a halving still fails.
        let cross_ok = run(
            &serve_json_with_observability(1, 0.99, true, true),
            &serve_json_with_observability(4, 0.60, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(cross_ok.regressions().is_empty(), "{cross_ok}");
        let cross_fail = run(
            &serve_json_with_observability(1, 0.99, true, true),
            &serve_json_with_observability(4, 0.40, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            cross_fail
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.metrics_on_relative_throughput"),
            "{cross_fail}"
        );
    }

    #[test]
    fn metrics_off_control_replay_is_gated_like_the_instrumented_one() {
        let mut current = serve_json_with_observability(1, 0.99, true, true);
        current = current.replace(r#""throughput_rps": 5100.0"#, r#""throughput_rps": 2000.0"#);
        let report = run(
            &serve_json_with_observability(1, 0.99, true, true),
            &current,
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.replay_metrics_off.throughput_rps"),
            "{report}"
        );
    }

    fn serve_json_with_tracing(parallelism: u32, ratio: f64, counts_match: bool, on_rps: f64) -> String {
        format!(
            r#"{{"available_parallelism": {parallelism}, "round_trip_bit_exact": true,
                 "aggregation": {{"soa_speedup": 1.5}},
                 "runs_uncached": [], "runs_cached": [],
                 "frontend": {{
                    "replay": {{"throughput_rps": 5000.0, "bit_exact": true,
                                "latency": {{"p50_us": 80.0, "p95_us": 150.0, "p99_us": 200.0}}}},
                    "reload": {{"throughput_rps": 4500.0, "bit_exact_per_version": true,
                                "latency": {{"p50_us": 85.0, "p95_us": 160.0, "p99_us": 210.0}}}},
                    "tracing": {{
                        "trace_capacity": 8000,
                        "replay_trace_off": {{"throughput_rps": 5050.0, "bit_exact": true,
                                "latency": {{"p50_us": 79.0, "p95_us": 149.0, "p99_us": 198.0}}}},
                        "replay_trace_on": {{"throughput_rps": {on_rps}, "bit_exact": true,
                                "latency": {{"p50_us": 81.0, "p95_us": 152.0, "p99_us": 203.0}}}},
                        "tracing_on_relative_throughput": {ratio},
                        "span_counts_match": {counts_match},
                        "spans_nest_within_totals": true,
                        "stage_taxonomy_complete": true,
                        "totals_bracket_replay": true,
                        "chrome_export_parsed": true
                    }}
                 }}}}"#
        )
    }

    #[test]
    fn tracing_attestations_are_hard_gated_once_baselined() {
        // A baseline attesting the span-count reconciliation means a current
        // run where it is false fails the gate…
        let report = run(
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &serve_json_with_tracing(1, 0.99, false, 4950.0),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.tracing.span_counts_match"),
            "{report}"
        );
        // …and so must a current run that lost the tracing block entirely.
        let report = run(
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &serve_json_with_frontend(1, 200.0, true, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let names: Vec<&str> = report.regressions().iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"serve.frontend.tracing.span_counts_match"), "{report}");
        assert!(
            names.contains(&"serve.frontend.tracing.chrome_export_parsed"),
            "{report}"
        );
        assert!(
            names.contains(&"serve.frontend.tracing.tracing_on_relative_throughput"),
            "{report}"
        );
        // The reverse direction (baseline predates tracing) only notes a
        // refresh.
        let fresh = run(
            &serve_json_with_frontend(1, 200.0, true, true),
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(fresh.regressions().is_empty(), "{fresh}");
    }

    #[test]
    fn tracing_overhead_ratio_is_gated_even_cross_hardware() {
        // Tracing-on throughput collapsing to 60% of tracing-off means span
        // recording landed on the hot path; machine-local ratio, so it fails
        // same-hardware…
        let report = run(
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &serve_json_with_tracing(1, 0.60, true, 4950.0),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.tracing.tracing_on_relative_throughput"),
            "{report}"
        );
        // …while cross-hardware the gate loosens (2× → 50%): a 39% drop
        // passes, a halving still fails.
        let cross_ok = run(
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &serve_json_with_tracing(4, 0.60, true, 4950.0),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(cross_ok.regressions().is_empty(), "{cross_ok}");
        let cross_fail = run(
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &serve_json_with_tracing(4, 0.40, true, 4950.0),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            cross_fail
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.tracing.tracing_on_relative_throughput"),
            "{cross_fail}"
        );
    }

    #[test]
    fn tracing_replay_throughput_is_gated_same_hardware_only() {
        // The tracing-on replay is an absolute socket run: a halved
        // throughput fails on matching hardware…
        let report = run(
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &serve_json_with_tracing(1, 0.99, true, 2400.0),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(
            report
                .regressions()
                .iter()
                .any(|m| m.name == "serve.frontend.tracing.replay_trace_on.throughput_rps"),
            "{report}"
        );
        // …and is skipped entirely across hardware.
        let cross = run(
            &serve_json_with_tracing(1, 0.99, true, 4950.0),
            &serve_json_with_tracing(4, 0.99, true, 2400.0),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        assert!(cross.regressions().is_empty(), "{cross}");
        assert!(
            !cross.metrics.iter().any(|m| m.name.contains("replay_trace_on")),
            "{cross}"
        );
    }

    fn fig13_json(parallelism: u32, t2_runtime: f64, t2_throughput: f64) -> String {
        format!(
            r#"{{"available_parallelism": {parallelism},
                 "points": [
                    {{"stage": "rule_generation", "training_size": 2000, "runtime_secs": 3.0,
                      "throughput_pairs_per_sec": null}},
                    {{"stage": "risk_training", "training_size": 2000, "runtime_secs": 2.0,
                      "throughput_pairs_per_sec": null}},
                    {{"stage": "risk_training[t2]", "training_size": 2000, "runtime_secs": {t2_runtime},
                      "throughput_pairs_per_sec": null}},
                    {{"stage": "risk_training[t2]", "training_size": 500, "runtime_secs": 0.002,
                      "throughput_pairs_per_sec": null}},
                    {{"stage": "engine_scoring[t2]", "training_size": 2000, "runtime_secs": 0.004,
                      "throughput_pairs_per_sec": {t2_throughput}}}
                 ]}}"#
        )
    }

    #[test]
    fn fig13_scalability_regressions_fail_the_gate() {
        // A doubled per-thread training runtime and a halved engine-scoring
        // throughput must both fail; the headline stages stay informational.
        let report = run_with_fig13(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            Some(&fig13_json(1, 1.0, 5e5)),
            Some(&fig13_json(1, 2.0, 2e5)),
        );
        let names: Vec<&str> = report.regressions().iter().map(|m| m.name.as_str()).collect();
        assert!(
            names.contains(&"fig13.risk_training[t2][size=2000].runtime_secs"),
            "{report}"
        );
        assert!(
            names.contains(&"fig13.engine_scoring[t2][size=2000].throughput_pairs_per_sec"),
            "{report}"
        );
        assert!(!names.iter().any(|n| n.contains("rule_generation")), "{report}");
        // The 2ms point sits under the 10ms runtime floor on both sides:
        // scheduler jitter, skipped.
        assert!(
            report
                .metrics
                .iter()
                .any(|m| m.name.contains("size=500") && matches!(m.status, Status::Skipped(_))),
            "{report}"
        );
        // Identical runs pass.
        let same = run_with_fig13(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            Some(&fig13_json(1, 1.0, 5e5)),
            Some(&fig13_json(1, 1.0, 5e5)),
        );
        assert!(same.regressions().is_empty(), "{same}");
    }

    #[test]
    fn fig13_is_cross_hardware_skipped_but_cannot_vanish() {
        // Different CPU budgets: all fig13 metrics are absolute, so skipped.
        let cross = run_with_fig13(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            Some(&fig13_json(1, 1.0, 5e5)),
            Some(&fig13_json(4, 9.0, 1e4)),
        );
        assert!(cross.regressions().is_empty(), "{cross}");
        assert!(cross.notes.iter().any(|n| n.contains("fig13")), "{cross}");
        // A baselined fig13.json the current run no longer produces is
        // schema drift disarming the gate.
        let vanished = run_with_fig13(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            Some(&fig13_json(1, 1.0, 5e5)),
            None,
        );
        assert!(
            vanished.regressions().iter().any(|m| m.name == "fig13.points"),
            "{vanished}"
        );
        // The reverse (baseline predates fig13 gating) only notes a refresh.
        let fresh = run_with_fig13(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            None,
            Some(&fig13_json(1, 1.0, 5e5)),
        );
        assert!(fresh.regressions().is_empty(), "{fresh}");
        assert!(
            fresh.notes.iter().any(|n| n.contains("absent from the baseline")),
            "{fresh}"
        );
    }

    #[test]
    fn non_finite_metrics_fail_the_gate() {
        // The vendored JSON round-trips NaN; a NaN metric means the benchmark
        // run is broken and must fail, not read as "no change".
        let report = run(
            &serve_json(1, 1e6, 50.0, 1.5, true),
            &serve_json(1, f64::NAN, 50.0, 1.5, true),
            &train_json(15.0, 1.5),
            &train_json(15.0, 1.5),
        );
        let regressed = report.regressions();
        assert_eq!(regressed.len(), 1, "{report}");
        assert!(regressed[0].name.contains("throughput_rps"));
    }
}
