//! The scoring engine: a trained model plus its compiled rule index.
//!
//! [`ScoringEngine::score_request`] resolves which rules fire on a raw
//! basic-metric row through the [`CompiledRuleIndex`], then scores through
//! the exact same [`LearnRiskModel::risk_score`] code path the batch
//! pipeline uses — the fired-rule list is produced in the same (ascending)
//! order the offline linear scan yields, so online scores are bit-identical
//! to offline ones. This is what makes the artifact round-trip property
//! (train → save → load → serve) testable to full `f64` precision.

use crate::index::{CompiledRuleIndex, MatchScratch};
use learnrisk_core::{LearnRiskModel, PairRiskInput, PortfolioComponent};
use serde::{Deserialize, Serialize};

/// One scoring request: a candidate pair reduced to its serving inputs.
///
/// The caller (feature service / classifier front-end) supplies the pair's
/// basic-metric row and the classifier decision; the engine resolves rule
/// coverage and the risk score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreRequest {
    /// Caller-assigned pair identity, used as the cache key for repeated
    /// traffic. Requests with equal ids must describe the same pair.
    pub pair_id: u64,
    /// The pair's basic-metric row (same layout the rules were trained on).
    pub metric_row: Vec<f64>,
    /// Classifier equivalence-probability output.
    pub classifier_output: f64,
    /// Whether the classifier labeled the pair as matching.
    pub machine_says_match: bool,
}

/// Reusable per-worker scratch for the engine (rule-match counters plus the
/// assembled [`PairRiskInput`]); create one per thread via
/// [`ScoringEngine::scratch`].
#[derive(Debug, Clone)]
pub struct EngineScratch {
    matcher: MatchScratch,
    input: PairRiskInput,
    components: Vec<PortfolioComponent>,
}

/// A servable risk model: the trained state plus the compiled rule index.
#[derive(Debug, Clone)]
pub struct ScoringEngine {
    model: LearnRiskModel,
    index: CompiledRuleIndex,
}

impl ScoringEngine {
    /// Compiles the rule index and wraps the model for serving.
    ///
    /// # Panics
    /// Panics if the model fails [`LearnRiskModel::validate`]; load models
    /// from artifacts (which validate on load) or pass freshly trained ones.
    pub fn new(model: LearnRiskModel) -> Self {
        if let Err(why) = model.validate() {
            panic!("refusing to serve an invalid model: {why}");
        }
        let index = CompiledRuleIndex::compile(&model.features.rules);
        Self { model, index }
    }

    /// The underlying trained model.
    pub fn model(&self) -> &LearnRiskModel {
        &self.model
    }

    /// The compiled rule index.
    pub fn index(&self) -> &CompiledRuleIndex {
        &self.index
    }

    /// Creates scratch state sized for this engine.
    pub fn scratch(&self) -> EngineScratch {
        EngineScratch {
            matcher: self.index.scratch(),
            input: PairRiskInput {
                rule_indices: Vec::with_capacity(16),
                classifier_output: 0.0,
                machine_says_match: false,
                risk_label: 0,
            },
            components: Vec::with_capacity(17),
        }
    }

    /// Scores one request, reusing `scratch` (no per-request allocation once
    /// the scratch vectors have warmed up).
    pub fn score_request(&self, request: &ScoreRequest, scratch: &mut EngineScratch) -> f64 {
        self.index.matching_rules_into(
            &request.metric_row,
            &mut scratch.matcher,
            &mut scratch.input.rule_indices,
        );
        scratch.input.classifier_output = request.classifier_output;
        scratch.input.machine_says_match = request.machine_says_match;
        self.model.risk_score_with(&scratch.input, &mut scratch.components)
    }

    /// Scores a pre-resolved risk input (rule coverage already known), e.g.
    /// when replaying batch-pipeline outputs.
    pub fn score_pair(&self, input: &PairRiskInput) -> f64 {
        self.model.risk_score(input)
    }

    /// Scores a batch sequentially. For multi-threaded batches with caching,
    /// wrap the engine in a [`crate::ShardedExecutor`].
    pub fn score_batch(&self, requests: &[ScoreRequest]) -> Vec<f64> {
        let mut scratch = self.scratch();
        requests.iter().map(|r| self.score_request(r, &mut scratch)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::{Decision, Label, LabeledPair, Pair, PairId, Record, RecordId};
    use er_rulegen::{CmpOp, Condition, Rule};
    use learnrisk_core::{build_input_from_row, RiskFeatureSet, RiskModelConfig};
    use std::sync::Arc;

    fn model() -> LearnRiskModel {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.97),
            Rule::new(
                vec![Condition::new(1, CmpOp::Le, 0.3), Condition::new(2, CmpOp::Gt, 0.6)],
                Label::Equivalent,
                15,
                0.93,
            ),
            Rule::new(vec![Condition::new(2, CmpOp::Le, 0.2)], Label::Inequivalent, 9, 0.9),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.92, 0.1],
            support: vec![20, 15, 9],
        };
        let mut m = LearnRiskModel::new(fs, RiskModelConfig::default());
        m.rule_weights = vec![1.3, 0.7, 2.1];
        m.rule_rsd = vec![0.25, 0.4, 0.31];
        m
    }

    fn offline_score(model: &LearnRiskModel, req: &ScoreRequest) -> f64 {
        // The batch path: linear-scan rule resolution via build_input_from_row.
        let rec = |id| Arc::new(Record::new(RecordId(id), vec![]));
        let lp = LabeledPair::new(
            Pair::new(PairId(req.pair_id as u32), rec(0), rec(1), Label::Equivalent),
            Decision::from_probability(req.classifier_output),
        );
        let input = build_input_from_row(&model.features, &req.metric_row, &lp);
        model.risk_score(&input)
    }

    fn request(pair_id: u64, row: Vec<f64>, p: f64) -> ScoreRequest {
        ScoreRequest {
            pair_id,
            metric_row: row,
            classifier_output: p,
            machine_says_match: p >= 0.5,
        }
    }

    #[test]
    fn online_scores_are_bit_identical_to_the_offline_path() {
        let model = model();
        let engine = ScoringEngine::new(model.clone());
        let mut scratch = engine.scratch();
        for (i, row) in [
            vec![0.9, 0.1, 0.8],
            vec![0.2, 0.9, 0.1],
            vec![0.51, 0.3, 0.61],
            vec![0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ]
        .into_iter()
        .enumerate()
        {
            for p in [0.03, 0.49, 0.5, 0.97] {
                let req = request(i as u64, row.clone(), p);
                let online = engine.score_request(&req, &mut scratch);
                let offline = offline_score(&model, &req);
                assert_eq!(online.to_bits(), offline.to_bits(), "row {row:?} p {p}");
            }
        }
    }

    #[test]
    fn score_batch_matches_per_request_scoring() {
        let engine = ScoringEngine::new(model());
        let reqs: Vec<ScoreRequest> = (0..20)
            .map(|i| {
                let x = i as f64 / 20.0;
                request(i, vec![x, 1.0 - x, (x * 7.0).fract()], x)
            })
            .collect();
        let batch = engine.score_batch(&reqs);
        let mut scratch = engine.scratch();
        for (req, &score) in reqs.iter().zip(&batch) {
            assert_eq!(engine.score_request(req, &mut scratch).to_bits(), score.to_bits());
        }
    }

    #[test]
    fn score_pair_delegates_to_the_model() {
        let model = model();
        let engine = ScoringEngine::new(model.clone());
        let input = PairRiskInput {
            rule_indices: vec![0, 2],
            classifier_output: 0.8,
            machine_says_match: true,
            risk_label: 0,
        };
        assert_eq!(engine.score_pair(&input).to_bits(), model.risk_score(&input).to_bits());
    }

    #[test]
    #[should_panic(expected = "refusing to serve an invalid model")]
    fn invalid_models_are_refused() {
        let mut bad = model();
        bad.rule_weights.pop();
        ScoringEngine::new(bad);
    }
}
