//! # er-rulegen
//!
//! Rule (risk-feature) generation for entity resolution.
//!
//! * [`condition`] / [`rule`] — threshold conditions over basic-metric vectors
//!   and one-sided rules (`conditions -> class`).
//! * [`gini`] — Gini impurity and the paper's one-sided Gini index (Eq. 5–7).
//! * [`tree`] — one-sided decision-tree construction (Algorithm 1), the source
//!   of LearnRisk's interpretable risk features.
//! * [`two_sided`] — conventional CART trees and random forests, used to
//!   generate the two-sided labeling rules consumed by the HoloClean baseline.

#![warn(missing_docs)]

pub mod condition;
pub mod gini;
pub mod rule;
pub mod tree;
pub mod two_sided;

pub use condition::{CmpOp, Condition};
pub use gini::{one_sided_gini, two_sided_gini, ClassCounts};
pub use rule::{coverage, dedup_rules, Rule};
pub use tree::{generate_rules, OneSidedTreeBuilder, OneSidedTreeConfig};
pub use two_sided::{RandomForest, TwoSidedTree, TwoSidedTreeConfig};
