//! Regenerates Figure 13 (scalability of rule generation and risk training),
//! extended with the `er-serve` engine's batched-scoring throughput per
//! `--threads` entry so offline and serving scalability land in one table.
//!
//! Besides the rendered table, the run is written as machine-readable JSON
//! (default `out/fig13.json`, override with `FIG13_JSON`) in the same
//! perf-trajectory format as `serve_bench`/`train_bench`; `bench_diff` gates
//! the per-thread `risk_training[tN]` runtimes and `engine_scoring[tN]`
//! throughputs against the committed baseline.
use er_eval::{render_scalability, run_fig13, ScalabilityPoint};
use serde::Serialize;
use std::path::Path;

/// Machine-readable result of one `fig13` invocation.
#[derive(Debug, Serialize)]
struct Fig13Summary {
    scale: f64,
    seed: u64,
    available_parallelism: usize,
    threads: Vec<usize>,
    sizes: Vec<usize>,
    points: Vec<ScalabilityPoint>,
}

fn main() {
    let args = er_bench::parse_args(0.05);
    let sizes = [500, 1000, 2000, 3000, 4000, 6000];
    let points = run_fig13(&args.config, &sizes, &args.threads);
    println!("{}", render_scalability(&points));

    let summary = Fig13Summary {
        scale: args.config.scale,
        seed: args.config.seed,
        available_parallelism: er_bench::available_parallelism(),
        threads: args.threads.clone(),
        sizes: sizes.to_vec(),
        points,
    };
    let path = std::env::var("FIG13_JSON").unwrap_or_else(|_| "out/fig13.json".into());
    if let Some(parent) = Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&path, serde::json::to_string_pretty(&summary)).expect("write fig13 JSON");
    println!("fig13: wrote {path}");
}
