//! Tables: collections of records that share a schema.

use crate::record::{AttrValue, Record, RecordId, Schema};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A table of records conforming to a single [`Schema`].
///
/// ER workloads either match records across two tables (e.g. DBLP vs. Scholar)
/// or deduplicate within a single table (e.g. Songs).  Tables own their
/// records behind `Arc`s so that candidate pairs can reference them without
/// copying attribute values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table name, used in reports and rule rendering.
    pub name: String,
    schema: Arc<Schema>,
    records: Vec<Arc<Record>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema: Arc::new(schema),
            records: Vec::new(),
        }
    }

    /// Creates an empty table with pre-allocated capacity.
    pub fn with_capacity(name: impl Into<String>, schema: Schema, cap: usize) -> Self {
        Self {
            name: name.into(),
            schema: Arc::new(schema),
            records: Vec::with_capacity(cap),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record built from raw values, assigning the next id.
    ///
    /// # Panics
    /// Panics if the number of values does not match the schema arity.
    pub fn push(&mut self, values: Vec<AttrValue>) -> RecordId {
        assert_eq!(
            values.len(),
            self.schema.len(),
            "record arity {} does not match schema arity {}",
            values.len(),
            self.schema.len()
        );
        let id = RecordId(self.records.len() as u32);
        self.records.push(Arc::new(Record::new(id, values)));
        id
    }

    /// Record by id.
    pub fn record(&self, id: RecordId) -> &Arc<Record> {
        &self.records[id.0 as usize]
    }

    /// All records.
    pub fn records(&self) -> &[Arc<Record>] {
        &self.records
    }

    /// Iterator over record handles.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Record>> {
        self.records.iter()
    }

    /// Fraction of attribute cells that are missing, across the whole table.
    ///
    /// Useful for validating that synthetic generators hit a target dirtiness.
    pub fn missing_rate(&self) -> f64 {
        if self.records.is_empty() || self.schema.is_empty() {
            return 0.0;
        }
        let total = self.records.len() * self.schema.len();
        let nulls: usize = self.records.iter().map(|r| r.null_count()).sum();
        nulls as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttrDef, AttrType};

    fn schema() -> Schema {
        Schema::new(vec![
            AttrDef::new("name", AttrType::EntityName),
            AttrDef::new("price", AttrType::Numeric),
        ])
    }

    #[test]
    fn push_and_lookup() {
        let mut t = Table::new("products", schema());
        let a = t.push(vec!["iPod nano".into(), 149.0.into()]);
        let b = t.push(vec!["Zune 30GB".into(), AttrValue::Null]);
        assert_eq!(t.len(), 2);
        assert_eq!(a, RecordId(0));
        assert_eq!(b, RecordId(1));
        assert_eq!(t.record(a).value(0).as_str(), Some("iPod nano"));
        assert!(t.record(b).value(1).is_null());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("p", schema());
        t.push(vec!["only one value".into()]);
    }

    #[test]
    fn missing_rate() {
        let mut t = Table::new("p", schema());
        t.push(vec!["a".into(), 1.0.into()]);
        t.push(vec![AttrValue::Null, AttrValue::Null]);
        assert!((t.missing_rate() - 0.5).abs() < 1e-12);

        let empty = Table::new("e", schema());
        assert_eq!(empty.missing_rate(), 0.0);
        assert!(empty.is_empty());
    }
}
