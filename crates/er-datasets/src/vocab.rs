//! Vocabularies used by the synthetic dataset generators.
//!
//! The word pools are intentionally modest — what matters for the risk-analysis
//! experiments is the *distributional shape* of the data (token overlap between
//! duplicates, rare discriminating tokens, name abbreviations), not lexical
//! realism.

use rand::seq::SliceRandom;
use rand::Rng;

/// Common research-paper title words (bibliographic domain).
pub const TITLE_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "distributed",
    "parallel",
    "adaptive",
    "incremental",
    "approximate",
    "optimal",
    "robust",
    "interactive",
    "dynamic",
    "secure",
    "probabilistic",
    "declarative",
    "processing",
    "query",
    "queries",
    "join",
    "joins",
    "index",
    "indexing",
    "mining",
    "learning",
    "clustering",
    "classification",
    "integration",
    "resolution",
    "matching",
    "cleaning",
    "repair",
    "storage",
    "transaction",
    "transactions",
    "stream",
    "streams",
    "graph",
    "graphs",
    "spatial",
    "temporal",
    "relational",
    "database",
    "databases",
    "data",
    "big",
    "knowledge",
    "entity",
    "record",
    "linkage",
    "deduplication",
    "crowdsourcing",
    "optimization",
    "evaluation",
    "analysis",
    "management",
    "systems",
    "system",
    "engine",
    "framework",
    "approach",
    "model",
    "models",
    "semantics",
    "schema",
    "xml",
    "web",
    "cloud",
    "memory",
    "disk",
    "cache",
    "compression",
    "sampling",
    "estimation",
    "cardinality",
    "selectivity",
    "partitioning",
    "replication",
];

/// Surnames used for authors and artists.
pub const SURNAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "wilson",
    "anderson",
    "taylor",
    "thomas",
    "moore",
    "jackson",
    "martin",
    "lee",
    "thompson",
    "white",
    "harris",
    "clark",
    "lewis",
    "walker",
    "hall",
    "young",
    "king",
    "wright",
    "scott",
    "green",
    "baker",
    "adams",
    "nelson",
    "carter",
    "mitchell",
    "roberts",
    "turner",
    "phillips",
    "campbell",
    "parker",
    "evans",
    "edwards",
    "collins",
    "stewart",
    "morris",
    "murphy",
    "cook",
    "rogers",
    "peterson",
    "cooper",
    "reed",
    "bailey",
    "kriegel",
    "stonebraker",
    "widom",
    "dewitt",
    "gray",
    "ullman",
    "abiteboul",
    "bernstein",
    "chaudhuri",
    "hellerstein",
    "franklin",
    "naughton",
];

/// Given-name initials / first names.
pub const GIVEN_NAMES: &[&str] = &[
    "james",
    "john",
    "robert",
    "michael",
    "william",
    "david",
    "richard",
    "joseph",
    "thomas",
    "charles",
    "mary",
    "patricia",
    "jennifer",
    "linda",
    "elizabeth",
    "susan",
    "jessica",
    "sarah",
    "karen",
    "wei",
    "lei",
    "jun",
    "hans",
    "peter",
    "anna",
    "maria",
    "luis",
    "carlos",
    "yuki",
    "akira",
    "raj",
    "priya",
    "ahmed",
    "fatima",
    "olga",
    "ivan",
    "pierre",
    "claire",
];

/// Publication venues with their abbreviations.
pub const VENUES: &[(&str, &str)] = &[
    ("SIGMOD", "ACM SIGMOD International Conference on Management of Data"),
    ("VLDB", "Very Large Data Bases"),
    ("ICDE", "IEEE International Conference on Data Engineering"),
    ("KDD", "ACM SIGKDD Conference on Knowledge Discovery and Data Mining"),
    ("EDBT", "International Conference on Extending Database Technology"),
    (
        "CIKM",
        "ACM International Conference on Information and Knowledge Management",
    ),
    ("TKDE", "IEEE Transactions on Knowledge and Data Engineering"),
    ("PODS", "Symposium on Principles of Database Systems"),
    ("WWW", "The Web Conference"),
    ("WSDM", "ACM International Conference on Web Search and Data Mining"),
];

/// Product brands (product domain).
pub const BRANDS: &[&str] = &[
    "sony",
    "apple",
    "samsung",
    "canon",
    "nikon",
    "panasonic",
    "toshiba",
    "philips",
    "lg",
    "microsoft",
    "logitech",
    "hp",
    "dell",
    "lenovo",
    "asus",
    "garmin",
    "bose",
    "jbl",
    "sandisk",
    "kingston",
    "netgear",
    "linksys",
    "epson",
    "brother",
    "sharp",
    "pioneer",
    "kenwood",
    "yamaha",
];

/// Product category nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "camera",
    "camcorder",
    "laptop",
    "notebook",
    "monitor",
    "printer",
    "scanner",
    "router",
    "keyboard",
    "mouse",
    "headphones",
    "speaker",
    "speakers",
    "television",
    "tv",
    "projector",
    "receiver",
    "player",
    "recorder",
    "drive",
    "adapter",
    "charger",
    "battery",
    "case",
    "dock",
    "tablet",
    "phone",
    "smartphone",
    "watch",
    "console",
    "controller",
    "microphone",
    "webcam",
];

/// Product qualifier words (colors, sizes, editions).
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "black",
    "white",
    "silver",
    "red",
    "blue",
    "portable",
    "wireless",
    "bluetooth",
    "digital",
    "compact",
    "professional",
    "premium",
    "ultra",
    "mini",
    "slim",
    "pro",
    "plus",
    "deluxe",
    "series",
    "edition",
    "bundle",
    "kit",
    "refurbished",
    "widescreen",
    "hd",
    "4k",
];

/// Software product nouns (the Amazon-Google workload is mainly software).
pub const SOFTWARE_NOUNS: &[&str] = &[
    "antivirus",
    "office",
    "suite",
    "studio",
    "photoshop",
    "illustrator",
    "encyclopedia",
    "dictionary",
    "tutorial",
    "upgrade",
    "license",
    "subscription",
    "backup",
    "firewall",
    "security",
    "accounting",
    "payroll",
    "tax",
    "design",
    "publisher",
    "converter",
    "editor",
    "server",
    "workstation",
    "education",
    "student",
    "teacher",
    "home",
    "business",
    "enterprise",
];

/// Song title words (music domain).
pub const SONG_WORDS: &[&str] = &[
    "love",
    "night",
    "heart",
    "baby",
    "dance",
    "dream",
    "fire",
    "rain",
    "summer",
    "girl",
    "boy",
    "home",
    "road",
    "river",
    "moon",
    "star",
    "sky",
    "light",
    "shadow",
    "blue",
    "golden",
    "broken",
    "sweet",
    "wild",
    "young",
    "forever",
    "tonight",
    "yesterday",
    "tomorrow",
    "again",
    "away",
    "alone",
    "together",
    "crazy",
    "beautiful",
    "freedom",
    "soul",
    "rock",
    "roll",
    "blues",
    "time",
];

/// Album qualifiers.
pub const ALBUM_WORDS: &[&str] = &[
    "greatest",
    "hits",
    "live",
    "unplugged",
    "sessions",
    "collection",
    "anthology",
    "deluxe",
    "remastered",
    "acoustic",
    "volume",
    "best",
    "of",
    "singles",
    "essential",
    "gold",
    "platinum",
];

/// Music genres (categorical attribute).
pub const GENRES: &[&str] = &[
    "rock",
    "pop",
    "jazz",
    "blues",
    "country",
    "electronic",
    "hip-hop",
    "classical",
    "folk",
    "metal",
];

/// Picks a random element of a string slice.
pub fn pick<'a, R: Rng + ?Sized>(rng: &mut R, items: &'a [&'a str]) -> &'a str {
    items.choose(rng).expect("vocabulary must not be empty")
}

/// Generates a person name `"<given> <surname>"`.
pub fn person_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!("{} {}", pick(rng, GIVEN_NAMES), pick(rng, SURNAMES))
}

/// Generates a phrase of `n` words from a pool (words may repeat across calls
/// but not inside one phrase when the pool is large enough).
pub fn phrase<R: Rng + ?Sized>(rng: &mut R, pool: &[&str], n: usize) -> String {
    let mut chosen: Vec<&str> = Vec::with_capacity(n);
    let mut guard = 0;
    while chosen.len() < n && guard < n * 10 {
        let w = pick(rng, pool);
        if !chosen.contains(&w) || pool.len() < n {
            chosen.push(w);
        }
        guard += 1;
    }
    chosen.join(" ")
}

/// Generates an alphanumeric model code such as `"dsc-w120"` or `"x1500"`.
pub fn model_code<R: Rng + ?Sized>(rng: &mut R) -> String {
    let letters = b"abcdefghjkmnprstuvwxz";
    let prefix_len = rng.gen_range(1..=3);
    let mut s = String::new();
    for _ in 0..prefix_len {
        s.push(letters[rng.gen_range(0..letters.len())] as char);
    }
    if rng.gen_bool(0.3) {
        s.push('-');
    }
    let number = rng.gen_range(10..10_000);
    s.push_str(&number.to_string());
    if rng.gen_bool(0.25) {
        s.push(letters[rng.gen_range(0..letters.len())] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phrase_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 1..8 {
            let p = phrase(&mut rng, TITLE_WORDS, n);
            assert_eq!(p.split(' ').count(), n);
        }
    }

    #[test]
    fn person_name_has_two_parts() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let name = person_name(&mut rng);
            assert_eq!(name.split(' ').count(), 2);
        }
    }

    #[test]
    fn model_code_contains_digits() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let code = model_code(&mut rng);
            assert!(code.chars().any(|c| c.is_ascii_digit()), "{code}");
            assert!(code.len() >= 3);
        }
    }

    #[test]
    fn vocabularies_are_non_trivial() {
        assert!(TITLE_WORDS.len() > 50);
        assert!(SURNAMES.len() > 40);
        assert!(VENUES.len() >= 10);
        assert!(BRANDS.len() > 20);
        assert!(SONG_WORDS.len() > 30);
        assert_eq!(GENRES.len(), 10);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(77);
            (0..5).map(|_| person_name(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(77);
            (0..5).map(|_| person_name(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
