//! Gateway ↔ backend integration over real sockets: bit-exact score relay,
//! health ejection, tail hedging, the canary ladder (promotion and
//! automatic rollback), and the gateway's own HTTP conformance.
//!
//! Backends are in-process [`ScoreServer`]s started from artifacts written
//! to a scratch directory, so `/reload` paths (the canary machinery) work
//! exactly as they do against standalone `er-serve` processes.

use er_gateway::{CanaryConfig, GatewayConfig, GatewayServer, HashRing};
use er_serve::{http_roundtrip, ModelArtifact, ReloadableExecutor, ScoreServer, ServeConfig, ServerConfig};
use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_model() -> LearnRiskModel {
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 12, 0.9),
        Rule::new(vec![Condition::new(1, CmpOp::Le, 0.4)], Label::Equivalent, 8, 0.85),
    ];
    let feature_set = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.1, 0.9],
        support: vec![12, 8],
    };
    LearnRiskModel::new(feature_set, RiskModelConfig::default())
}

/// The baseline model with every rule weight nudged — scores diverge, which
/// is exactly what the rollback path must catch.
fn divergent_model() -> LearnRiskModel {
    let mut model = tiny_model();
    for (i, w) in model.rule_weights.iter_mut().enumerate() {
        *w *= if i % 2 == 0 { 1.07 } else { 0.93 };
    }
    model
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("er-gateway-it-{tag}-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_artifact(dir: &std::path::Path, name: &str, model: LearnRiskModel) -> String {
    let path = dir.join(name);
    ModelArtifact::new(model).save(&path).expect("save artifact");
    path.to_string_lossy().into_owned()
}

fn start_backend(artifact_path: &str) -> ScoreServer {
    let artifact = ModelArtifact::load(artifact_path).expect("load artifact");
    let executor = Arc::new(
        ReloadableExecutor::from_artifact(artifact, ServeConfig::default().with_threads(1)).expect("executor"),
    );
    ScoreServer::start(executor, ServerConfig::default()).expect("bind backend")
}

fn gateway_config(backends: Vec<SocketAddr>, baseline: &str) -> GatewayConfig {
    GatewayConfig {
        backends,
        baseline_artifact: baseline.to_string(),
        health_interval: Duration::from_millis(100),
        eject_after: 2,
        connect_timeout: Duration::from_millis(500),
        upstream_timeout: Duration::from_secs(5),
        ..GatewayConfig::default()
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream
}

fn score_body(pair_id: u64) -> String {
    let x = (pair_id % 10) as f64 / 10.0;
    format!(
        "{{\"pair_id\": {pair_id}, \"metric_row\": [{x}, {}], \"classifier_output\": {x}, \"machine_says_match\": {}}}",
        1.0 - x,
        x >= 0.5
    )
}

fn stats(gateway_addr: SocketAddr) -> serde::Value {
    let mut stream = connect(gateway_addr);
    let response = http_roundtrip(&mut stream, "GET", "/gateway/stats", None).expect("stats");
    assert_eq!(response.status, 200, "{}", response.body);
    serde::json::parse(&response.body).expect("stats json")
}

fn stats_u64(value: &serde::Value, pointer: &[&str]) -> u64 {
    let mut cursor = value.clone();
    for key in pointer {
        cursor = cursor.get(key).unwrap_or_else(|| panic!("stats missing {key}")).clone();
    }
    serde::from_value(&cursor).unwrap_or_else(|e| panic!("stats {pointer:?} not a u64: {e}"))
}

#[test]
fn scores_relay_bit_exactly_through_the_gateway() {
    let dir = scratch_dir("bitexact");
    let baseline = write_artifact(&dir, "baseline.json", tiny_model());
    let backend_a = start_backend(&baseline);
    let backend_b = start_backend(&baseline);
    let backends = vec![backend_a.local_addr(), backend_b.local_addr()];
    let gateway = GatewayServer::start(gateway_config(backends.clone(), &baseline)).expect("gateway");

    for pair_id in 0..64u64 {
        let body = score_body(pair_id);
        let mut via_gateway = connect(gateway.local_addr());
        let routed = http_roundtrip(&mut via_gateway, "POST", "/score", Some(&body)).expect("gateway score");
        assert_eq!(routed.status, 200, "{}", routed.body);
        let served: usize = routed
            .headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case("x-backend"))
            .and_then(|(_, value)| value.parse().ok())
            .expect("X-Backend header");
        let mut direct_stream = connect(backends[served]);
        let direct = http_roundtrip(&mut direct_stream, "POST", "/score", Some(&body)).expect("direct score");
        assert_eq!(direct.status, 200);
        assert_eq!(
            routed.body, direct.body,
            "pair {pair_id}: gateway response differs from backend {served}"
        );
    }

    let stats = gateway.stats();
    assert_eq!(stats.responses_2xx, 64);
    assert!(
        stats.served_by_backend.iter().all(|&count| count > 0),
        "consistent hashing should spread 64 pairs over both backends: {:?}",
        stats.served_by_backend
    );
}

#[test]
fn ejected_backend_traffic_remaps_without_errors() {
    let dir = scratch_dir("eject");
    let baseline = write_artifact(&dir, "baseline.json", tiny_model());
    let backend_a = start_backend(&baseline);
    let backend_b = start_backend(&baseline);
    let backends = vec![backend_a.local_addr(), backend_b.local_addr()];
    let gateway = GatewayServer::start(gateway_config(backends, &baseline)).expect("gateway");

    // Warm: both backends serve.
    for pair_id in 0..32u64 {
        let mut stream = connect(gateway.local_addr());
        let response = http_roundtrip(&mut stream, "POST", "/score", Some(&score_body(pair_id))).expect("score");
        assert_eq!(response.status, 200);
    }
    // Kill backend B and wait for the health monitor to eject it
    // (eject_after=2 failures at a 100ms probe interval).
    backend_b.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = gateway.stats();
        if !snapshot.backends[1].healthy {
            assert!(snapshot.backends[1].ejections >= 1, "ejection not counted");
            break;
        }
        assert!(Instant::now() < deadline, "backend B never ejected: {snapshot:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
    // Every pair id — including those that hashed to B — now serves from A.
    for pair_id in 0..32u64 {
        let mut stream = connect(gateway.local_addr());
        let response = http_roundtrip(&mut stream, "POST", "/score", Some(&score_body(pair_id))).expect("score");
        assert_eq!(
            response.status, 200,
            "pair {pair_id} failed after ejection: {}",
            response.body
        );
        let served = response
            .headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case("x-backend"))
            .map(|(_, value)| value.clone())
            .expect("X-Backend");
        assert_eq!(served, "0", "pair {pair_id} routed to the dead backend");
    }
}

/// A fake backend that answers `/healthz` like a healthy `er-serve` but
/// never answers `/score` — the straggler the hedge must beat.
fn start_tarpit() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind tarpit");
    let addr = listener.local_addr().expect("tarpit addr");
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            std::thread::spawn(move || {
                let mut buffer = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    if buffer.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buffer.extend_from_slice(&chunk[..n]),
                    }
                }
                if buffer.starts_with(b"GET /healthz") {
                    let body = "{\"status\": \"ok\", \"model_version\": 1, \"model_digest\": \"tarpit\"}";
                    let _ = write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                } else {
                    // Hold the request open far longer than any hedge budget.
                    std::thread::sleep(Duration::from_secs(30));
                }
            });
        }
    });
    (addr, handle)
}

#[test]
fn hedge_beats_a_stalled_backend() {
    let dir = scratch_dir("hedge");
    let baseline = write_artifact(&dir, "baseline.json", tiny_model());
    let backend_a = start_backend(&baseline);
    let (tarpit_addr, _tarpit) = start_tarpit();
    // Backend 1 is the tarpit.
    let backends = vec![backend_a.local_addr(), tarpit_addr];
    let mut config = gateway_config(backends, &baseline);
    config.hedge_after = Some(Duration::from_millis(25));
    let gateway = GatewayServer::start(config).expect("gateway");

    // Pick pair ids whose ring primary is the tarpit (ring layout is
    // deterministic and shared with the gateway: 2 backends, 128 vnodes).
    let ring = HashRing::new(2, 128);
    let stalled_pairs: Vec<u64> = (0..200u64)
        .filter(|&id| ring.route(id, |_| true) == Some(1))
        .take(4)
        .collect();
    assert!(!stalled_pairs.is_empty(), "no pair id routes to the tarpit");

    for &pair_id in &stalled_pairs {
        let mut stream = connect(gateway.local_addr());
        let response = http_roundtrip(&mut stream, "POST", "/score", Some(&score_body(pair_id))).expect("score");
        assert_eq!(response.status, 200, "{}", response.body);
        let hedged = response
            .headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case("x-hedged"))
            .map(|(_, value)| value.clone())
            .expect("X-Hedged");
        assert_eq!(hedged, "1", "pair {pair_id} should have been won by the hedge");
    }
    let stats = gateway.stats();
    assert!(stats.hedges_launched >= stalled_pairs.len() as u64, "{stats:?}");
    assert!(stats.hedges_won >= stalled_pairs.len() as u64, "{stats:?}");
}

fn canary_gateway(backends: Vec<SocketAddr>, baseline: &str, min_samples: u64, ladder: Vec<u32>) -> GatewayServer {
    let mut config = gateway_config(backends, baseline);
    config.canary_backends = vec![1];
    config.canary = CanaryConfig {
        shadow_sample_bp: 10_000,
        min_samples,
        divergence_threshold: 1e-9,
        ladder,
        auto_advance: true,
    };
    GatewayServer::start(config).expect("gateway")
}

#[test]
fn divergent_canary_rolls_back_automatically_with_zero_errors() {
    let dir = scratch_dir("rollback");
    let baseline = write_artifact(&dir, "baseline.json", tiny_model());
    let candidate = write_artifact(&dir, "divergent.json", divergent_model());
    let backend_a = start_backend(&baseline);
    let backend_b = start_backend(&baseline);
    let gateway = canary_gateway(
        vec![backend_a.local_addr(), backend_b.local_addr()],
        &baseline,
        8,
        vec![500, 5_000],
    );

    let mut stream = connect(gateway.local_addr());
    let reload = http_roundtrip(
        &mut stream,
        "POST",
        "/reload",
        Some(&format!("{{\"path\": {}}}", serde::json::to_string(&candidate))),
    )
    .expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.body);
    assert!(reload.body.contains("shadow"), "{}", reload.body);

    // Shadow comparisons run after each response; with min_samples=8 the
    // divergence verdict must fire within a handful of requests.
    for pair_id in 0..16u64 {
        let mut stream = connect(gateway.local_addr());
        let response = http_roundtrip(&mut stream, "POST", "/score", Some(&score_body(pair_id))).expect("score");
        assert_eq!(
            response.status, 200,
            "divergence rollback must not sever live traffic: {}",
            response.body
        );
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = stats(gateway.local_addr());
        if stats_u64(&snapshot, &["canary", "rollbacks"]) >= 1 {
            let phase: String = serde::from_value(snapshot.get("canary").and_then(|c| c.get("phase")).expect("phase"))
                .expect("phase string");
            assert_eq!(phase, "stable", "rollback must land back in Stable");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "rollback never fired: {}",
            serde::json::to_string(&snapshot)
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The canary backend is back on the baseline artifact: digests agree
    // and its /reload counter shows candidate + rollback loads.
    let snapshot = gateway.stats();
    assert_eq!(
        snapshot.backends[0].model_digest, snapshot.backends[1].model_digest,
        "canary backend still serves the divergent artifact"
    );
    assert_eq!(
        snapshot.backends[1].model_version, 3,
        "expected load(candidate)+load(baseline) on the canary"
    );
    assert_eq!(
        snapshot.responses_non_2xx, 0,
        "zero severed/errored responses through the whole cycle"
    );
}

#[test]
fn equivalent_canary_walks_the_ladder_to_promotion() {
    let dir = scratch_dir("promote");
    let baseline = write_artifact(&dir, "baseline.json", tiny_model());
    // Same trained parameters exported under a new path: the digest is
    // equal, the scores bit-identical — the canary must promote.
    let candidate = write_artifact(&dir, "candidate.json", tiny_model());
    let backend_a = start_backend(&baseline);
    let backend_b = start_backend(&baseline);
    let gateway = canary_gateway(
        vec![backend_a.local_addr(), backend_b.local_addr()],
        &baseline,
        4,
        vec![2_000],
    );

    let mut stream = connect(gateway.local_addr());
    let reload = http_roundtrip(
        &mut stream,
        "POST",
        "/reload",
        Some(&format!("{{\"path\": {}}}", serde::json::to_string(&candidate))),
    )
    .expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.body);

    // Identical scores: each rung passes after min_samples=4 comparisons.
    // Shadow rung → Serving(2000) → promote (single-rung ladder).
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut pair_id = 0u64;
    loop {
        let mut stream = connect(gateway.local_addr());
        let response = http_roundtrip(&mut stream, "POST", "/score", Some(&score_body(pair_id))).expect("score");
        assert_eq!(response.status, 200, "{}", response.body);
        pair_id += 1;
        let snapshot = stats(gateway.local_addr());
        if stats_u64(&snapshot, &["canary", "promotions"]) >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "promotion never fired: {}",
            serde::json::to_string(&snapshot)
        );
    }
    let snapshot = gateway.stats();
    assert_eq!(snapshot.canary.phase, "stable");
    assert_eq!(
        snapshot.canary.rollbacks, 0,
        "an equivalent candidate must never roll back"
    );
    assert_eq!(
        snapshot.backends[0].model_version, 2,
        "promotion must reload the baseline backend onto the candidate"
    );
    assert_eq!(snapshot.backends[0].model_digest, snapshot.backends[1].model_digest);
    assert_eq!(
        snapshot.responses_non_2xx, 0,
        "zero errored responses through the promotion"
    );
    // A new canary can now begin: the controller is Stable again.
    let mut stream = connect(gateway.local_addr());
    let again = http_roundtrip(
        &mut stream,
        "POST",
        "/reload",
        Some(&format!("{{\"path\": {}}}", serde::json::to_string(&candidate))),
    )
    .expect("second reload");
    assert_eq!(again.status, 200, "{}", again.body);
}

#[test]
fn gateway_applies_the_same_parser_conformance_rules() {
    let dir = scratch_dir("conformance");
    let baseline = write_artifact(&dir, "baseline.json", tiny_model());
    let backend = start_backend(&baseline);
    let gateway = GatewayServer::start(gateway_config(vec![backend.local_addr()], &baseline)).expect("gateway");

    // Conflicting Content-Length repeats are a 400 at the gateway edge —
    // the request never reaches a backend where it could be framed
    // differently.
    let mut stream = connect(gateway.local_addr());
    let body = score_body(1);
    write!(
        stream,
        "POST /score HTTP/1.1\r\nHost: gw\r\nContent-Length: {}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
        body.len() + 2
    )
    .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    assert!(response.contains("conflicting Content-Length"), "{response}");

    // Transfer-Encoding is refused outright, matching the backend parser.
    // If the gateway instead framed this request by its (absent)
    // Content-Length, the chunk bytes would be re-parsed as a smuggled
    // follow-up request on the same connection — here a second /score whose
    // response would desynchronize the client.
    let mut stream = connect(gateway.local_addr());
    write!(
        stream,
        "POST /score HTTP/1.1\r\nHost: gw\r\nTransfer-Encoding: chunked\r\n\r\n\
         1c\r\nPOST /score HTTP/1.1\r\n\r\n\r\n0\r\n\r\n"
    )
    .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    assert!(response.contains("chunked bodies are not supported"), "{response}");
    assert_eq!(
        response.matches("HTTP/1.1 ").count(),
        1,
        "chunk payload must never be parsed as a second request: {response}"
    );

    // A protocol the gateway does not speak is a 400, not a guess.
    let mut stream = connect(gateway.local_addr());
    write!(stream, "GET /healthz HTTP/2.0\r\nHost: gw\r\n\r\n").expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    assert!(response.contains("unsupported protocol"), "{response}");

    // HTTP/1.0 defaults to close: the gateway must say so and hang up,
    // instead of silently holding a connection the client is waiting to
    // see end.
    let mut stream = connect(gateway.local_addr());
    write!(stream, "GET /healthz HTTP/1.0\r\nHost: gw\r\n\r\n").expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read closes");
    assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
    assert!(response.contains("Connection: close"), "{response}");

    // ...unless the HTTP/1.0 client explicitly asks for keep-alive, in
    // which case the connection survives for a second request.
    let mut stream = connect(gateway.local_addr());
    write!(stream, "GET /healthz HTTP/1.0\r\nHost: gw\r\nConnection: keep-alive\r\n\r\n").expect("write first");
    let first = er_serve::read_http_response(&mut stream).expect("first response");
    assert_eq!(first.status, 200, "{}", first.body);
    write!(stream, "GET /healthz HTTP/1.0\r\nHost: gw\r\nConnection: close\r\n\r\n").expect("write second");
    let second = er_serve::read_http_response(&mut stream).expect("second response on a kept-alive connection");
    assert_eq!(second.status, 200, "{}", second.body);

    // Expect: 100-continue gets the interim response from the gateway, and
    // the final response still carries real backend scores.
    let mut stream = connect(gateway.local_addr());
    write!(
        stream,
        "POST /score HTTP/1.1\r\nHost: gw\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).expect("read interim");
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body.as_bytes()).expect("write body");
    let response = er_serve::read_http_response(&mut stream).expect("final response");
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("scores"), "{}", response.body);
}
