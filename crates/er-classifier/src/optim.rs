//! First-order optimizers used by the learners in this workspace.
//!
//! Both the classifier substitutes (logistic regression, MLP) and the LearnRisk
//! risk model are trained by plain gradient descent, so a small shared
//! optimizer abstraction keeps the training loops uniform.

use serde::{Deserialize, Serialize};

/// A first-order optimizer updating a flat parameter vector from a gradient.
pub trait Optimizer {
    /// Applies one update step: `params -= update(grads)`.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Resets any internal state (moment estimates, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with an optional momentum term.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates plain SGD (no momentum), the optimizer of Eq. 16–17 in the paper.
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(learning_rate: f64, momentum: f64) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len());
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.learning_rate * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            *v = self.momentum * *v + g;
            *p -= self.learning_rate * *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the conventional defaults (β1 = 0.9, β2 = 0.999).
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

/// L1 + L2 regularization configuration shared by the learners.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Regularization {
    /// L1 (lasso) coefficient.
    pub l1: f64,
    /// L2 (ridge) coefficient.
    pub l2: f64,
}

impl Regularization {
    /// No regularization.
    pub const NONE: Regularization = Regularization { l1: 0.0, l2: 0.0 };

    /// Creates a configuration.
    pub fn new(l1: f64, l2: f64) -> Self {
        Self { l1, l2 }
    }

    /// Adds the regularization gradient of `params` into `grads`.
    pub fn add_gradient(&self, params: &[f64], grads: &mut [f64]) {
        if self.l1 == 0.0 && self.l2 == 0.0 {
            return;
        }
        for (g, &p) in grads.iter_mut().zip(params) {
            *g += self.l2 * 2.0 * p + self.l1 * p.signum();
        }
    }

    /// Regularization penalty value for reporting.
    pub fn penalty(&self, params: &[f64]) -> f64 {
        let l1: f64 = params.iter().map(|p| p.abs()).sum();
        let l2: f64 = params.iter().map(|p| p * p).sum();
        self.l1 * l1 + self.l2 * l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with the given optimizer.
    fn minimize<O: Optimizer>(mut opt: O, steps: usize) -> f64 {
        let mut params = vec![0.0f64];
        for _ in 0..steps {
            let grads = vec![2.0 * (params[0] - 3.0)];
            opt.step(&mut params, &grads);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(Sgd::new(0.1), 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = minimize(Sgd::with_momentum(0.05, 0.9), 300);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(Adam::new(0.1), 500);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::new(0.1);
        let mut p = vec![1.0];
        adam.step(&mut p, &[0.5]);
        assert!(adam.t > 0);
        adam.reset();
        assert_eq!(adam.t, 0);

        let mut sgd = Sgd::with_momentum(0.1, 0.9);
        sgd.step(&mut p, &[0.5]);
        assert!(!sgd.velocity.is_empty());
        sgd.reset();
        assert!(sgd.velocity.is_empty());
    }

    #[test]
    fn regularization_gradient_and_penalty() {
        let reg = Regularization::new(0.1, 0.5);
        let params = vec![2.0, -1.0];
        let mut grads = vec![0.0, 0.0];
        reg.add_gradient(&params, &mut grads);
        // d/dp (0.5 p^2*... ) -> l2*2p + l1*sign(p)
        assert!((grads[0] - (0.5 * 4.0 + 0.1)).abs() < 1e-12);
        assert!((grads[1] - (0.5 * -2.0 - 0.1)).abs() < 1e-12);
        let penalty = reg.penalty(&params);
        assert!((penalty - (0.1 * 3.0 + 0.5 * 5.0)).abs() < 1e-12);

        let mut g2 = vec![1.0, 1.0];
        Regularization::NONE.add_gradient(&params, &mut g2);
        assert_eq!(g2, vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut sgd = Sgd::new(0.1);
        let mut p = vec![0.0, 1.0];
        sgd.step(&mut p, &[1.0]);
    }
}
