//! Named benchmark configurations mirroring the paper's datasets (Table 2).
//!
//! The original datasets (after blocking) have the following statistics, which
//! the generators reproduce *proportionally* at a configurable scale:
//!
//! | Dataset | Size    | # Matches | # Attributes |
//! |---------|---------|-----------|--------------|
//! | DS      | 41,416  | 5,073     | 4            |
//! | AB      | 52,191  | 904       | 3            |
//! | AG      | 13,049  | 1,150     | 4            |
//! | SG      | 144,946 | 6,842     | 7            |
//!
//! A scale of `1.0` reproduces the paper's sizes; the default experiment scale
//! is smaller so the full evaluation suite runs in minutes on a laptop while
//! preserving the match rates and schema shapes.

use crate::domains::{BibliographicDomain, ProductDomain, SongDomain};
use crate::generator::{generate, DatasetConfig, GeneratedDataset};
use crate::perturb::DirtinessProfile;
use serde::{Deserialize, Serialize};

/// The benchmark datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// DBLP – Google Scholar (bibliographic).
    DblpScholar,
    /// Abt – Buy (consumer electronics products).
    AbtBuy,
    /// Amazon – Google (software products).
    AmazonGoogle,
    /// Songs (single-table deduplication).
    Songs,
    /// DBLP – ACM (bibliographic, used as OOD training source).
    DblpAcm,
}

impl BenchmarkId {
    /// Short name used in the paper (DS, AB, AG, SG, DA).
    pub fn short_name(self) -> &'static str {
        match self {
            BenchmarkId::DblpScholar => "DS",
            BenchmarkId::AbtBuy => "AB",
            BenchmarkId::AmazonGoogle => "AG",
            BenchmarkId::Songs => "SG",
            BenchmarkId::DblpAcm => "DA",
        }
    }

    /// The four datasets evaluated in Figure 9 / Table 2.
    pub fn paper_datasets() -> [BenchmarkId; 4] {
        [
            BenchmarkId::DblpScholar,
            BenchmarkId::AbtBuy,
            BenchmarkId::AmazonGoogle,
            BenchmarkId::Songs,
        ]
    }

    /// Table 2 pair count of the original dataset.
    pub fn paper_size(self) -> usize {
        match self {
            BenchmarkId::DblpScholar => 41_416,
            BenchmarkId::AbtBuy => 52_191,
            BenchmarkId::AmazonGoogle => 13_049,
            BenchmarkId::Songs => 144_946,
            BenchmarkId::DblpAcm => 12_363,
        }
    }

    /// Table 2 match count of the original dataset.
    pub fn paper_matches(self) -> usize {
        match self {
            BenchmarkId::DblpScholar => 5_073,
            BenchmarkId::AbtBuy => 904,
            BenchmarkId::AmazonGoogle => 1_150,
            BenchmarkId::Songs => 6_842,
            BenchmarkId::DblpAcm => 2_220,
        }
    }

    /// Number of attributes of the dataset (Table 2).
    pub fn paper_attributes(self) -> usize {
        match self {
            BenchmarkId::DblpScholar => 4,
            BenchmarkId::AbtBuy => 3,
            BenchmarkId::AmazonGoogle => 4,
            BenchmarkId::Songs => 7,
            BenchmarkId::DblpAcm => 4,
        }
    }

    /// Match rate of the original dataset.
    pub fn paper_match_rate(self) -> f64 {
        self.paper_matches() as f64 / self.paper_size() as f64
    }
}

/// Builds the [`DatasetConfig`] for a benchmark at a given scale.
///
/// `scale = 1.0` reproduces the paper's pair counts; smaller scales shrink
/// the workload proportionally (minimum 600 pairs) while keeping the match
/// rate.  The paper's match rates are low (1.7 %–12 %); to keep the scaled
/// workloads statistically useful we floor the match rate at 4 %.
pub fn benchmark_config(id: BenchmarkId, scale: f64, seed: u64) -> DatasetConfig {
    let target_pairs = ((id.paper_size() as f64 * scale) as usize).max(600);
    let target_match_rate = id.paper_match_rate().max(0.04);
    let target_matches = (target_pairs as f64 * target_match_rate).ceil() as usize;
    // Each duplicated entity yields roughly one equivalent pair, so size the
    // entity pool from the match target.
    let duplicate_rate = 0.65;
    let n_entities = ((target_matches as f64 / duplicate_rate) * 1.25).ceil() as usize;

    let (left_profile, right_profile, sibling_rate, dedup) = match id {
        BenchmarkId::DblpScholar => (
            DirtinessProfile::LIGHT.scaled(1.5),
            DirtinessProfile::MODERATE.scaled(1.4),
            0.40,
            false,
        ),
        BenchmarkId::DblpAcm => (
            DirtinessProfile::LIGHT,
            DirtinessProfile::LIGHT.scaled(1.3),
            0.30,
            false,
        ),
        BenchmarkId::AbtBuy => (
            DirtinessProfile::MODERATE.scaled(1.2),
            DirtinessProfile::HEAVY.scaled(1.2),
            0.55,
            false,
        ),
        BenchmarkId::AmazonGoogle => (
            DirtinessProfile::MODERATE.scaled(1.2),
            DirtinessProfile::HEAVY.scaled(1.1),
            0.50,
            false,
        ),
        BenchmarkId::Songs => (
            DirtinessProfile::LIGHT.scaled(1.4),
            DirtinessProfile::MODERATE.scaled(1.3),
            0.40,
            true,
        ),
    };

    DatasetConfig {
        name: id.short_name().to_owned(),
        n_entities: n_entities.max(120),
        duplicate_rate,
        sibling_rate,
        left_profile,
        right_profile,
        target_pairs,
        target_match_rate,
        dedup,
        seed,
    }
}

/// Generates a benchmark dataset at the given scale and seed.
pub fn generate_benchmark(id: BenchmarkId, scale: f64, seed: u64) -> GeneratedDataset {
    let config = benchmark_config(id, scale, seed);
    match id {
        BenchmarkId::DblpScholar => generate(&BibliographicDomain::dblp_scholar(), &config),
        BenchmarkId::DblpAcm => generate(&BibliographicDomain::dblp_acm(), &config),
        BenchmarkId::AbtBuy => generate(&ProductDomain::abt_buy(), &config),
        BenchmarkId::AmazonGoogle => generate(&ProductDomain::amazon_google(), &config),
        BenchmarkId::Songs => generate(&SongDomain::songs(), &config),
    }
}

/// Statistics row of Table 2 (paper statistics plus the generated workload's).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset short name.
    pub dataset: String,
    /// Paper pair count.
    pub paper_size: usize,
    /// Paper match count.
    pub paper_matches: usize,
    /// Paper attribute count.
    pub paper_attributes: usize,
    /// Generated pair count.
    pub generated_size: usize,
    /// Generated match count.
    pub generated_matches: usize,
    /// Generated attribute count.
    pub generated_attributes: usize,
}

/// Produces the Table 2 reproduction rows for the four paper datasets.
pub fn table2(scale: f64, seed: u64) -> Vec<Table2Row> {
    BenchmarkId::paper_datasets()
        .into_iter()
        .map(|id| {
            let ds = generate_benchmark(id, scale, seed);
            Table2Row {
                dataset: id.short_name().to_owned(),
                paper_size: id.paper_size(),
                paper_matches: id.paper_matches(),
                paper_attributes: id.paper_attributes(),
                generated_size: ds.workload.len(),
                generated_matches: ds.workload.match_count(),
                generated_attributes: ds.workload.attribute_count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_statistics_match_table2() {
        assert_eq!(BenchmarkId::DblpScholar.paper_size(), 41_416);
        assert_eq!(BenchmarkId::AbtBuy.paper_matches(), 904);
        assert_eq!(BenchmarkId::Songs.paper_attributes(), 7);
        assert_eq!(BenchmarkId::AmazonGoogle.short_name(), "AG");
        assert!(BenchmarkId::AbtBuy.paper_match_rate() < 0.02);
        assert_eq!(BenchmarkId::paper_datasets().len(), 4);
    }

    #[test]
    fn generated_benchmarks_have_expected_schemas() {
        for id in BenchmarkId::paper_datasets() {
            let ds = generate_benchmark(id, 0.02, 3);
            assert_eq!(ds.workload.attribute_count(), id.paper_attributes(), "{id:?}");
            assert!(ds.workload.len() >= 600, "{id:?} too small: {}", ds.workload.len());
            assert!(ds.workload.match_count() > 0, "{id:?} has no matches");
        }
    }

    #[test]
    fn songs_benchmark_is_dedup() {
        let config = benchmark_config(BenchmarkId::Songs, 0.01, 1);
        assert!(config.dedup);
        let config = benchmark_config(BenchmarkId::DblpScholar, 0.01, 1);
        assert!(!config.dedup);
    }

    #[test]
    fn scale_controls_size() {
        let small = benchmark_config(BenchmarkId::DblpScholar, 0.02, 1);
        let large = benchmark_config(BenchmarkId::DblpScholar, 0.1, 1);
        assert!(large.target_pairs > small.target_pairs * 3);
        // Scale 1.0 reproduces the paper's size.
        let full = benchmark_config(BenchmarkId::DblpScholar, 1.0, 1);
        assert_eq!(full.target_pairs, 41_416);
    }

    #[test]
    fn table2_rows_cover_all_datasets() {
        let rows = table2(0.015, 5);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.generated_attributes, row.paper_attributes);
            assert!(row.generated_matches > 0);
            assert!(row.generated_size >= row.generated_matches);
        }
    }
}
