//! A dependency-free HTTP/1.1 front-end over [`std::net::TcpListener`].
//!
//! The serving lifecycle the rest of the crate builds toward: a
//! [`ScoreServer`] owns every connection from one **event-driven readiness
//! loop** (the [`crate::readiness`] poller — `epoll` on Linux) running on a
//! single driver thread: it accepts, reads and parses requests over
//! nonblocking sockets, admits scoring requests into a **bounded queue**,
//! and a batcher thread coalesces admitted requests into **micro-batches**
//! (up to [`ServerConfig::max_batch`] requests or
//! [`ServerConfig::batch_window`], whichever comes first) scored through one
//! [`crate::ShardedExecutor::try_score_batch`] call per window. Scoring
//! outcomes return to the driver as completions (a mailbox plus a poll
//! waker), which writes the response when the socket is ready — a parked
//! connection costs a few hundred bytes of state, not a thread, so thousands
//! of mostly-idle keep-alive connections are cheap. Every micro-batch is
//! scored through a single [`ReloadableExecutor`] snapshot, so each HTTP
//! response carries exactly one artifact version (the `model_version` field
//! / `X-Model-Version` header) even while a hot reload is in flight.
//!
//! **Backpressure is explicit and deterministic**: when the admission queue
//! is full the server answers `429 Too Many Requests` immediately (with a
//! JSON error body and `Retry-After: 0`), and once shutdown has begun it
//! answers `503 Service Unavailable` — requests are never silently dropped
//! and connections are never severed mid-request. With
//! [`ServerConfig::rate_limit`] set, a per-client token bucket
//! ([`crate::ratelimit`]) additionally answers 429 **with**
//! `X-RateLimit-*` headers before the queue is touched, so clients can tell
//! "you are over budget" from "the server is saturated".
//!
//! ## Wire format
//!
//! | Method & path      | Body                                   | Success |
//! |--------------------|----------------------------------------|---------|
//! | `POST /score`      | one [`ScoreRequest`] object or an array | `200` `{"model_version": v, "scores": [..]}` |
//! | `GET /healthz`     | —                                      | `200` `{"status": "ok", "model_version": v, "model_digest": ..}` |
//! | `GET /version`     | —                                      | `200` `{"model_version": v, "producer": .., "format_version": .., "model_digest": ..}` |
//! | `GET /stats`       | —                                      | `200` response counters + micro-batch stats |
//! | `GET /metrics`     | —                                      | `200` Prometheus text exposition ([`crate::metrics`]) |
//! | `POST /reload`     | `{"path": "artifact.json"}`            | `200` `{"model_version": v+1}` |
//! | `POST /admin/pause` / `POST /admin/resume` | —              | `200` `{"paused": ..}` |
//!
//! Error responses always carry a JSON `{"error": ..}` body: `400` malformed
//! HTTP or JSON, `404`/`405` unknown path/method, `409` refused reload (the
//! old version keeps serving), `413` oversized body, `422` well-formed but
//! unscorable request (e.g. short metric row, with `request_index`), `429`
//! admission queue full, `500` a scoring-pipeline panic was isolated to this
//! batch, `503` draining or at the connection cap, `504` the request's
//! `X-Deadline-Ms` budget expired before scoring started. Scores round-trip
//! **bit-exactly** over the wire: the JSON float encoding is
//! shortest-round-trip (see the vendored `serde`), so socket scores equal
//! in-process scores to the last `f64` bit — the integration suite asserts
//! exactly that.
//!
//! ## Failure containment
//!
//! The batcher and the executor's shard workers run under `catch_unwind`
//! supervision: a panicking worker is counted
//! (`er_serve_worker_panics_total{role}`), its in-flight jobs get a
//! deterministic 500 (never a severed connection), and the batcher thread is
//! restarted if an unwind ever escapes a batch. Every internal lock recovers
//! from poisoning via `into_inner`, so one panic can never permanently wedge
//! admission or stats. The [`crate::fault`] module can inject these failures
//! deterministically; `serve_bench`'s chaos phase replays traffic under
//! injected panics, stalls, and torn artifact writes to attest all of it.

use crate::engine::ScoreRequest;
use crate::fault::{FaultKind, FaultPlan};
use crate::metrics::MetricsRegistry;
use crate::ratelimit::{RateLimitConfig, RateLimitDecision, RateLimiter};
use crate::readiness::{self, Interest, Token};
use crate::reload::ReloadableExecutor;
use crate::trace::{valid_trace_id, ActiveTrace, SpanSet, Stage, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`ScoreServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, benches).
    pub addr: String,
    /// Maximum admitted-but-unscored jobs (one HTTP scoring request = one
    /// job); the queue answers 429 beyond this.
    pub queue_capacity: usize,
    /// Micro-batch size: the batcher closes a window once this many requests
    /// have coalesced.
    pub max_batch: usize,
    /// Micro-batch window: the longest the batcher waits for more requests
    /// after the first one arrives.
    pub batch_window: Duration,
    /// Maximum accepted request-body size in bytes (413 beyond it).
    pub max_body_bytes: usize,
    /// Per-client token-bucket rate limiting in front of the admission
    /// queue (`None` disables it). Clients are keyed by their `X-Client-Id`
    /// header, falling back to the peer IP. An exhausted bucket yields a 429
    /// with `X-RateLimit-*` headers — distinguishable from the queue-full
    /// 429, which carries `Retry-After: 0` and no `X-RateLimit-*` headers.
    pub rate_limit: Option<RateLimitConfig>,
    /// Whether the [`crate::metrics::MetricsRegistry`] records observations
    /// and `GET /metrics` serves them. Disabling removes every observation
    /// from the hot path (the A/B switch `serve_bench` uses to prove the
    /// metrics overhead is below the perf-gate noise floor) — which also
    /// freezes `/stats` at zero, since its counters are re-derived from the
    /// registry.
    pub metrics_enabled: bool,
    /// Structured request-log sampling: every `log_sample`-th request (by
    /// global arrival sequence) emits one JSON line to stderr. `0` disables
    /// logging; `1` logs every request. Sampling is deterministic — request
    /// sequence `seq` is logged iff `seq % log_sample == 0`.
    pub log_sample: u64,
    /// How many completed request traces the [`crate::trace::Tracer`] ring
    /// retains (an eighth of the capacity is reserved for the slowest traces,
    /// which survive wrap-around). `0` disables tracing entirely: no spans
    /// are recorded, `GET /debug/traces` answers 404, and `/stats` carries no
    /// exemplars — the A/B control `serve_bench` measures tracing overhead
    /// against. Request-id handling (`X-Request-Id` accept/echo) stays on
    /// either way.
    pub trace_capacity: usize,
    /// Default per-request deadline budget in milliseconds, applied when a
    /// request carries no (or an unusable) `X-Deadline-Ms` header. The
    /// batcher sheds jobs whose budget has already expired before scoring
    /// them, answering `504` with `er_serve_rejected_total{cause="deadline"}`.
    /// `None` (the default) imposes no deadline.
    pub default_deadline_ms: Option<u64>,
    /// Maximum concurrently served connections. The readiness loop answers
    /// additional connections with an immediate `503` + `Retry-After` instead
    /// of admitting an unbounded connection pile-up.
    pub max_connections: usize,
    /// Write-progress budget on accepted sockets: a connection whose peer
    /// accepts no response bytes for this long is closed, so a reader that
    /// stops draining its receive window cannot pin response state forever.
    pub write_timeout: Duration,
    /// Hard per-connection lifetime: a keep-alive connection is closed (after
    /// the in-flight request, if any, completes) once it has been open this
    /// long.
    pub max_connection_lifetime: Duration,
    /// Deterministic fault injection ([`crate::fault`]). Defaults to
    /// [`FaultPlan::from_env`] (the `ER_FAULT_PLAN` variable), i.e. `None`
    /// unless an operator or harness opted in.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 256,
            max_batch: 128,
            batch_window: Duration::from_micros(200),
            max_body_bytes: 1 << 20,
            rate_limit: None,
            metrics_enabled: true,
            log_sample: 0,
            trace_capacity: 512,
            default_deadline_ms: None,
            max_connections: 256,
            write_timeout: Duration::from_secs(10),
            max_connection_lifetime: Duration::from_secs(600),
            fault_plan: FaultPlan::from_env(),
        }
    }
}

/// Response and micro-batching counters of a running server (a monotonic
/// snapshot; the smoke tiers assert "zero non-2xx outside the deliberate
/// backpressure phase" from these).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Successful responses (2xx).
    pub responses_2xx: u64,
    /// Client errors other than backpressure (400/404/405/413/422).
    pub responses_4xx: u64,
    /// Backpressure rejections (429).
    pub responses_429: u64,
    /// Server errors including draining 503s.
    pub responses_5xx: u64,
    /// Micro-batches scored.
    pub batches: u64,
    /// Requests scored across all micro-batches (`/ batches` = mean
    /// coalescing factor).
    pub batched_requests: u64,
}

/// Re-derives the `/stats` counters from the metrics registry — the
/// registry is the single source of truth, so `/stats` and `/metrics` can
/// never disagree (they are the same counters, classified by status class).
fn stats_from_registry(metrics: &MetricsRegistry) -> ServerStats {
    let mut stats = ServerStats::default();
    for (labels, value) in metrics.responses.snapshot() {
        let status: u16 = labels
            .iter()
            .find(|(name, _)| *name == "status")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        match status {
            200..=299 => stats.responses_2xx += value,
            429 => stats.responses_429 += value,
            400..=499 => stats.responses_4xx += value,
            _ => stats.responses_5xx += value,
        }
    }
    stats.batches = metrics.batches.get();
    stats.batched_requests = metrics.batched_requests.get();
    stats
}

// ---------------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------------

/// A scoring job failed; maps to a 422 response.
#[derive(Debug, Clone)]
struct JobFailure {
    request_index: usize,
    message: String,
}

/// How a job left the batcher.
enum JobOutcome {
    /// Scored through one executor snapshot → 200.
    Scored(u64, Vec<f64>),
    /// Well-formed HTTP but unscorable content → 422.
    Unscorable(JobFailure),
    /// The batch this job rode in panicked; supervision isolated the blast
    /// radius to a deterministic 500 instead of a severed connection.
    Panicked,
    /// The job's deadline budget expired before scoring started → 504.
    Expired,
}

/// What the batcher sends back to the parked connection: the scoring
/// outcome plus the request's in-flight trace (with the queue/batch/score
/// spans recorded), which the driver finishes and commits.
struct JobReply {
    outcome: JobOutcome,
    trace: Option<ActiveTrace>,
}

struct Job {
    requests: Vec<ScoreRequest>,
    reply: ReplySender,
    /// The request's trace, traveling with the job across threads.
    trace: Option<ActiveTrace>,
    /// When the handler pushed the job into the admission queue.
    enqueued: Instant,
    /// When the batcher drained the job out of the queue (stamped by
    /// [`AdmissionQueue::drain_into`]); closes the `admission_queue` span.
    taken: Option<Instant>,
    /// Absolute deadline derived from `X-Deadline-Ms` (or the server
    /// default); the batcher sheds the job with a 504 once this passes.
    deadline: Option<Instant>,
}

enum AdmitError {
    /// Queue at capacity → 429.
    Full,
    /// Server draining → 503.
    Closed,
}

#[derive(Default)]
struct QueueInner {
    jobs: VecDeque<Job>,
    paused: bool,
    closed: bool,
}

/// The bounded admission queue between connection handlers and the batcher.
struct AdmissionQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job, or hands it back with the rejection reason so the
    /// caller keeps ownership of the in-flight trace.
    #[allow(clippy::result_large_err)] // the Err deliberately returns the whole job
    fn push(&self, job: Job) -> Result<(), (AdmitError, Job)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err((AdmitError::Closed, job));
        }
        if inner.jobs.len() >= self.capacity {
            return Err((AdmitError::Full, job));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }

    fn set_paused(&self, paused: bool) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).paused = paused;
        self.ready.notify_all();
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }

    /// Blocks for work, then coalesces jobs into one micro-batch: drains
    /// until `max_requests` requests have accumulated or `window` has passed
    /// since the first job was taken. Returns `None` when the queue is closed
    /// and fully drained (pause is ignored once closed, so shutdown never
    /// strands an admitted job).
    fn pop_batch(&self, max_requests: usize, window: Duration) -> Option<Vec<Job>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.closed {
                if inner.jobs.is_empty() {
                    return None;
                }
                break;
            }
            if !inner.paused && !inner.jobs.is_empty() {
                break;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        let mut batch = Vec::new();
        let mut total = 0usize;
        Self::drain_into(&mut inner, &mut batch, &mut total, max_requests);
        if total < max_requests && !inner.closed {
            let deadline = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
                if !inner.paused || inner.closed {
                    Self::drain_into(&mut inner, &mut batch, &mut total, max_requests);
                }
                if total >= max_requests || inner.closed {
                    break;
                }
            }
        }
        Some(batch)
    }

    fn drain_into(inner: &mut QueueInner, batch: &mut Vec<Job>, total: &mut usize, max_requests: usize) {
        let drained_at = Instant::now();
        while *total < max_requests {
            let Some(mut job) = inner.jobs.pop_front() else { break };
            job.taken = Some(drained_at);
            *total += job.requests.len().max(1);
            batch.push(job);
        }
    }
}

// ---------------------------------------------------------------------------
// Completions (worker threads → driver)
// ---------------------------------------------------------------------------

/// A finished asynchronous unit of work, posted to the driver thread by the
/// batcher (scoring) or a reload worker, keyed by the job id the driver
/// allotted when it parked the connection.
enum Completion {
    /// The batcher finished (or abandoned) a scoring job.
    Score { job: u64, reply: JobReply },
    /// A reload worker finished `POST /reload`; the response is already
    /// decided, the driver only serializes and flushes it.
    Reload {
        job: u64,
        status: u16,
        body: String,
        version: Option<u64>,
        trace: Option<ActiveTrace>,
    },
}

/// The completion mailbox between worker threads and the driver: finished
/// jobs are pushed here and the waker interrupts the driver's poll.
struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: readiness::Waker,
}

impl Completions {
    fn push(&self, completion: Completion) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).push(completion);
        let _ = self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// The batcher's reply handle for one admitted job — the readiness-loop
/// replacement for a blocking `SyncSender<JobReply>`. Dropping it without
/// sending (the batcher died mid-batch and its jobs unwound with it) posts
/// a `Panicked` completion, so the parked connection still gets its
/// deterministic 500 — never a severed connection.
struct ReplySender {
    completions: Arc<Completions>,
    job: u64,
    sent: bool,
}

impl ReplySender {
    fn new(completions: Arc<Completions>, job: u64) -> Self {
        Self {
            completions,
            job,
            sent: false,
        }
    }

    /// Posts the scoring outcome to the driver and wakes its poll.
    fn send(mut self, reply: JobReply) {
        self.sent = true;
        self.completions.push(Completion::Score { job: self.job, reply });
    }

    /// Disarms the drop hook for a job that never left the driver (queue
    /// rejections answer inline; no completion must follow).
    fn cancel(mut self) {
        self.sent = true;
    }
}

impl Drop for ReplySender {
    fn drop(&mut self) {
        if !self.sent {
            self.completions.push(Completion::Score {
                job: self.job,
                reply: JobReply {
                    outcome: JobOutcome::Panicked,
                    trace: None,
                },
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct Shared {
    executor: Arc<ReloadableExecutor>,
    queue: AdmissionQueue,
    metrics: Arc<MetricsRegistry>,
    limiter: Option<RateLimiter>,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Global request arrival sequence, driving deterministic log sampling.
    log_seq: AtomicU64,
    /// `None` when [`ServerConfig::trace_capacity`] is 0.
    tracer: Option<Tracer>,
    /// Counter behind generated request ids (requests without a valid
    /// client-supplied `X-Request-Id`).
    id_seq: AtomicU64,
}

impl Shared {
    fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The request id for this request: the client's `X-Request-Id` when it
    /// is well-formed (see [`valid_trace_id`]), else a generated `er-…` id.
    fn request_id(&self, client_supplied: Option<&str>) -> String {
        match client_supplied {
            Some(id) if valid_trace_id(id) => id.to_string(),
            _ => format!("er-{:08x}", self.id_seq.fetch_add(1, Ordering::Relaxed)),
        }
    }
}

/// A running HTTP scoring server; see the [module docs](self) for the wire
/// format. Dropping the handle shuts the server down gracefully (drains the
/// admitted queue, joins every thread).
///
/// # Examples
///
/// Stand a model up on an ephemeral port and probe it over a raw socket:
///
/// ```
/// use er_base::Label;
/// use er_rulegen::{CmpOp, Condition, Rule};
/// use er_serve::{http_roundtrip, ReloadableExecutor, ScoreServer, ScoringEngine, ServeConfig, ServerConfig};
/// use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};
/// use std::net::TcpStream;
/// use std::sync::Arc;
///
/// # fn main() -> std::io::Result<()> {
/// let feature_set = RiskFeatureSet {
///     rules: vec![Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 10, 0.9)],
///     metrics: vec![],
///     expectations: vec![0.1],
///     support: vec![10],
/// };
/// let model = LearnRiskModel::new(feature_set, RiskModelConfig::default());
/// let executor = Arc::new(ReloadableExecutor::new(
///     ScoringEngine::new(model),
///     ServeConfig::default().with_threads(1),
/// ));
///
/// let server = ScoreServer::start(executor, ServerConfig::default())?;
/// let mut conn = TcpStream::connect(server.local_addr())?;
/// let health = http_roundtrip(&mut conn, "GET", "/healthz", None)?;
/// assert_eq!(health.status, 200);
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct ScoreServer {
    shared: Arc<Shared>,
    completions: Arc<Completions>,
    local_addr: SocketAddr,
    driver: Option<std::thread::JoinHandle<()>>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl ScoreServer {
    /// Binds `config.addr` and starts the connection-driver and batcher
    /// threads. The caller keeps the [`ReloadableExecutor`] handle, so
    /// in-process reloads and the HTTP `POST /reload` endpoint coexist.
    pub fn start(executor: Arc<ReloadableExecutor>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = readiness::Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
        let waker = readiness::Waker::new(&poller, WAKER)?;
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker,
        });
        let metrics = Arc::new(MetricsRegistry::new());
        if config.metrics_enabled {
            // The executor records reload outcomes and version bumps into
            // the same registry the server scrapes.
            executor.attach_metrics(Arc::clone(&metrics));
            metrics.model_version.set(executor.version() as f64);
        }
        // The fault plan rides the executor so reload-built generations
        // inherit it; the server-side hooks read it from the config.
        executor.attach_fault_plan(config.fault_plan.clone());
        let tracer = (config.trace_capacity > 0).then(|| Tracer::new(config.trace_capacity));
        let shared = Arc::new(Shared {
            executor,
            queue: AdmissionQueue::new(config.queue_capacity),
            metrics,
            limiter: config.rate_limit.map(RateLimiter::new),
            config,
            shutdown: AtomicBool::new(false),
            log_seq: AtomicU64::new(0),
            tracer,
            id_seq: AtomicU64::new(0),
        });
        let driver = {
            let shared = Arc::clone(&shared);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name("er-serve-driver".to_string())
                .spawn(move || {
                    Driver {
                        shared,
                        poller,
                        completions,
                        listener,
                        conns: HashMap::new(),
                        awaiting: HashMap::new(),
                        next_token: FIRST_CONN,
                        next_job: 0,
                        active: 0,
                    }
                    .run()
                })?
        };
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervise_batcher(shared))
        };
        Ok(Self {
            shared,
            completions,
            local_addr,
            driver: Some(driver),
            batcher: Some(batcher),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The hot-reloadable serving state behind this server.
    pub fn executor(&self) -> &Arc<ReloadableExecutor> {
        &self.shared.executor
    }

    /// Response/batching counters since start, re-derived from the metrics
    /// registry (all zero when [`ServerConfig::metrics_enabled`] is off).
    pub fn stats(&self) -> ServerStats {
        stats_from_registry(&self.shared.metrics)
    }

    /// The metrics registry behind `GET /metrics`.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The request tracer behind `GET /debug/traces`, or `None` when
    /// [`ServerConfig::trace_capacity`] is 0.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.shared.tracer()
    }

    /// Admitted-but-unscored jobs currently queued.
    pub fn queued_jobs(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops the batcher from draining the queue (requests keep being
    /// admitted until the queue fills and 429s begin) — the deliberate
    /// backpressure switch the smoke tiers flip. Also reachable over the
    /// wire via `POST /admin/pause`.
    pub fn pause_intake(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Resumes draining after [`Self::pause_intake`].
    pub fn resume_intake(&self) {
        self.shared.queue.set_paused(false);
    }

    /// Graceful shutdown: stop accepting, answer in-flight admissions with
    /// 503, score every already-admitted job, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.queue.close();
        // Interrupt the driver's poll so it notices the flag, closes idle
        // connections, and flushes every in-flight response before exiting.
        let _ = self.completions.waker.wake();
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScoreServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Runs [`batch_loop`] under supervision: the loop already confines scoring
/// panics per batch, but if an unwind ever escapes it (a defect in the
/// batching machinery itself), the panic is counted and a fresh loop starts
/// — the server never loses its batcher. Jobs in flight when the loop dies
/// see their [`ReplySender`] drop, which posts a `Panicked` completion the
/// driver answers with a deterministic 500 (never a severed connection).
fn supervise_batcher(shared: Arc<Shared>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| batch_loop(&shared))) {
            // Queue closed and drained: clean shutdown.
            Ok(()) => return,
            Err(_) => {
                if shared.config.metrics_enabled {
                    shared.metrics.worker_panics.with(&[("role", "batcher")]).inc();
                    shared.metrics.worker_restarts.with(&[("role", "batcher")]).inc();
                }
            }
        }
    }
}

fn batch_loop(shared: &Shared) {
    loop {
        let Some(batch) = shared
            .queue
            .pop_batch(shared.config.max_batch, shared.config.batch_window)
        else {
            return;
        };
        if batch.is_empty() {
            continue;
        }
        let metrics = shared.config.metrics_enabled.then_some(&shared.metrics);
        // Shed jobs whose deadline budget expired while they waited: scoring
        // them would spend executor time on answers nobody is waiting for.
        // A shed job still gets a response — a 504, never a severed
        // connection — so clients can tell "too late" from "lost".
        let now = Instant::now();
        let mut batch = batch;
        if batch.iter().any(|job| job.deadline.is_some_and(|d| d <= now)) {
            let (expired, live): (Vec<Job>, Vec<Job>) = batch
                .into_iter()
                .partition(|job| job.deadline.is_some_and(|d| d <= now));
            batch = live;
            for mut job in expired {
                if let Some(metrics) = metrics {
                    metrics.rejected.with(&[("cause", "deadline")]).inc();
                }
                let trace = job.trace.take();
                job.reply.send(JobReply {
                    outcome: JobOutcome::Expired,
                    trace,
                });
            }
            if batch.is_empty() {
                continue;
            }
        }
        let fault = shared.config.fault_plan.as_deref();
        if let Some(ms) = fault.and_then(|plan| plan.check(FaultKind::ScoreStall)) {
            // Injected stall: the batcher sits on work — exactly the failure
            // deadline shedding exists to bound.
            std::thread::sleep(Duration::from_millis(ms));
        }
        // One snapshot per micro-batch: every response in it is attributable
        // to exactly this artifact version, even mid-reload.
        let snapshot = shared.executor.snapshot();
        let total: usize = batch.iter().map(|j| j.requests.len()).sum();
        let version_label = snapshot.version.to_string();
        if let Some(metrics) = metrics {
            metrics.batches.inc();
            metrics.batched_requests.add(total as u64);
            metrics.batch_size.observe(total as f64);
        }
        let all: Vec<ScoreRequest> = batch.iter().flat_map(|j| j.requests.iter().cloned()).collect();
        // Batch-level spans are recorded once and replayed into every
        // coalesced job's trace: all requests in the window share the same
        // batch_wait interval and the same per-shard score spans.
        let tracing = batch.iter().any(|j| j.trace.is_some());
        let score_start = Instant::now();
        let panics_before = snapshot.executor().worker_panic_count();
        // The scoring section runs under `catch_unwind`: a panic (injected
        // `batcher_panic`, or a real defect that escaped the executor's own
        // shard supervision) is confined to this batch — every job in it
        // gets a deterministic 500 and the batcher moves on to the next
        // window.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if fault.is_some_and(|plan| plan.fires(FaultKind::BatcherPanic)) {
                panic!("injected {}", FaultKind::BatcherPanic);
            }
            let mut spans = SpanSet::new();
            let scored = if tracing {
                snapshot.executor().try_score_batch_traced(&all, &mut spans)
            } else {
                snapshot.executor().try_score_batch(&all)
            };
            (scored, spans)
        }));
        let finish_trace = |job: &mut Job, spans: &SpanSet| {
            if let Some(trace) = job.trace.as_mut() {
                let taken = job.taken.unwrap_or(score_start);
                trace.record(Stage::AdmissionQueue, job.enqueued, taken);
                trace.record(Stage::BatchWait, taken, score_start);
                trace.extend_from(spans);
            }
        };
        let (scored, shard_spans) = match attempt {
            Ok(result) => result,
            Err(_) => {
                if let Some(metrics) = metrics {
                    metrics.worker_panics.with(&[("role", "batcher")]).inc();
                    metrics.worker_restarts.with(&[("role", "batcher")]).inc();
                }
                let empty = SpanSet::new();
                for mut job in batch {
                    finish_trace(&mut job, &empty);
                    let trace = job.trace.take();
                    job.reply.send(JobReply {
                        outcome: JobOutcome::Panicked,
                        trace,
                    });
                }
                continue;
            }
        };
        // Shard-worker panics are caught (and their chunks re-scored) inside
        // the executor; the batcher — its only caller here — mirrors the
        // count into the registry.
        let shard_panics = snapshot.executor().worker_panic_count() - panics_before;
        if shard_panics > 0 {
            if let Some(metrics) = metrics {
                metrics.worker_panics.with(&[("role", "shard")]).add(shard_panics);
                metrics.worker_restarts.with(&[("role", "shard")]).add(shard_panics);
            }
        }
        match scored {
            Ok(scores) => {
                if let Some(metrics) = metrics {
                    metrics
                        .score_requests
                        .with(&[("version", &version_label)])
                        .add(total as u64);
                }
                let mut offset = 0;
                for mut job in batch {
                    let slice = scores[offset..offset + job.requests.len()].to_vec();
                    offset += job.requests.len();
                    finish_trace(&mut job, &shard_spans);
                    let trace = job.trace.take();
                    job.reply.send(JobReply {
                        outcome: JobOutcome::Scored(snapshot.version, slice),
                        trace,
                    });
                }
            }
            Err(_) => {
                // At least one coalesced request is malformed. Re-score per
                // job so only the offending response degrades to 422 and the
                // innocent neighbors in the same window still get scores.
                for mut job in batch {
                    let mut job_spans = SpanSet::new();
                    let outcome = match if job.trace.is_some() {
                        snapshot
                            .executor()
                            .try_score_batch_traced(&job.requests, &mut job_spans)
                    } else {
                        snapshot.executor().try_score_batch(&job.requests)
                    } {
                        Ok(scores) => {
                            if let Some(metrics) = metrics {
                                metrics
                                    .score_requests
                                    .with(&[("version", &version_label)])
                                    .add(job.requests.len() as u64);
                            }
                            JobOutcome::Scored(snapshot.version, scores)
                        }
                        Err(e) => JobOutcome::Unscorable(JobFailure {
                            request_index: e.request_index,
                            message: e.to_string(),
                        }),
                    };
                    finish_trace(&mut job, &job_spans);
                    let trace = job.trace.take();
                    job.reply.send(JobReply { outcome, trace });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Readiness-loop connection driver
// ---------------------------------------------------------------------------

/// Upper bound on one poll wait, so per-connection timers (lifetimes, write
/// deadlines, injected stalls, reply timeouts) are scanned at least this
/// often even when no readiness event arrives.
const POLL_TICK: Duration = Duration::from_millis(100);
/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// How long the driver waits for the batcher to score an admitted job
/// before answering 500 (`scoring pipeline stalled`).
const SCORE_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// The listener's token in the readiness loop.
const LISTENER: Token = Token(0);
/// The completion waker's token (new completions, or shutdown).
const WAKER: Token = Token(1);
/// First token handed to an accepted connection.
const FIRST_CONN: u64 = 2;

/// Identity and timing of one parsed request, carried from dispatch to the
/// response's flush completion — where the duration histogram, the sampled
/// log line and the trace commit happen, the same post-write position they
/// had when a blocking handler thread owned the whole exchange.
struct RequestMeta {
    route: &'static str,
    started: Instant,
    client: String,
    rid: String,
}

/// A response queued on a connection, with everything its flush completion
/// must record.
struct Outgoing {
    status: u16,
    /// Pending trace, committed with the status actually flushed (0 if the
    /// write failed) — `/score` and `/reload` responses only.
    trace: Option<ActiveTrace>,
    /// Record a `write` span (enqueue → flushed) on the trace before
    /// committing — `/score` responses only, mirroring the old
    /// `respond_score` single exit point.
    record_write: bool,
    /// When the response was built and enqueued; the write span's start.
    write_start: Instant,
    /// `None` for responses to unparseable requests, which are never logged
    /// or duration-observed (there is no route to attribute them to).
    meta: Option<RequestMeta>,
}

/// The in-flight-job bookkeeping of a parked connection.
struct Await {
    /// The completion key.
    job: u64,
    /// `Some` for scoring jobs: answer 500 (`scoring pipeline stalled`) if
    /// no completion arrives by then. Reloads carry no reply timeout, just
    /// as the blocking handler put no timeout on a reload.
    deadline: Option<Instant>,
    /// When the job was admitted; drives `er_serve_score_duration_seconds`.
    admitted: Instant,
    meta: RequestMeta,
}

/// What the driver is doing with a connection.
enum ConnState {
    /// Accumulating request bytes (registered readable).
    Reading,
    /// A scoring or reload job is in flight. The descriptor is deregistered
    /// so a pipelining client cannot spin the level-triggered poller while
    /// the response is pending; buffered bytes are processed after the
    /// response flushes.
    Awaiting(Await),
    /// Draining `write_buf` (registered writable once the kernel send
    /// buffer pushes back).
    Flushing,
}

/// One connection owned by the readiness loop: a few hundred bytes of state
/// instead of a parked thread.
struct Conn {
    token: u64,
    stream: TcpStream,
    peer: String,
    state: ConnState,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Pending interim-response bytes (`100 Continue`), written ahead of any
    /// final response. Almost always flushed in one nonblocking write; the
    /// unsent tail survives here if the kernel buffer pushes back.
    interim: Vec<u8>,
    /// How much of `interim` has been written.
    interim_sent: usize,
    /// An interim `100 Continue` has been sent for the request currently
    /// being received (reset once that request parses completely), so a
    /// slow-trickling body cannot elicit a storm of interim responses.
    continue_sent: bool,
    outgoing: Option<Outgoing>,
    /// Hard lifetime cap (`None` if it overflows `Instant` — effectively
    /// unlimited).
    expires: Option<Instant>,
    /// Progress deadline while flushing — the nonblocking analog of
    /// `SO_SNDTIMEO`: reset on every partial write, the connection is
    /// closed if the peer accepts nothing for `write_timeout`.
    write_deadline: Option<Instant>,
    /// Injected `client_write_stall`: hold the queued response unsent until
    /// then, as if the client had stopped draining its receive window.
    stall_until: Option<Instant>,
    close_after_flush: bool,
    /// An over-cap connection that exists only to flush its raw 503; not
    /// counted against the connection cap.
    refused: bool,
    /// The interest the descriptor is currently registered for.
    interest: Option<Interest>,
}

/// A response computed by a route handler, not yet serialized to the wire.
struct ResponseParts {
    status: u16,
    content_type: &'static str,
    body: String,
    headers: Vec<(&'static str, String)>,
}

impl ResponseParts {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
            headers: Vec::new(),
        }
    }

    fn with_headers(status: u16, body: String, headers: Vec<(&'static str, String)>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
            headers,
        }
    }
}

/// What one nonblocking read pass left behind.
enum ReadOutcome {
    /// The kernel buffer is drained (or the per-pass cap was hit); the
    /// connection stays open.
    Open,
    /// The peer half-closed its write side (EOF).
    Eof,
    /// The read errored; the connection is gone.
    Gone,
}

/// One flush attempt's result.
enum Flush {
    Done,
    Pending,
    Failed,
}

/// The event loop owning every connection: accepts, reads, parses, routes,
/// parks connections on in-flight jobs, and flushes responses — all over
/// nonblocking sockets driven by the [`crate::readiness`] poller.
struct Driver {
    shared: Arc<Shared>,
    poller: readiness::Poller,
    completions: Arc<Completions>,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    /// job id → token of the connection parked on it.
    awaiting: HashMap<u64, u64>,
    next_token: u64,
    next_job: u64,
    /// Connections counted against `max_connections` (excludes refusals).
    active: usize,
}

impl Driver {
    fn run(mut self) {
        let mut events = readiness::Events::with_capacity(1024);
        loop {
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            if shutting_down {
                // Idle and mid-read connections close now (a half-received
                // head can never be admitted); parked and flushing ones get
                // their response first — never a severed connection.
                self.close_reading_conns();
                if self.conns.is_empty() {
                    return;
                }
            }
            let timeout = self.poll_timeout();
            if self.poller.poll(&mut events, Some(timeout)).is_err() {
                // An unrecoverable poll error must not spin the loop; back
                // off one tick and retry (timers still run below).
                std::thread::sleep(POLL_TICK);
            }
            let mut accept = false;
            let mut ready: Vec<u64> = Vec::with_capacity(events.len());
            for event in events.iter() {
                match event.token() {
                    LISTENER => accept = true,
                    WAKER => self.completions.waker.drain(),
                    Token(token) => ready.push(token),
                }
            }
            if accept && !shutting_down {
                self.accept_ready();
            }
            for token in ready {
                self.on_event(token);
            }
            for completion in self.completions.drain() {
                self.on_completion(completion);
            }
            self.run_timers();
        }
    }

    /// Sleep until the nearest per-connection deadline, capped at
    /// [`POLL_TICK`]; readiness events and the waker interrupt it anyway.
    fn poll_timeout(&self) -> Duration {
        let mut deadline: Option<Instant> = None;
        let mut consider = |at: Option<Instant>| {
            if let Some(at) = at {
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
        };
        for conn in self.conns.values() {
            match &conn.state {
                ConnState::Reading => consider(conn.expires),
                ConnState::Awaiting(wait) => consider(wait.deadline),
                ConnState::Flushing => {
                    consider(conn.stall_until);
                    consider(conn.write_deadline);
                }
            }
        }
        let now = Instant::now();
        deadline.map_or(POLL_TICK, |at| at.saturating_duration_since(now).min(POLL_TICK))
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        // The connection cap bounds live connection state: at the limit the
        // new connection gets one clean 503 + Retry-After and is closed,
        // rather than growing the loop's working set without bound.
        if self.active >= self.shared.config.max_connections {
            self.refuse(token, stream);
            return;
        }
        let _ = stream.set_nodelay(true);
        let peer = stream
            .peer_addr()
            .map(|addr| addr.ip().to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        self.active += 1;
        let conn = Conn {
            token,
            stream,
            peer,
            state: ConnState::Reading,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            interim: Vec::new(),
            interim_sent: 0,
            continue_sent: false,
            outgoing: None,
            // Hard lifetime: a keep-alive connection is closed once it has
            // been open this long, bounding how long any one client can
            // hold a connection slot.
            expires: Instant::now().checked_add(self.shared.config.max_connection_lifetime),
            write_deadline: None,
            stall_until: None,
            close_after_flush: false,
            refused: false,
            interest: None,
        };
        // Drive immediately: request bytes may already be waiting, and the
        // eager read shaves one poll round-trip off accept-to-first-byte.
        self.drive(token, conn, true);
    }

    /// Turns away a connection that would exceed the cap: one raw 503 with
    /// `Retry-After`, written without reading the request, then close. The
    /// refusal flushes through the same machinery as any response but is
    /// not counted against the cap, logged, or duration-observed.
    fn refuse(&mut self, token: u64, stream: TcpStream) {
        if self.shared.config.metrics_enabled {
            self.shared.metrics.rejected.with(&[("cause", "overloaded")]).inc();
            self.shared
                .metrics
                .responses
                .with(&[("route", "refused"), ("status", "503")])
                .inc();
        }
        let body = error_body("server at connection capacity; retry", None);
        let response = format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let conn = Conn {
            token,
            stream,
            peer: String::new(),
            state: ConnState::Flushing,
            read_buf: Vec::new(),
            write_buf: response.into_bytes(),
            written: 0,
            interim: Vec::new(),
            interim_sent: 0,
            continue_sent: false,
            outgoing: None,
            expires: None,
            write_deadline: Some(Instant::now() + self.shared.config.write_timeout),
            stall_until: None,
            close_after_flush: true,
            refused: true,
            interest: None,
        };
        self.drive(token, conn, false);
    }

    fn on_event(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else { return };
        self.drive(token, conn, true);
    }

    /// Runs a connection's state machine until it parks (needs more bytes,
    /// a job completion, kernel send-buffer space, or a timer) or closes.
    fn drive(&mut self, token: u64, mut conn: Conn, readable: bool) {
        let mut eof = false;
        if readable && matches!(conn.state, ConnState::Reading) {
            match self.fill_read_buf(&mut conn) {
                ReadOutcome::Open => {}
                ReadOutcome::Eof => eof = true,
                ReadOutcome::Gone => return self.discard(conn),
            }
        }
        loop {
            match &conn.state {
                ConnState::Awaiting(_) => break,
                ConnState::Reading => {
                    match try_parse_request(&mut conn.read_buf, self.shared.config.max_body_bytes) {
                        Ok(ParseStep::Complete(request)) => {
                            conn.continue_sent = false;
                            self.dispatch(token, &mut conn, request);
                        }
                        Ok(ParseStep::Partial { .. }) if eof => {
                            if conn.read_buf.is_empty() {
                                // Clean close: EOF between requests.
                                return self.discard(conn);
                            }
                            conn.close_after_flush = true;
                            self.queue_failure(&mut conn, RequestFailure::new(400, "connection closed mid-request"));
                        }
                        Ok(ParseStep::Partial { expect_continue }) => {
                            // RFC 7231 §5.1.1: a conforming client pauses
                            // after the head until it sees `100 Continue`.
                            // Emit the interim response once per request,
                            // nonblocking, so the body arrives promptly.
                            if expect_continue && !conn.continue_sent {
                                conn.continue_sent = true;
                                conn.interim.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                            }
                            if !self.flush_interim(&mut conn) {
                                return self.discard(conn);
                            }
                            break;
                        }
                        Err(failure) => {
                            conn.close_after_flush = true;
                            self.queue_failure(&mut conn, failure);
                        }
                    }
                }
                ConnState::Flushing => match self.flush_step(&mut conn) {
                    Flush::Pending => break,
                    Flush::Done => {
                        if !self.finish_response(&mut conn, true) {
                            return self.discard(conn);
                        }
                        // Back in Reading: loop on, so a pipelined request
                        // already buffered is answered without a poll round.
                    }
                    Flush::Failed => {
                        self.finish_response(&mut conn, false);
                        return self.discard(conn);
                    }
                },
            }
        }
        self.park(token, conn);
    }

    /// Pulls everything the kernel has for this connection, bounded per
    /// pass so one firehose client cannot monopolize the loop (the
    /// level-triggered poller re-reports any remainder).
    fn fill_read_buf(&self, conn: &mut Conn) -> ReadOutcome {
        let cap = self.shared.config.max_body_bytes + MAX_HEAD_BYTES + 4;
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if conn.read_buf.len() >= cap {
                        return ReadOutcome::Open;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Gone,
            }
        }
    }

    /// Registers the interest the connection's state wants and re-inserts
    /// it into the connection table.
    fn park(&mut self, token: u64, mut conn: Conn) {
        let want = match &conn.state {
            // A pending interim (`100 Continue`) tail also needs send-buffer
            // space, so the poller watches both directions until it drains.
            ConnState::Reading if conn.interim_sent < conn.interim.len() => Some(Interest::BOTH),
            ConnState::Reading => Some(Interest::READABLE),
            // Deregistered entirely: completions re-arm the connection, and
            // buffered pipelined bytes must not spin the poller meanwhile.
            ConnState::Awaiting(_) => None,
            ConnState::Flushing => {
                if conn.stall_until.is_some_and(|at| at > Instant::now()) {
                    // Stalled by fault injection: the timer resumes us.
                    None
                } else {
                    Some(Interest::WRITABLE)
                }
            }
        };
        self.set_interest(&mut conn, want);
        self.conns.insert(token, conn);
    }

    fn set_interest(&self, conn: &mut Conn, want: Option<Interest>) {
        if conn.interest == want {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let result = match (conn.interest, want) {
            (None, Some(interest)) => self.poller.register(fd, Token(conn.token), interest),
            (Some(_), Some(interest)) => self.poller.reregister(fd, Token(conn.token), interest),
            (Some(_), None) => self.poller.deregister(fd),
            (None, None) => Ok(()),
        };
        if result.is_ok() {
            conn.interest = want;
        }
    }

    /// Closes a connection and releases its cap slot. Dropping the stream
    /// closes the descriptor, which also deregisters it from the poller.
    fn discard(&mut self, mut conn: Conn) {
        if !conn.refused {
            self.active -= 1;
        }
        self.set_interest(&mut conn, None);
    }

    /// Answers a request that could not be parsed. Even these get a
    /// (generated) request id echoed back, so client-side retry logs have
    /// something to correlate on.
    fn queue_failure(&self, conn: &mut Conn, failure: RequestFailure) {
        let rid = self.shared.request_id(None);
        let parts = ResponseParts::json(failure.status, error_body(&failure.message, None));
        self.queue_response(conn, parts, &rid, None, false, None);
    }

    /// Serializes a response onto the connection and arms the flush
    /// machinery. The responses counter is incremented here, before any
    /// byte moves — the position it held in the blocking writer — and an
    /// injected `client_write_stall` defers the flush, as if the client had
    /// stopped draining its receive window.
    fn queue_response(
        &self,
        conn: &mut Conn,
        parts: ResponseParts,
        rid: &str,
        trace: Option<ActiveTrace>,
        record_write: bool,
        meta: Option<RequestMeta>,
    ) {
        let route = meta.as_ref().map_or("unparsed", |m| m.route);
        if self.shared.config.metrics_enabled {
            self.shared
                .metrics
                .responses
                .with(&[("route", route), ("status", &parts.status.to_string())])
                .inc();
        }
        let mut response = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            parts.status,
            status_reason(parts.status),
            parts.content_type,
            parts.body.len()
        );
        // Every response — including 4xx/5xx error bodies — echoes the
        // request id, so client retry logs, server logs and traces all
        // correlate.
        if !rid.is_empty() {
            response.push_str("X-Request-Id: ");
            response.push_str(rid);
            response.push_str("\r\n");
        }
        for (name, value) in &parts.headers {
            response.push_str(name);
            response.push_str(": ");
            response.push_str(value);
            response.push_str("\r\n");
        }
        response.push_str("\r\n");
        response.push_str(&parts.body);
        // Any unsent interim (`100 Continue`) tail must precede the final
        // response on the wire, so it is folded into the same flush buffer.
        let mut wire = conn.interim.split_off(conn.interim_sent);
        conn.interim.clear();
        conn.interim_sent = 0;
        wire.extend_from_slice(response.as_bytes());
        conn.write_buf = wire;
        conn.written = 0;
        conn.stall_until = self
            .shared
            .config
            .fault_plan
            .as_deref()
            .and_then(|plan| plan.check(FaultKind::ClientWriteStall))
            .and_then(|ms| Instant::now().checked_add(Duration::from_millis(ms)));
        conn.write_deadline = None;
        conn.outgoing = Some(Outgoing {
            status: parts.status,
            trace,
            record_write,
            write_start: Instant::now(),
            meta,
        });
        conn.state = ConnState::Flushing;
    }

    /// Writes as much of the pending interim (`100 Continue`) bytes as the
    /// kernel accepts. Returns `false` when the peer is gone. `WouldBlock`
    /// leaves the unsent tail in place; `park` then waits for writability.
    fn flush_interim(&self, conn: &mut Conn) -> bool {
        while conn.interim_sent < conn.interim.len() {
            match conn.stream.write(&conn.interim[conn.interim_sent..]) {
                Ok(0) => return false,
                Ok(n) => conn.interim_sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        conn.interim.clear();
        conn.interim_sent = 0;
        true
    }

    fn flush_step(&self, conn: &mut Conn) -> Flush {
        if conn.stall_until.is_some_and(|at| at > Instant::now()) {
            return Flush::Pending;
        }
        conn.stall_until = None;
        while conn.written < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => return Flush::Failed,
                Ok(n) => {
                    conn.written += n;
                    // Progress restarts the write budget, matching the
                    // per-`write` SO_SNDTIMEO the blocking handlers had.
                    conn.write_deadline = Some(Instant::now() + self.shared.config.write_timeout);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if conn.write_deadline.is_none() {
                        conn.write_deadline = Some(Instant::now() + self.shared.config.write_timeout);
                    }
                    return Flush::Pending;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Flush::Failed,
            }
        }
        Flush::Done
    }

    /// Post-flush bookkeeping: commit the trace with the status actually
    /// delivered (0 if the write failed), observe the request-duration
    /// histogram, emit the sampled log line — the exact sequence the
    /// blocking handler ran after its write returned. Returns whether the
    /// connection stays open.
    fn finish_response(&self, conn: &mut Conn, delivered: bool) -> bool {
        let now = Instant::now();
        if let Some(out) = conn.outgoing.take() {
            let status = if delivered { out.status } else { 0 };
            if let Some(mut trace) = out.trace {
                if out.record_write {
                    trace.record(Stage::Write, out.write_start, now);
                }
                if let Some(tracer) = self.shared.tracer() {
                    tracer.commit(trace, status);
                }
            }
            if let Some(meta) = out.meta {
                let duration = now.duration_since(meta.started);
                if self.shared.config.metrics_enabled {
                    self.shared
                        .metrics
                        .request_duration
                        .with(&[("route", meta.route)])
                        .observe(duration.as_secs_f64());
                }
                let seq = self.shared.log_seq.fetch_add(1, Ordering::Relaxed);
                if should_sample(seq, self.shared.config.log_sample) {
                    let ts = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(0.0);
                    eprintln!(
                        "{}",
                        format_log_line(
                            ts,
                            seq,
                            meta.route,
                            status,
                            duration.as_micros() as u64,
                            &meta.client,
                            &meta.rid
                        )
                    );
                }
            }
        }
        conn.write_buf.clear();
        conn.written = 0;
        conn.write_deadline = None;
        conn.stall_until = None;
        if !delivered || conn.close_after_flush || self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if conn.expires.is_some_and(|at| now >= at) {
            return false;
        }
        conn.state = ConnState::Reading;
        true
    }

    /// Routes one parsed request. Fast routes answer inline; `/score`
    /// admits a job and parks the connection; `/reload` runs on a
    /// short-lived worker thread (artifact IO plus probe scoring would
    /// otherwise stall every connection the driver owns).
    fn dispatch(&mut self, token: u64, conn: &mut Conn, request: ParsedRequest) {
        conn.close_after_flush = request.close;
        let client = request.client_id.as_deref().unwrap_or(&conn.peer).to_string();
        let rid = self.shared.request_id(request.request_id.as_deref());
        let meta = RequestMeta {
            route: route_label(&request.path),
            started: Instant::now(),
            client,
            rid,
        };
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/score") => self.dispatch_score(token, conn, &request, meta),
            ("POST", "/reload") => self.dispatch_reload(token, conn, &request, meta),
            _ => {
                let parts = inline_route(&self.shared, &request);
                let rid = meta.rid.clone();
                self.queue_response(conn, parts, &rid, None, false, Some(meta));
            }
        }
    }

    fn dispatch_score(&mut self, token: u64, conn: &mut Conn, request: &ParsedRequest, meta: RequestMeta) {
        let shared = Arc::clone(&self.shared);
        let mut trace = shared.tracer().map(|t| t.begin(meta.rid.clone(), "/score"));
        // The token bucket sits in front of the admission queue: an
        // over-budget client is turned away before it can occupy queue
        // capacity.
        if let Some(limiter) = &shared.limiter {
            let check_start = Instant::now();
            let decision = limiter.check(&meta.client, check_start);
            if let Some(t) = trace.as_mut() {
                t.record(Stage::Ratelimit, check_start, Instant::now());
            }
            if let RateLimitDecision::Limited { retry_after, limit } = decision {
                if shared.config.metrics_enabled {
                    shared.metrics.rejected.with(&[("cause", "rate_limited")]).inc();
                }
                let parts = ResponseParts::with_headers(
                    429,
                    error_body("rate limit exceeded; slow down", None),
                    vec![
                        ("Retry-After", format!("{}", retry_after.ceil() as u64)),
                        ("X-RateLimit-Limit", format!("{}", limit as u64)),
                        ("X-RateLimit-Remaining", "0".to_string()),
                        ("X-RateLimit-Reset", format!("{retry_after:.3}")),
                    ],
                );
                let rid = meta.rid.clone();
                self.queue_response(conn, parts, &rid, trace, true, Some(meta));
                return;
            }
        }
        let parse_start = Instant::now();
        let parsed = parse_score_body(&request.body);
        if let Some(t) = trace.as_mut() {
            t.record(Stage::Parse, parse_start, Instant::now());
        }
        let requests = match parsed {
            Ok(requests) => requests,
            Err(message) => {
                let parts = ResponseParts::json(400, error_body(&message, None));
                let rid = meta.rid.clone();
                self.queue_response(conn, parts, &rid, trace, true, Some(meta));
                return;
            }
        };
        if requests.is_empty() {
            let body = serde::json::to_string(&ScoreResponse {
                model_version: shared.executor.version(),
                scores: Vec::new(),
            });
            let rid = meta.rid.clone();
            self.queue_response(conn, ResponseParts::json(200, body), &rid, trace, true, Some(meta));
            return;
        }
        let admitted = Instant::now();
        // The absolute deadline this request's budget implies. The header
        // wins over the server default; a budget so large it overflows
        // `Instant` saturates to "no deadline".
        let deadline = request
            .deadline_ms
            .or(shared.config.default_deadline_ms)
            .and_then(|ms| admitted.checked_add(Duration::from_millis(ms)));
        let job = self.next_job;
        self.next_job += 1;
        let reply = ReplySender::new(Arc::clone(&self.completions), job);
        match shared.queue.push(Job {
            requests,
            reply,
            trace: trace.take(),
            enqueued: admitted,
            taken: None,
            deadline,
        }) {
            Err((AdmitError::Full, bounced)) => {
                if shared.config.metrics_enabled {
                    shared.metrics.rejected.with(&[("cause", "queue_full")]).inc();
                }
                let Job { reply, trace, .. } = bounced;
                reply.cancel();
                // Deliberately NO X-RateLimit-* headers here: queue-full
                // means the server is saturated (retry immediately), not
                // that this client is over its own budget.
                let parts = ResponseParts::with_headers(
                    429,
                    error_body("admission queue full; retry", None),
                    vec![("Retry-After", "0".to_string())],
                );
                let rid = meta.rid.clone();
                self.queue_response(conn, parts, &rid, trace, true, Some(meta));
            }
            Err((AdmitError::Closed, bounced)) => {
                let Job { reply, trace, .. } = bounced;
                reply.cancel();
                let parts = ResponseParts::json(503, error_body("server is draining", None));
                let rid = meta.rid.clone();
                self.queue_response(conn, parts, &rid, trace, true, Some(meta));
            }
            Ok(()) => {
                self.awaiting.insert(job, token);
                conn.state = ConnState::Awaiting(Await {
                    job,
                    deadline: admitted.checked_add(SCORE_REPLY_TIMEOUT),
                    admitted,
                    meta,
                });
            }
        }
    }

    fn dispatch_reload(&mut self, token: u64, conn: &mut Conn, request: &ParsedRequest, meta: RequestMeta) {
        let path = match serde::json::from_str::<ReloadRequest>(&request.body) {
            Ok(reload) => reload.path,
            Err(e) => {
                let parts = ResponseParts::json(
                    400,
                    error_body(&format!("malformed reload body (expected {{\"path\": ..}}): {e}"), None),
                );
                let rid = meta.rid.clone();
                self.queue_response(conn, parts, &rid, None, false, Some(meta));
                return;
            }
        };
        // A reload gets its own trace: the `load → validate → probe → swap`
        // timeline, recorded by the reload pipeline into a detached span
        // set on the worker thread.
        let trace = self.shared.tracer().map(|t| t.begin(meta.rid.clone(), "/reload"));
        let job = self.next_job;
        self.next_job += 1;
        let shared = Arc::clone(&self.shared);
        let completions = Arc::clone(&self.completions);
        std::thread::spawn(move || {
            let mut trace = trace;
            let mut spans = SpanSet::new();
            let result = if trace.is_some() {
                shared.executor.reload_from_path_traced(&path, &[], &mut spans)
            } else {
                shared.executor.reload_from_path(&path, &[])
            };
            if let Some(t) = trace.as_mut() {
                t.extend_from(&spans);
            }
            let (status, body, version) = match result {
                Ok(model_version) => (
                    200,
                    serde::json::to_string(&ReloadResponse { model_version }),
                    Some(model_version),
                ),
                // The old version keeps serving; 409 tells the operator the
                // rollout did not happen.
                Err(e) => (409, error_body(&e.to_string(), None), None),
            };
            completions.push(Completion::Reload {
                job,
                status,
                body,
                version,
                trace,
            });
        });
        self.awaiting.insert(job, token);
        conn.state = ConnState::Awaiting(Await {
            job,
            deadline: None,
            admitted: Instant::now(),
            meta,
        });
    }

    fn on_completion(&mut self, completion: Completion) {
        let job = match &completion {
            Completion::Score { job, .. } | Completion::Reload { job, .. } => *job,
        };
        // A completion whose job is no longer awaited (the reply timed out
        // and the 500 already went out) is dropped, like the reply a
        // blocking handler never came back to receive.
        let Some(token) = self.awaiting.remove(&job) else {
            return;
        };
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let ConnState::Awaiting(wait) = std::mem::replace(&mut conn.state, ConnState::Reading) else {
            self.conns.insert(token, conn);
            return;
        };
        match completion {
            Completion::Score { reply, .. } => self.finish_score(&mut conn, wait, reply),
            Completion::Reload {
                status,
                body,
                version,
                trace,
                ..
            } => {
                let headers = version
                    .map(|v| vec![("X-Model-Version", v.to_string())])
                    .unwrap_or_default();
                let parts = ResponseParts::with_headers(status, body, headers);
                let rid = wait.meta.rid.clone();
                self.queue_response(&mut conn, parts, &rid, trace, false, Some(wait.meta));
            }
        }
        self.drive(token, conn, false);
    }

    /// The scoring-outcome → response mapping, one arm per [`JobOutcome`]
    /// (plus the dropped-reply 500 the [`ReplySender`] drop hook turns into
    /// a `Panicked` outcome).
    fn finish_score(&self, conn: &mut Conn, wait: Await, reply: JobReply) {
        let shared = &self.shared;
        let (parts, returned) = match reply {
            JobReply {
                outcome: JobOutcome::Scored(model_version, scores),
                trace: mut returned,
            } => {
                if shared.config.metrics_enabled {
                    shared
                        .metrics
                        .score_duration
                        .with(&[("version", &model_version.to_string())])
                        .observe(wait.admitted.elapsed().as_secs_f64());
                }
                let serialize_start = Instant::now();
                let body = serde::json::to_string(&ScoreResponse { model_version, scores });
                if let Some(t) = returned.as_mut() {
                    t.record(Stage::Serialize, serialize_start, Instant::now());
                }
                (
                    ResponseParts::with_headers(200, body, vec![("X-Model-Version", model_version.to_string())]),
                    returned,
                )
            }
            JobReply {
                outcome: JobOutcome::Unscorable(failure),
                trace,
            } => (
                ResponseParts::json(422, error_body(&failure.message, Some(failure.request_index))),
                trace,
            ),
            JobReply {
                outcome: JobOutcome::Panicked,
                trace,
            } => (
                ResponseParts::json(
                    500,
                    error_body("scoring batch panicked; the request was not scored", None),
                ),
                trace,
            ),
            JobReply {
                outcome: JobOutcome::Expired,
                trace,
            } => (
                ResponseParts::json(504, error_body("deadline expired before scoring started", None)),
                trace,
            ),
        };
        let rid = wait.meta.rid.clone();
        self.queue_response(conn, parts, &rid, returned, true, Some(wait.meta));
    }

    /// Scans per-connection deadlines: lifetime caps, write-progress
    /// budgets, injected-stall expiries, and score-reply timeouts.
    fn run_timers(&mut self) {
        let now = Instant::now();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get(&token) else { continue };
            match &conn.state {
                ConnState::Reading => {
                    if conn.expires.is_some_and(|at| now >= at) {
                        if let Some(conn) = self.conns.remove(&token) {
                            self.discard(conn);
                        }
                    }
                }
                ConnState::Awaiting(wait) => {
                    if wait.deadline.is_some_and(|at| now >= at) {
                        self.score_reply_timed_out(token);
                    }
                }
                ConnState::Flushing => {
                    let stall_passed = conn.stall_until.is_some_and(|at| now >= at);
                    let stalled = conn.stall_until.is_some_and(|at| now < at);
                    if stall_passed {
                        // Resume the deferred flush.
                        self.on_event(token);
                    } else if !stalled && conn.write_deadline.is_some_and(|at| now >= at) {
                        // No write progress for the whole budget: give up on
                        // this peer.
                        if let Some(mut conn) = self.conns.remove(&token) {
                            self.finish_response(&mut conn, false);
                            self.discard(conn);
                        }
                    }
                }
            }
        }
    }

    /// The batcher never answered within [`SCORE_REPLY_TIMEOUT`]:
    /// deterministic 500, like the blocking handler's `recv_timeout` arm.
    fn score_reply_timed_out(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let ConnState::Awaiting(wait) = std::mem::replace(&mut conn.state, ConnState::Reading) else {
            self.conns.insert(token, conn);
            return;
        };
        self.awaiting.remove(&wait.job);
        let parts = ResponseParts::json(500, error_body("scoring pipeline stalled", None));
        let rid = wait.meta.rid.clone();
        self.queue_response(&mut conn, parts, &rid, None, true, Some(wait.meta));
        self.drive(token, conn, false);
    }

    /// Shutdown: close every connection that is not owed a response.
    fn close_reading_conns(&mut self) {
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| matches!(conn.state, ConnState::Reading))
            .map(|(token, _)| *token)
            .collect();
        for token in idle {
            if let Some(conn) = self.conns.remove(&token) {
                self.discard(conn);
            }
        }
    }
}

/// Whether request `seq` is in the deterministic log sample (`n == 0`
/// disables logging entirely).
fn should_sample(seq: u64, n: u64) -> bool {
    n != 0 && seq.is_multiple_of(n)
}

/// One structured request-log line — a single JSON object, pure function of
/// its inputs so tests can assert the exact format. `trace_id` is the same
/// id echoed to the client as `X-Request-Id`, so logs, traces and client
/// retries correlate.
fn format_log_line(
    ts: f64,
    seq: u64,
    route: &str,
    status: u16,
    duration_us: u64,
    client: &str,
    trace_id: &str,
) -> String {
    format!(
        "{{\"ts\":{ts:.3},\"seq\":{seq},\"route\":{route:?},\"status\":{status},\"duration_us\":{duration_us},\"client\":{client:?},\"trace_id\":{trace_id:?}}}"
    )
}

/// The bounded-cardinality `route` label: known paths label as themselves,
/// everything else collapses into `other` so a path-scanning client cannot
/// blow up the registry.
fn route_label(path: &str) -> &'static str {
    match path {
        "/score" => "/score",
        "/healthz" => "/healthz",
        "/version" => "/version",
        "/stats" => "/stats",
        "/metrics" => "/metrics",
        "/reload" => "/reload",
        "/debug/traces" => "/debug/traces",
        "/admin/pause" => "/admin/pause",
        "/admin/resume" => "/admin/resume",
        _ => "other",
    }
}

struct ParsedRequest {
    method: String,
    path: String,
    body: String,
    close: bool,
    /// The `X-Client-Id` header, the rate limiter's preferred client key.
    client_id: Option<String>,
    /// The `X-Request-Id` header, adopted as the trace id when well-formed.
    request_id: Option<String>,
    /// The `X-Deadline-Ms` header when usable (a positive integer); `None` —
    /// missing, zero, or garbage — falls back to
    /// [`ServerConfig::default_deadline_ms`].
    deadline_ms: Option<u64>,
}

/// What [`try_parse_request`] left behind after one attempt.
enum ParseStep {
    /// One complete request was drained off the buffer.
    Complete(ParsedRequest),
    /// The bytes so far are a valid prefix — keep reading. `expect_continue`
    /// is true when a complete head carrying `Expect: 100-continue` is
    /// waiting on its body: the driver owes the client an interim
    /// `100 Continue` before the peer will send another byte (RFC 7231
    /// §5.1.1 — a conforming client stalls until it sees one).
    Partial { expect_continue: bool },
}

struct RequestFailure {
    status: u16,
    message: String,
}

impl RequestFailure {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// Tries to parse one complete HTTP/1.1 request off the front of the
/// connection's accumulated read buffer. [`ParseStep::Partial`] means the
/// bytes so far are a valid prefix — keep reading; a consumed request is
/// drained from the buffer, leaving any pipelined successor in place.
fn try_parse_request(buffer: &mut Vec<u8>, max_body_bytes: usize) -> Result<ParseStep, RequestFailure> {
    let Some(head_end) = find_head_end(buffer) else {
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(RequestFailure::new(431, "request head too large"));
        }
        return Ok(ParseStep::Partial { expect_continue: false });
    };
    let head =
        std::str::from_utf8(&buffer[..head_end]).map_err(|_| RequestFailure::new(400, "request head is not UTF-8"))?;
    let fields = parse_head(head)?;
    if fields.content_length > max_body_bytes {
        return Err(RequestFailure::new(
            413,
            format!(
                "request body of {} bytes exceeds the {max_body_bytes}-byte limit",
                fields.content_length
            ),
        ));
    }
    let total = head_end + 4 + fields.content_length;
    if buffer.len() < total {
        return Ok(ParseStep::Partial {
            expect_continue: fields.expect_continue,
        });
    }
    let body = String::from_utf8(buffer[head_end + 4..total].to_vec())
        .map_err(|_| RequestFailure::new(400, "request body is not UTF-8"))?;
    buffer.drain(..total);
    Ok(ParseStep::Complete(ParsedRequest {
        method: fields.method,
        path: fields.path,
        body,
        close: fields.close,
        client_id: fields.client_id,
        request_id: fields.request_id,
        deadline_ms: fields.deadline_ms,
    }))
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Everything [`parse_head`] extracts from a request head.
struct HeadFields {
    method: String,
    path: String,
    content_length: usize,
    close: bool,
    client_id: Option<String>,
    request_id: Option<String>,
    deadline_ms: Option<u64>,
    /// The request carried `Expect: 100-continue`.
    expect_continue: bool,
}

/// Whether any comma-separated token of `value` equals `token`
/// case-insensitively — the HTTP list-header rule (`Connection: close,
/// x-foo` still means close).
fn header_list_contains(value: &str, token: &str) -> bool {
    value.split(',').any(|t| t.trim().eq_ignore_ascii_case(token))
}

fn parse_head(head: &str) -> Result<HeadFields, RequestFailure> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next()) else {
        return Err(RequestFailure::new(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestFailure::new(400, format!("unsupported protocol {version}")));
    }
    let mut content_length: Option<usize> = None;
    let mut close = false;
    let mut client_id = None;
    let mut request_id = None;
    let mut deadline_ms = None;
    let mut expect_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| RequestFailure::new(400, format!("bad Content-Length {value:?}")))?;
                // RFC 7230 §3.3.3: repeated Content-Length headers with
                // differing values are a request-smuggling vector (a proxy
                // and the origin disagreeing on where the body ends) and
                // must be rejected, not resolved last-one-wins. Identical
                // repeats are tolerated per the same section.
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(RequestFailure::new(
                        400,
                        format!(
                            "conflicting Content-Length headers ({} then {parsed})",
                            content_length.unwrap_or(0)
                        ),
                    ));
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => {
                return Err(RequestFailure::new(
                    400,
                    "chunked bodies are not supported; send Content-Length",
                ));
            }
            // `Connection` is a comma-separated token list, and a request
            // may carry several `Connection` headers: `close` anywhere in
            // any of them means close. A later header must never un-set an
            // earlier `close` (the old last-wins single-token compare did
            // both wrong).
            "connection" => close = close || header_list_contains(value, "close"),
            "expect" => expect_continue = expect_continue || header_list_contains(value, "100-continue"),
            "x-client-id" if !value.is_empty() => client_id = Some(value.to_string()),
            "x-request-id" if !value.is_empty() => request_id = Some(value.to_string()),
            // Lenient by design: zero or garbage reads as "no usable
            // deadline" (the server default applies) rather than a 400 —
            // a client bug in deadline bookkeeping should degrade, not
            // break, its requests.
            "x-deadline-ms" => deadline_ms = value.parse::<u64>().ok().filter(|ms| *ms > 0),
            _ => {}
        }
    }
    Ok(HeadFields {
        method: method.to_string(),
        path: path.to_string(),
        content_length: content_length.unwrap_or(0),
        close,
        client_id,
        request_id,
        deadline_ms,
        expect_continue,
    })
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct ScoreResponse {
    model_version: u64,
    scores: Vec<f64>,
}

#[derive(Serialize)]
struct ErrorResponse {
    error: String,
    request_index: Option<usize>,
}

#[derive(Serialize)]
struct HealthResponse {
    status: String,
    model_version: u64,
    model_digest: String,
}

#[derive(Serialize)]
struct VersionResponse {
    model_version: u64,
    producer: String,
    format_version: u32,
    model_digest: String,
}

#[derive(Serialize)]
struct ReloadResponse {
    model_version: u64,
}

#[derive(Deserialize)]
struct ReloadRequest {
    path: String,
}

#[derive(Serialize)]
struct PausedResponse {
    paused: bool,
}

fn error_body(message: &str, request_index: Option<usize>) -> String {
    serde::json::to_string(&ErrorResponse {
        error: message.to_string(),
        request_index,
    })
}

/// Computes the response for every route the driver answers inline —
/// everything but `POST /score` (parked on the batcher) and `POST /reload`
/// (offloaded to a worker thread), which the driver intercepts first.
fn inline_route(shared: &Shared, request: &ParsedRequest) -> ResponseParts {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let snapshot = shared.executor.snapshot();
            ResponseParts::json(
                200,
                serde::json::to_string(&HealthResponse {
                    status: "ok".to_string(),
                    model_version: snapshot.version,
                    model_digest: snapshot.digest.clone(),
                }),
            )
        }
        ("GET", "/version") => {
            let snapshot = shared.executor.snapshot();
            ResponseParts::json(
                200,
                serde::json::to_string(&VersionResponse {
                    model_version: snapshot.version,
                    producer: snapshot.producer.clone(),
                    format_version: crate::artifact::FORMAT_VERSION,
                    model_digest: snapshot.digest.clone(),
                }),
            )
        }
        ("GET", "/stats") => ResponseParts::json(200, stats_body(shared)),
        ("GET", "/metrics") => metrics_parts(shared),
        // Every retained trace as Chrome trace-event JSON, loadable in
        // `chrome://tracing` or Perfetto. 404 when tracing is disabled.
        ("GET", "/debug/traces") => match shared.tracer() {
            None => ResponseParts::json(404, error_body("tracing is disabled for this server", None)),
            Some(tracer) => ResponseParts::json(200, tracer.chrome_trace_json()),
        },
        ("POST", "/admin/pause") => {
            shared.queue.set_paused(true);
            ResponseParts::json(200, serde::json::to_string(&PausedResponse { paused: true }))
        }
        ("POST", "/admin/resume") => {
            shared.queue.set_paused(false);
            ResponseParts::json(200, serde::json::to_string(&PausedResponse { paused: false }))
        }
        (
            _,
            "/score" | "/healthz" | "/version" | "/stats" | "/metrics" | "/reload" | "/debug/traces" | "/admin/pause"
            | "/admin/resume",
        ) => ResponseParts::json(405, error_body("method not allowed", None)),
        _ => ResponseParts::json(404, error_body(&format!("no route for {}", request.path), None)),
    }
}

/// `GET /metrics`: refresh the scrape-time gauges (queue depth, model
/// version, cache mirror) and render the registry as Prometheus text.
fn metrics_parts(shared: &Shared) -> ResponseParts {
    if !shared.config.metrics_enabled {
        return ResponseParts::json(404, error_body("metrics are disabled for this server", None));
    }
    let snapshot = shared.executor.snapshot();
    let version = snapshot.version.to_string();
    let cache = snapshot.executor().cache_stats();
    let metrics = &shared.metrics;
    metrics.queue_depth.set(shared.queue.len() as f64);
    metrics.model_version.set(snapshot.version as f64);
    metrics.cache_hits.with(&[("version", &version)]).store(cache.hits);
    metrics.cache_misses.with(&[("version", &version)]).store(cache.misses);
    metrics
        .cache_hit_rate
        .with(&[("version", &version)])
        .set(cache.hit_rate());
    metrics
        .cache_entries
        .with(&[("version", &version)])
        .set(snapshot.executor().cache_entries() as f64);
    ResponseParts {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: metrics.render(),
        headers: Vec::new(),
    }
}

/// How many slow-request exemplars `/stats` attaches.
const STATS_EXEMPLARS: usize = 5;

/// The `/stats` body: the [`ServerStats`] counters plus (when tracing is on)
/// `slow_exemplars` — the slowest retained traces with their per-stage
/// breakdown, each annotated with the `er_serve_score_duration_seconds`
/// bucket (`bucket_le`, Prometheus `le` format) its total latency falls
/// into, so a histogram tail bucket can be traced back to concrete requests.
fn stats_body(shared: &Shared) -> String {
    let stats = stats_from_registry(&shared.metrics);
    let mut value = serde::to_value(&stats);
    if let Some(tracer) = shared.tracer() {
        let bounds = crate::metrics::latency_bounds();
        let exemplars: Vec<serde::Value> = tracer
            .slow_exemplars(STATS_EXEMPLARS)
            .into_iter()
            .map(|exemplar| {
                let total_secs = exemplar.total_us as f64 / 1e6;
                let le = bounds
                    .iter()
                    .find(|b| total_secs < **b)
                    .map(|b| format!("{b}"))
                    .unwrap_or_else(|| "+Inf".to_string());
                let mut entry = serde::to_value(&exemplar);
                if let serde::Value::Map(entries) = &mut entry {
                    entries.push(("bucket_le".to_string(), serde::Value::Str(le)));
                }
                entry
            })
            .collect();
        if let serde::Value::Map(entries) = &mut value {
            entries.push(("slow_exemplars".to_string(), serde::Value::Seq(exemplars)));
        }
    }
    serde::json::to_string(&value)
}

fn parse_score_body(body: &str) -> Result<Vec<ScoreRequest>, String> {
    let value = serde::json::parse(body).map_err(|e| format!("malformed JSON body: {e}"))?;
    match &value {
        serde::Value::Seq(_) => serde::from_value::<Vec<ScoreRequest>>(&value).map_err(|e| e.to_string()),
        serde::Value::Map(_) => serde::from_value::<ScoreRequest>(&value)
            .map(|r| vec![r])
            .map_err(|e| e.to_string()),
        other => Err(format!("expected a request object or array, found {}", other.kind())),
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

// ---------------------------------------------------------------------------
// Minimal blocking client (tests, benches, smoke tiers)
// ---------------------------------------------------------------------------

/// A parsed HTTP response from [`http_roundtrip`].
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Sends one HTTP/1.1 request over an existing connection and reads the
/// response (Content-Length framed). This is the raw-socket client the
/// integration tests and `serve_bench`'s front-end replay drive the server
/// with — deliberately minimal, not a general HTTP client.
pub fn http_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    http_roundtrip_with_headers(stream, method, path, body, &[])
}

/// [`http_roundtrip`] with extra request headers (e.g. `X-Client-Id`, the
/// rate limiter's client key).
pub fn http_roundtrip_with_headers(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> io::Result<HttpResponse> {
    let body = body.unwrap_or("");
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nHost: er-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        request.push_str(name);
        request.push_str(": ");
        request.push_str(value);
        request.push_str("\r\n");
    }
    request.push_str("\r\n");
    request.push_str(body);
    stream.write_all(request.as_bytes())?;
    read_http_response(stream)
}

/// Reads one Content-Length-framed HTTP/1.1 response off the stream. Split
/// out from [`http_roundtrip`] so pipelined callers can write several
/// requests first and collect the responses afterwards.
pub fn read_http_response(stream: &mut TcpStream) -> io::Result<HttpResponse> {
    let mut buffer = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(end) = find_head_end(&buffer) {
            break end;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ))
            }
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8(buffer[..head_end].to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let parsed: usize = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
            // RFC 7230 §3.3.3: repeats must agree; conflicting repeats make
            // the framing ambiguous, so the whole response is rejected.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "conflicting Content-Length headers in response",
                ));
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);
    let mut body = buffer[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response body is not UTF-8"))?;
    Ok(HttpResponse { status, headers, body })
}

/// Capped-exponential-backoff retry policy for [`http_roundtrip_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first — `1` disables retries.
    pub max_attempts: u32,
    /// Backoff cap before the first retry, in milliseconds; doubles per
    /// attempt up to [`Self::max_backoff_ms`].
    pub base_backoff_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retrying after failed attempt `attempt` (0-based):
    /// capped exponential with deterministic jitter in `[cap/2, cap]`, where
    /// `cap = min(base_backoff_ms << attempt, max_backoff_ms)`. Jittering
    /// within a halved floor keeps waits bounded both ways — short enough to
    /// make progress, spread enough that a herd of clients does not retry in
    /// lockstep.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let cap = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.max_backoff_ms)
            .max(1);
        let floor = cap / 2;
        floor + jitter_hash(self.seed, attempt as u64) % (cap - floor + 1)
    }
}

/// splitmix64 finalizer over (seed, attempt) — the jitter source behind
/// [`RetryPolicy::backoff_ms`], deterministic per seed so tests and chaos
/// replays can assert exact waits.
fn jitter_hash(seed: u64, attempt: u64) -> u64 {
    let mut z = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether a response status is worth retrying: backpressure (429), a
/// panic-isolated batch (500 — scoring is pure, so a retry is safe), or an
/// unavailable server (503, draining or at the connection cap). 504 is
/// deliberately not here: the request's own deadline expired, and retrying
/// cannot recover the budget.
fn retryable_status(status: u16) -> bool {
    matches!(status, 429 | 500 | 503)
}

/// A full client loop over [`http_roundtrip_with_headers`]: reconnects per
/// attempt and retries transport errors and retryable statuses (429, 500,
/// 503) under `policy`, honoring a server-sent
/// `Retry-After` when it exceeds the computed backoff. Returns the final
/// response plus the number of attempts made, so harnesses can attest retry
/// behavior; the last response (even a retryable one) is returned once
/// attempts are exhausted.
pub fn http_roundtrip_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
    policy: &RetryPolicy,
) -> io::Result<(HttpResponse, u32)> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        let result = TcpStream::connect(addr).and_then(|mut stream| {
            let _ = stream.set_nodelay(true);
            http_roundtrip_with_headers(&mut stream, method, path, body, headers)
        });
        let last = attempt + 1 == attempts;
        match result {
            Ok(response) if retryable_status(response.status) && !last => {
                let retry_after_ms = response
                    .header("retry-after")
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(|secs| (secs * 1_000.0).ceil() as u64)
                    .unwrap_or(0);
                let wait = policy.backoff_ms(attempt).max(retry_after_ms);
                std::thread::sleep(Duration::from_millis(wait));
            }
            Ok(response) => return Ok((response, attempt + 1)),
            Err(e) if !last => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt)));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
}

/// Parses the `{"model_version": v, "scores": [..]}` body of a successful
/// `POST /score` response.
pub fn parse_score_response(body: &str) -> Result<(u64, Vec<f64>), serde::Error> {
    #[derive(Deserialize)]
    struct Wire {
        model_version: u64,
        scores: Vec<f64>,
    }
    let wire: Wire = serde::json::from_str(body)?;
    Ok((wire.model_version, wire.scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScoringEngine;
    use crate::executor::ServeConfig;
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};
    use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};

    fn model(weight0: f64) -> LearnRiskModel {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.97),
            Rule::new(vec![Condition::new(1, CmpOp::Le, 0.3)], Label::Equivalent, 15, 0.93),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.92],
            support: vec![20, 15],
        };
        let mut m = LearnRiskModel::new(fs, RiskModelConfig::default());
        m.rule_weights = vec![weight0, 0.7];
        m
    }

    fn start_server(queue_capacity: usize) -> (ScoreServer, Arc<ReloadableExecutor>) {
        start_server_with(ServerConfig {
            queue_capacity,
            ..ServerConfig::default()
        })
    }

    fn start_server_with(config: ServerConfig) -> (ScoreServer, Arc<ReloadableExecutor>) {
        let executor = Arc::new(ReloadableExecutor::new(
            ScoringEngine::new(model(1.3)),
            ServeConfig {
                threads: 2,
                cache_capacity: 64,
                cache_shards: 4,
            },
        ));
        let server = ScoreServer::start(Arc::clone(&executor), config).expect("bind ephemeral port");
        (server, executor)
    }

    fn connect(server: &ScoreServer) -> TcpStream {
        TcpStream::connect(server.local_addr()).expect("connect")
    }

    fn request_json(pair_id: u64, x: f64) -> String {
        let request = ScoreRequest {
            pair_id,
            metric_row: vec![x, 1.0 - x],
            classifier_output: x,
            machine_says_match: x >= 0.5,
        };
        serde::json::to_string(&request)
    }

    #[test]
    fn health_version_and_stats_respond() {
        let (server, _executor) = start_server(16);
        let mut stream = connect(&server);
        let health = http_roundtrip(&mut stream, "GET", "/healthz", None).expect("healthz");
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"ok\""), "{}", health.body);
        let version = http_roundtrip(&mut stream, "GET", "/version", None).expect("version");
        assert_eq!(version.status, 200);
        assert!(version.body.contains("\"model_version\":1"), "{}", version.body);
        let stats = http_roundtrip(&mut stream, "GET", "/stats", None).expect("stats");
        assert_eq!(stats.status, 200);
        let parsed: ServerStats = serde::json::from_str(&stats.body).expect("stats body");
        assert_eq!(parsed.responses_2xx, 2, "healthz + version preceded the stats call");
    }

    #[test]
    fn scores_over_the_socket_match_in_process_bit_for_bit() {
        let (server, executor) = start_server(16);
        let requests: Vec<ScoreRequest> = (0..20)
            .map(|i| {
                let x = (i as f64 * 0.37).fract();
                ScoreRequest {
                    pair_id: i,
                    metric_row: vec![x, 1.0 - x],
                    classifier_output: x,
                    machine_says_match: x >= 0.5,
                }
            })
            .collect();
        let expected = executor.snapshot().executor().score_batch(&requests);
        let mut stream = connect(&server);
        // Single-object form.
        let single = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(0, 0.0))).expect("score");
        assert_eq!(single.status, 200, "{}", single.body);
        let (version, scores) = parse_score_response(&single.body).expect("body");
        assert_eq!(version, 1);
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].to_bits(), expected[0].to_bits());
        assert_eq!(single.header("x-model-version"), Some("1"));
        // Array form, coalesced through the same micro-batching path.
        let body = serde::json::to_string(&requests);
        let batch = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("score batch");
        assert_eq!(batch.status, 200, "{}", batch.body);
        let (_, scores) = parse_score_response(&batch.body).expect("body");
        let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
        let expected_bits: Vec<u64> = expected.iter().map(|s| s.to_bits()).collect();
        assert_eq!(bits, expected_bits);
    }

    #[test]
    fn malformed_requests_get_deterministic_error_bodies_not_dropped_connections() {
        let (server, _executor) = start_server(16);
        let mut stream = connect(&server);
        // Unparseable JSON → 400 with an error body.
        let bad_json = http_roundtrip(&mut stream, "POST", "/score", Some("{not json")).expect("response");
        assert_eq!(bad_json.status, 400);
        assert!(bad_json.body.contains("\"error\""), "{}", bad_json.body);
        // Parseable but unscorable (short metric row) → 422 with the index.
        let short_row =
            r#"[{"pair_id": 0, "metric_row": [0.5], "classifier_output": 0.5, "machine_says_match": true}]"#;
        let unscorable = http_roundtrip(&mut stream, "POST", "/score", Some(short_row)).expect("response");
        assert_eq!(unscorable.status, 422, "{}", unscorable.body);
        assert!(unscorable.body.contains("\"request_index\":0"), "{}", unscorable.body);
        // The same connection still serves well-formed traffic.
        let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(1, 0.4))).expect("response");
        assert_eq!(ok.status, 200, "{}", ok.body);
        // Unknown route and wrong method are 404/405, not hangs.
        assert_eq!(
            http_roundtrip(&mut stream, "GET", "/nope", None).expect("404").status,
            404
        );
        assert_eq!(
            http_roundtrip(&mut stream, "GET", "/score", None).expect("405").status,
            405
        );
    }

    #[test]
    fn full_queue_backpressure_is_429_and_recovers() {
        let (server, _executor) = start_server(2);
        server.pause_intake();
        // Two in-flight jobs fill the queue (their handlers block on the
        // batcher); they are issued from their own connections.
        let addr = server.local_addr();
        let blocked: Vec<std::thread::JoinHandle<u16>> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(i, 0.3)))
                        .expect("eventually scored")
                        .status
                })
            })
            .collect();
        // Wait until both jobs are admitted.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.queued_jobs() < 2 {
            assert!(Instant::now() < deadline, "jobs were not admitted in time");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The next request must bounce with a deterministic 429.
        let mut stream = connect(&server);
        let rejected = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(9, 0.6))).expect("response");
        assert_eq!(rejected.status, 429, "{}", rejected.body);
        assert_eq!(rejected.header("retry-after"), Some("0"));
        assert!(rejected.body.contains("admission queue full"), "{}", rejected.body);
        // Queue-full 429s never carry rate-limit headers — that is the
        // disambiguation clients rely on.
        assert_eq!(rejected.header("x-ratelimit-limit"), None);
        assert_eq!(rejected.header("x-ratelimit-remaining"), None);
        // Resume: the blocked jobs complete and fresh traffic flows again.
        server.resume_intake();
        for handle in blocked {
            assert_eq!(handle.join().expect("client thread"), 200);
        }
        let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(9, 0.6))).expect("response");
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert_eq!(server.stats().responses_429, 1);
    }

    #[test]
    fn reload_over_http_swaps_the_version_and_refuses_garbage() {
        let (server, executor) = start_server(16);
        let dir = std::env::temp_dir().join("er-serve-server-reload-test");
        let path = dir.join("v2.json");
        crate::artifact::ModelArtifact::new(model(2.6))
            .save(&path)
            .expect("save");
        let mut stream = connect(&server);

        let body = format!("{{\"path\": {:?}}}", path.display().to_string());
        let reloaded = http_roundtrip(&mut stream, "POST", "/reload", Some(&body)).expect("reload");
        assert_eq!(reloaded.status, 200, "{}", reloaded.body);
        assert!(reloaded.body.contains("\"model_version\":2"), "{}", reloaded.body);
        assert_eq!(executor.version(), 2);

        // Scores now come from the new model, tagged with the new version.
        let scored = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(0, 0.8))).expect("score");
        let (version, scores) = parse_score_response(&scored.body).expect("body");
        assert_eq!(version, 2);
        let expected = ScoringEngine::new(model(2.6)).score_batch(&[ScoreRequest {
            pair_id: 0,
            metric_row: vec![0.8, 0.2],
            classifier_output: 0.8,
            machine_says_match: true,
        }]);
        assert_eq!(scores[0].to_bits(), expected[0].to_bits());

        // A missing artifact is refused with 409 and the version stays.
        let missing = format!("{{\"path\": {:?}}}", dir.join("nope.json").display().to_string());
        let refused = http_roundtrip(&mut stream, "POST", "/reload", Some(&missing)).expect("response");
        assert_eq!(refused.status, 409, "{}", refused.body);
        assert_eq!(executor.version(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_endpoint_renders_and_agrees_with_stats() {
        let (server, _executor) = start_server(16);
        let mut stream = connect(&server);
        for i in 0..3u64 {
            let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(i, 0.4))).expect("score");
            assert_eq!(ok.status, 200, "{}", ok.body);
        }
        let scraped = http_roundtrip(&mut stream, "GET", "/metrics", None).expect("metrics");
        assert_eq!(scraped.status, 200);
        assert!(
            scraped
                .header("content-type")
                .is_some_and(|ct| ct.starts_with("text/plain")),
            "{:?}",
            scraped.headers
        );
        let samples = crate::metrics::parse_exposition(&scraped.body).expect("exposition parses");
        let sum_of = |name: &str| -> f64 { samples.iter().filter(|s| s.name == name).map(|s| s.value).sum() };
        // Every scored request is counted under the version that scored it.
        assert_eq!(sum_of("er_serve_score_requests_total"), 3.0);
        assert_eq!(sum_of("er_serve_model_version"), 1.0);
        assert_eq!(sum_of("er_serve_request_duration_seconds_count"), 3.0);
        // The /stats counters are the same registry, classified by status
        // class: 3 scores + the /metrics scrape itself.
        let stats = server.stats();
        assert_eq!(stats.responses_2xx, 4, "{stats:?}");
        assert_eq!(stats.responses_4xx + stats.responses_429 + stats.responses_5xx, 0);
        // The exposition's own responses_total agrees with what /stats saw
        // at scrape time (the scrape response is recorded after rendering).
        assert_eq!(sum_of("er_serve_responses_total"), 3.0);
        // Batching evidence flows through the same registry.
        assert_eq!(stats.batched_requests, 3);
        assert!(stats.batches >= 1 && stats.batches <= 3, "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn disabled_metrics_turn_off_the_endpoint_and_freeze_stats() {
        let (server, _executor) = start_server_with(ServerConfig {
            metrics_enabled: false,
            ..ServerConfig::default()
        });
        let mut stream = connect(&server);
        let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(0, 0.4))).expect("score");
        assert_eq!(ok.status, 200, "{}", ok.body);
        let scraped = http_roundtrip(&mut stream, "GET", "/metrics", None).expect("response");
        assert_eq!(scraped.status, 404, "{}", scraped.body);
        let stats = server.stats();
        assert_eq!(stats.responses_2xx, 0, "no observations when disabled: {stats:?}");
        server.shutdown();
    }

    #[test]
    fn rate_limited_client_gets_429_with_headers_while_others_flow() {
        let (server, _executor) = start_server_with(ServerConfig {
            // Burst of 2 with a negligible refill: the third request from
            // the same client must bounce for the rest of the test.
            rate_limit: Some(RateLimitConfig::new(0.001, 2.0)),
            ..ServerConfig::default()
        });
        let mut stream = connect(&server);
        let a = [("X-Client-Id", "client-a")];
        for i in 0..2u64 {
            let ok = http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&request_json(i, 0.4)), &a)
                .expect("score");
            assert_eq!(ok.status, 200, "{}", ok.body);
        }
        let limited = http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&request_json(2, 0.4)), &a)
            .expect("response");
        assert_eq!(limited.status, 429, "{}", limited.body);
        assert_eq!(limited.header("x-ratelimit-limit"), Some("2"));
        assert_eq!(limited.header("x-ratelimit-remaining"), Some("0"));
        assert!(limited.header("x-ratelimit-reset").is_some());
        assert!(
            limited.header("retry-after").is_some_and(|v| v != "0"),
            "rate-limit Retry-After must be a real backoff, got {:?}",
            limited.header("retry-after")
        );
        assert!(limited.body.contains("rate limit"), "{}", limited.body);
        // A different client on the SAME connection (same peer IP) has its
        // own untouched bucket.
        let b = [("X-Client-Id", "client-b")];
        let ok =
            http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&request_json(3, 0.4)), &b).expect("score");
        assert_eq!(ok.status, 200, "{}", ok.body);
        // The registry saw exactly one token-bucket rejection and no
        // queue-full rejection.
        assert_eq!(server.metrics().rejected.with(&[("cause", "rate_limited")]).get(), 1);
        assert_eq!(server.metrics().rejected.with(&[("cause", "queue_full")]).get(), 0);
        server.shutdown();
    }

    #[test]
    fn log_lines_are_json_and_sampling_is_deterministic() {
        assert!(!should_sample(0, 0), "0 disables logging");
        assert!(should_sample(0, 1) && should_sample(1, 1));
        assert!(should_sample(0, 10) && !should_sample(9, 10) && should_sample(10, 10));
        let line = format_log_line(1754600000.125, 42, "/score", 200, 311, "10.2.3.4", "er-0000002a");
        let value = serde::json::parse(&line).expect("log line is one JSON object");
        let field = |name: &str| value.get(name).unwrap_or_else(|| panic!("missing {name} in {line}"));
        assert_eq!(field("seq"), &serde::Value::UInt(42));
        assert_eq!(field("status"), &serde::Value::UInt(200));
        assert_eq!(field("duration_us"), &serde::Value::UInt(311));
        assert_eq!(field("route").as_str(), Some("/score"));
        assert_eq!(field("client").as_str(), Some("10.2.3.4"));
        assert_eq!(field("ts"), &serde::Value::Float(1754600000.125));
        assert_eq!(field("trace_id").as_str(), Some("er-0000002a"));
    }

    #[test]
    fn shutdown_does_not_hang_on_a_half_received_request() {
        let (server, _executor) = start_server(8);
        let mut stream = connect(&server);
        // A request head fragment with no terminating blank line: the
        // handler buffers it and keeps polling for the rest. Shutdown must
        // still close the connection and return instead of joining forever.
        stream
            .write_all(b"POST /score HTTP/1.1\r\nContent-Length: 10\r\n")
            .expect("send partial head");
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let (server, _executor) = start_server(8);
        let mut stream = connect(&server);
        let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(0, 0.2))).expect("score");
        assert_eq!(ok.status, 200);
        server.shutdown();
        // The connection is gone after shutdown; a fresh request fails to
        // connect or errors out rather than hanging.
        assert!(http_roundtrip(&mut stream, "GET", "/healthz", None).is_err());
    }

    #[test]
    fn request_ids_are_accepted_generated_and_echoed_on_every_response() {
        let (server, _executor) = start_server(16);
        let mut stream = connect(&server);
        // A well-formed client id is adopted verbatim.
        let supplied = [("X-Request-Id", "client.trace-42_A")];
        let ok = http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&request_json(0, 0.4)), &supplied)
            .expect("score");
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert_eq!(ok.header("x-request-id"), Some("client.trace-42_A"));
        // No client id: the server mints one with its own prefix.
        let minted = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(1, 0.4))).expect("score");
        assert_eq!(minted.status, 200, "{}", minted.body);
        let minted_id = minted.header("x-request-id").expect("generated id");
        assert!(minted_id.starts_with("er-"), "generated id, got {minted_id:?}");
        // A malformed client id (characters outside [A-Za-z0-9._-]) is
        // replaced, never reflected back.
        let hostile = [("X-Request-Id", "evil id\"<script>")];
        let replaced =
            http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&request_json(2, 0.4)), &hostile)
                .expect("score");
        assert_eq!(replaced.status, 200, "{}", replaced.body);
        let replaced_id = replaced.header("x-request-id").expect("replacement id");
        assert!(replaced_id.starts_with("er-"), "sanitized id, got {replaced_id:?}");
        // Error responses carry the id too: a parse failure still echoes the
        // client's id so the 400 is attributable in both parties' logs.
        let err =
            http_roundtrip_with_headers(&mut stream, "POST", "/score", Some("{not json"), &supplied).expect("response");
        assert_eq!(err.status, 400, "{}", err.body);
        assert_eq!(err.header("x-request-id"), Some("client.trace-42_A"));
        // Non-score routes and 404s echo as well.
        let missing = http_roundtrip_with_headers(&mut stream, "GET", "/nope", None, &supplied).expect("response");
        assert_eq!(missing.status, 404);
        assert_eq!(missing.header("x-request-id"), Some("client.trace-42_A"));
        server.shutdown();
    }

    #[test]
    fn debug_traces_exports_chrome_trace_json() {
        let (server, _executor) = start_server(16);
        let mut stream = connect(&server);
        let supplied = [("X-Request-Id", "traced-req-7")];
        for i in 0..3u64 {
            let ok = http_roundtrip_with_headers(&mut stream, "POST", "/score", Some(&request_json(i, 0.3)), &supplied)
                .expect("score");
            assert_eq!(ok.status, 200, "{}", ok.body);
        }
        let traces = http_roundtrip(&mut stream, "GET", "/debug/traces", None).expect("traces");
        assert_eq!(traces.status, 200, "{}", traces.body);
        let doc = serde::json::parse(&traces.body).expect("chrome trace JSON parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_seq())
            .expect("traceEvents array");
        assert!(!events.is_empty(), "three traced requests retained");
        let mut stages_seen = std::collections::BTreeSet::new();
        for event in events {
            let event = event.as_map().expect("event object");
            let field = |k: &str| {
                event
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v)
                    .unwrap_or_else(|| panic!("missing {k}"))
            };
            assert_eq!(field("ph").as_str(), Some("X"), "complete events");
            assert!(matches!(field("ts"), serde::Value::UInt(_)));
            assert!(matches!(field("dur"), serde::Value::UInt(_)));
            stages_seen.insert(field("name").as_str().expect("stage name").to_string());
        }
        for stage in ["parse", "score", "serialize", "write"] {
            assert!(stages_seen.contains(stage), "missing {stage} in {stages_seen:?}");
        }
        // The supplied request id is the trace id in the export.
        assert!(traces.body.contains("traced-req-7"), "{}", traces.body);
        // committed_total counts every traced request.
        let committed = doc
            .get("otherData")
            .and_then(|v| v.get("committed_total"))
            .expect("otherData.committed_total");
        assert_eq!(committed, &serde::Value::UInt(3));
        server.shutdown();
    }

    #[test]
    fn trace_capacity_zero_disables_the_endpoint_and_stats_exemplars() {
        let (server, _executor) = start_server_with(ServerConfig {
            trace_capacity: 0,
            ..ServerConfig::default()
        });
        let mut stream = connect(&server);
        let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(0, 0.6))).expect("score");
        assert_eq!(ok.status, 200, "{}", ok.body);
        // Request ids still flow when tracing is off.
        assert!(ok.header("x-request-id").is_some());
        let traces = http_roundtrip(&mut stream, "GET", "/debug/traces", None).expect("response");
        assert_eq!(traces.status, 404, "{}", traces.body);
        let stats = http_roundtrip(&mut stream, "GET", "/stats", None).expect("stats");
        assert!(!stats.body.contains("slow_exemplars"), "{}", stats.body);
        server.shutdown();
    }

    #[test]
    fn stats_carry_slow_request_exemplars_with_histogram_buckets() {
        let (server, _executor) = start_server(16);
        let mut stream = connect(&server);
        for i in 0..4u64 {
            let ok = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(i, 0.8))).expect("score");
            assert_eq!(ok.status, 200, "{}", ok.body);
        }
        let stats = http_roundtrip(&mut stream, "GET", "/stats", None).expect("stats");
        assert_eq!(stats.status, 200);
        let doc = serde::json::parse(&stats.body).expect("stats JSON");
        let exemplars = doc
            .get("slow_exemplars")
            .and_then(|v| v.as_seq())
            .expect("slow_exemplars array");
        assert!(!exemplars.is_empty() && exemplars.len() <= STATS_EXEMPLARS);
        let slowest = &exemplars[0];
        let total_us = match slowest.get("total_us").expect("total_us") {
            serde::Value::UInt(us) => *us,
            other => panic!("total_us should be an integer, got {other:?}"),
        };
        // Exemplars are sorted slowest-first and each maps into a histogram
        // bucket in Prometheus `le` format.
        for pair in exemplars.windows(2) {
            let next = match pair[1].get("total_us").expect("total_us") {
                serde::Value::UInt(us) => *us,
                other => panic!("total_us should be an integer, got {other:?}"),
            };
            let prev = match pair[0].get("total_us").expect("total_us") {
                serde::Value::UInt(us) => *us,
                other => panic!("total_us should be an integer, got {other:?}"),
            };
            assert!(prev >= next, "exemplars sorted slowest-first");
        }
        let le = slowest.get("bucket_le").and_then(|v| v.as_str()).expect("bucket_le");
        if le != "+Inf" {
            let bound: f64 = le.parse().expect("bucket_le parses as a bound");
            assert!(
                total_us as f64 / 1e6 <= bound,
                "{total_us}us must fall within its le={le} bucket"
            );
        }
        let stages = slowest.get("stages").and_then(|v| v.as_seq()).expect("stages");
        assert!(!stages.is_empty(), "per-stage breakdown present");
        server.shutdown();
    }

    #[test]
    fn injected_batcher_panic_is_contained_and_the_server_recovers() {
        let plan = Arc::new(FaultPlan::parse("batcher_panic@0").expect("plan"));
        let (server, executor) = start_server_with(ServerConfig {
            fault_plan: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        });
        let request = ScoreRequest {
            pair_id: 1,
            metric_row: vec![0.4, 0.6],
            classifier_output: 0.4,
            machine_says_match: false,
        };
        let mut stream = connect(&server);
        // The first batch panics; the rider gets a deterministic 500 over
        // the same (still healthy) connection.
        let first = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(1, 0.4))).expect("first");
        assert_eq!(first.status, 500, "{}", first.body);
        assert!(first.body.contains("panicked"), "{}", first.body);
        // The very next batch scores normally — and bit-exactly.
        let second = http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(1, 0.4))).expect("second");
        assert_eq!(second.status, 200, "{}", second.body);
        let (_, scores) = parse_score_response(&second.body).expect("score body");
        let expected = executor
            .snapshot()
            .executor()
            .score_batch(std::slice::from_ref(&request));
        assert_eq!(scores[0].to_bits(), expected[0].to_bits());
        assert_eq!(plan.fired(FaultKind::BatcherPanic), 1);
        let rendered = server.metrics().render();
        assert!(
            rendered.contains("er_serve_worker_panics_total{role=\"batcher\"} 1"),
            "{rendered}"
        );
        assert!(
            rendered.contains("er_serve_worker_restarts_total{role=\"batcher\"} 1"),
            "{rendered}"
        );
        server.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_with_504() {
        let (server, _executor) = start_server(16);
        server.pause_intake();
        let addr = server.local_addr();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            http_roundtrip_with_headers(
                &mut stream,
                "POST",
                "/score",
                Some(&request_json(3, 0.2)),
                &[("X-Deadline-Ms", "5")],
            )
            .expect("roundtrip")
        });
        // Let the 5ms budget expire while the job sits in the paused queue.
        std::thread::sleep(Duration::from_millis(100));
        server.resume_intake();
        let response = client.join().expect("client thread");
        assert_eq!(response.status, 504, "{}", response.body);
        assert!(response.body.contains("deadline"), "{}", response.body);
        assert!(
            server
                .metrics()
                .render()
                .contains("er_serve_rejected_total{cause=\"deadline\"} 1"),
            "deadline shed must be counted"
        );
        server.shutdown();
    }

    #[test]
    fn server_default_deadline_applies_without_a_header() {
        let (server, _executor) = start_server_with(ServerConfig {
            default_deadline_ms: Some(5),
            ..ServerConfig::default()
        });
        server.pause_intake();
        let addr = server.local_addr();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            http_roundtrip(&mut stream, "POST", "/score", Some(&request_json(4, 0.7))).expect("roundtrip")
        });
        std::thread::sleep(Duration::from_millis(100));
        server.resume_intake();
        let response = client.join().expect("client thread");
        assert_eq!(response.status, 504, "{}", response.body);
        server.shutdown();
    }

    #[test]
    fn connection_cap_refuses_with_503_and_retry_after() {
        let (server, _executor) = start_server_with(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        });
        let mut held = connect(&server);
        let ok = http_roundtrip(&mut held, "GET", "/healthz", None).expect("held connection");
        assert_eq!(ok.status, 200);
        // The cap is reached: the next connection is answered 503 without
        // its request even being read.
        let mut refused_stream = connect(&server);
        let refused = read_http_response(&mut refused_stream).expect("refusal response");
        assert_eq!(refused.status, 503, "{}", refused.body);
        assert_eq!(refused.header("retry-after"), Some("1"));
        assert!(refused.body.contains("capacity"), "{}", refused.body);
        // Freeing the slot lets a retrying client back in.
        drop(held);
        let policy = RetryPolicy {
            max_attempts: 20,
            base_backoff_ms: 20,
            max_backoff_ms: 200,
            seed: 7,
        };
        let (recovered, attempts) =
            http_roundtrip_with_retry(server.local_addr(), "GET", "/healthz", None, &[], &policy).expect("recovered");
        assert_eq!(recovered.status, 200, "{}", recovered.body);
        assert!(attempts >= 1);
        assert!(
            server
                .metrics()
                .render()
                .contains("er_serve_rejected_total{cause=\"overloaded\"}"),
            "refusals must be counted"
        );
        server.shutdown();
    }

    #[test]
    fn keep_alive_connections_close_at_the_lifetime_cap() {
        let (server, _executor) = start_server_with(ServerConfig {
            max_connection_lifetime: Duration::from_millis(100),
            ..ServerConfig::default()
        });
        let mut stream = connect(&server);
        let first = http_roundtrip(&mut stream, "GET", "/healthz", None).expect("first request");
        assert_eq!(first.status, 200);
        std::thread::sleep(Duration::from_millis(400));
        // The handler has closed the connection at the lifetime cap; the
        // next round trip fails instead of being served.
        assert!(
            http_roundtrip(&mut stream, "GET", "/healthz", None).is_err(),
            "lifetime-capped connection must be closed"
        );
        server.shutdown();
    }

    #[test]
    fn poisoned_admission_queue_recovers() {
        let queue = AdmissionQueue::new(4);
        // Poison the queue lock the way a real defect would: panic while
        // holding it.
        let poison = catch_unwind(AssertUnwindSafe(|| {
            let _guard = queue.inner.lock().expect("first lock");
            panic!("poison the queue lock");
        }));
        assert!(poison.is_err());
        assert!(queue.inner.lock().is_err(), "lock should report poisoned");
        // Every queue operation recovers via `into_inner`: a full
        // push → pop → reply round trip still works.
        let poller = crate::readiness::Poller::new().expect("poller");
        let waker = crate::readiness::Waker::new(&poller, Token(1)).expect("waker");
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker,
        });
        let job = Job {
            requests: Vec::new(),
            reply: ReplySender::new(Arc::clone(&completions), 7),
            trace: None,
            enqueued: Instant::now(),
            taken: None,
            deadline: None,
        };
        assert!(queue.push(job).is_ok(), "push through a poisoned lock");
        assert_eq!(queue.len(), 1);
        let batch = queue.pop_batch(4, Duration::from_millis(1)).expect("queue still open");
        assert_eq!(batch.len(), 1);
        for taken in batch {
            taken.reply.send(JobReply {
                outcome: JobOutcome::Scored(1, Vec::new()),
                trace: None,
            });
        }
        assert!(matches!(
            completions.drain().as_slice(),
            [Completion::Score {
                job: 7,
                reply: JobReply {
                    outcome: JobOutcome::Scored(1, _),
                    ..
                },
            }]
        ));
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            seed: 42,
        };
        for attempt in 0..8 {
            let cap = (10u64 << attempt).min(500);
            let ms = policy.backoff_ms(attempt);
            assert!(
                ms >= cap / 2 && ms <= cap,
                "attempt {attempt}: {ms}ms outside [{}, {cap}]",
                cap / 2
            );
            assert_eq!(ms, policy.backoff_ms(attempt), "deterministic per (seed, attempt)");
        }
        let other = RetryPolicy { seed: 43, ..policy };
        assert!(
            (0..8).any(|a| other.backoff_ms(a) != policy.backoff_ms(a)),
            "different seeds should jitter differently"
        );
    }
}
