//! Character-level edit similarity metrics.

/// Levenshtein edit distance between two strings (character-level).
///
/// Uses the two-row dynamic program, `O(|a|·|b|)` time and `O(min)` memory.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter string as the row for less memory.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 - distance / max(|a|, |b|)`.  Two empty strings are fully similar.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matched = vec![false; a.len()];
    let mut matches = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let a_ms: Vec<char> = a
        .iter()
        .enumerate()
        .filter(|(i, _)| a_matched[*i])
        .map(|(_, &c)| c)
        .collect();
    let b_ms: Vec<char> = b
        .iter()
        .enumerate()
        .filter(|(j, _)| b_matched[*j])
        .map(|(_, &c)| c)
        .collect();
    let transpositions = a_ms.iter().zip(b_ms.iter()).filter(|(x, y)| x != y).count() / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale of 0.1 and a prefix
/// cap of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basic() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        for (a, b) in [("database", "databse"), ("sigmod", "vldb"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn edit_similarity_range() {
        assert!((edit_similarity("abc", "abc") - 1.0).abs() < 1e-12);
        assert!((edit_similarity("", "") - 1.0).abs() < 1e-12);
        assert!(edit_similarity("abc", "xyz").abs() < 1e-12);
        let s = edit_similarity("entity resolution", "entity resolutoin");
        assert!(s > 0.85 && s < 1.0);
    }

    #[test]
    fn jaro_reference_values() {
        // Classic reference pairs from the record-linkage literature.
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-5);
        assert!((jaro("dixon", "dicksonx") - 0.766667).abs() < 1e-5);
        assert!((jaro("", "") - 1.0).abs() < 1e-12);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefix() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.961111).abs() < 1e-5);
        assert!(jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes"));
        // No common prefix: no boost.
        assert!((jaro_winkler("abc", "xbc") - jaro("abc", "xbc")).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_bounded() {
        for (a, b) in [("a", "a"), ("abcd", "abce"), ("abcdefgh", "abcdefgh"), ("x", "y")] {
            let v = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&v), "{a} vs {b} -> {v}");
        }
    }
}
