//! # er-serve
//!
//! The online serving layer of the LearnRisk reproduction: everything needed
//! to take a risk model trained by the batch pipeline and stand it up behind
//! a request stream, as the risk-aware human-machine workflows of r-HUMO and
//! its successors assume.
//!
//! * [`artifact`] — versioned, validated persistence of the full trained
//!   state ([`ModelArtifact`]); the loader rejects format-version mismatches
//!   and structurally corrupt models.
//! * [`index`] — [`CompiledRuleIndex`]: the rule set pre-compiled into
//!   per-metric sorted threshold lists, so per-request rule matching is a
//!   handful of binary searches instead of a linear scan over every rule
//!   condition.
//! * [`engine`] — [`ScoringEngine`]: `score_request` / `score_batch` over
//!   raw metric rows, bit-identical to the offline
//!   [`learnrisk_core::LearnRiskModel::risk_score`] path.
//! * [`cache`] — a bounded intrusive-list [`LruCache`] for repeated-pair
//!   traffic.
//! * [`executor`] — [`ShardedExecutor`]: batches chunked across the lanes
//!   of a persistent [`er_pool::WorkerPool`] plus a shard-locked result
//!   cache keyed on pair id.
//! * [`readiness`] — a hand-rolled readiness facility (`epoll` on Linux,
//!   `poll(2)` elsewhere, `mio`-shaped API) behind the server's
//!   event-driven connection driver.
//! * [`fault`] — [`FaultPlan`]: deterministic fault injection (worker
//!   panics, torn artifact reads, stalls) threaded through the stack so the
//!   supervision and degradation machinery is exercised, not assumed.
//! * [`reload`] — [`ReloadableExecutor`]: versioned artifact hot-reload
//!   (load → validate → verify round trip → atomic swap), so a retrained
//!   model rolls out without draining traffic and every response is
//!   attributable to exactly one artifact version.
//! * [`server`] — [`ScoreServer`]: a dependency-free HTTP/1.1 front-end —
//!   one event-driven readiness loop owning every connection — with a
//!   bounded admission queue, micro-batching windows coalescing requests
//!   into `try_score_batch` calls, and deterministic 429/503 backpressure.
//! * [`metrics`] — [`MetricsRegistry`]: lock-cheap counters, gauges and
//!   fixed-bucket histograms rendered as a Prometheus text exposition by
//!   `GET /metrics`; the single source of truth `/stats` is derived from.
//! * [`ratelimit`] — [`RateLimiter`]: per-client token buckets in front of
//!   the admission queue (429 + `X-RateLimit-*` headers).
//! * [`replay`] — a Zipf-skewed synthetic traffic generator and a
//!   closed-loop replay harness reporting throughput and p50/p95/p99
//!   latency.
//! * [`trace`] — end-to-end request tracing: per-request span timelines
//!   through `parse → ratelimit → admission_queue → batch_wait → score
//!   (per-shard) → serialize → write`, retained in a tail-biased ring
//!   (slowest-N survive wrap-around), exported as Chrome trace-event JSON
//!   by `GET /debug/traces` and as slow-request exemplars in `/stats`.

#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod engine;
pub mod executor;
pub mod fault;
pub mod index;
pub mod metrics;
pub mod ratelimit;
pub mod readiness;
pub mod reload;
pub mod replay;
pub mod server;
pub mod trace;

pub use artifact::{model_digest, ArtifactError, ModelArtifact, FORMAT_VERSION};
pub use cache::LruCache;
pub use engine::{EngineScratch, ScoreError, ScoreRequest, ScoringEngine};
pub use executor::{BatchScoreError, CacheStats, ServeConfig, ShardedExecutor};
pub use fault::{FaultKind, FaultPlan, FaultSpecError, FAULT_KINDS};
pub use index::{CompiledRuleIndex, MatchScratch, RowLengthError};
pub use metrics::{extract_histogram, parse_exposition, MetricsRegistry, ParsedHistogram, Sample};
pub use ratelimit::{RateLimitConfig, RateLimitDecision, RateLimiter};
pub use reload::{synthesize_probes, ReloadError, ReloadableExecutor, VersionedExecutor};
pub use replay::{run_replay, summarize_latencies, zipf_stream, LatencySummary, ReplayConfig, ReplayReport};
pub use server::{
    http_roundtrip, http_roundtrip_with_headers, http_roundtrip_with_retry, parse_score_response, read_http_response,
    HttpResponse, RetryPolicy, ScoreServer, ServerConfig, ServerStats,
};
pub use trace::{
    chrome_trace_document, valid_trace_id, ActiveTrace, CompletedTrace, SlowExemplar, Span, SpanSet, Stage, StageDur,
    Tracer,
};
