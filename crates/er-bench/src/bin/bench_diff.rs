//! `bench_diff` — the CI perf-regression gate.
//!
//! Diffs the current `out/serve_bench.json` + `out/train_bench.json` (as
//! written by `scripts/kick-tires.sh`) against the committed baseline under
//! `out/baseline/`, prints and writes a classification report, and exits
//! non-zero when any metric regresses beyond tolerance.  See
//! [`er_bench::diff`] for the comparison rules (ratio metrics are gated
//! across hardware, absolute metrics only on matching hardware, latency has
//! an absolute noise floor).
//!
//! Usage:
//!
//! ```text
//! bench_diff [--baseline-dir out/baseline] [--current-dir out]
//!            [--tolerance 0.25] [--report out/bench-diff.txt]
//!            [--write-baseline]
//! ```
//!
//! Environment overrides: `BENCH_DIFF_BASELINE_DIR`, `BENCH_DIFF_CURRENT_DIR`,
//! `BENCH_DIFF_TOLERANCE`, `BENCH_DIFF_REPORT`, `BENCH_DIFF_LATENCY_FLOOR_US`.
//!
//! `--write-baseline` refreshes the committed baseline from the current
//! files instead of diffing (run it after a PR that intentionally moves
//! performance, then commit the result).
//!
//! Exit codes: 0 = pass, 1 = regression detected, 2 = setup error (missing
//! or malformed input files).

use er_bench::diff::{diff_all, DiffConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    config: DiffConfig,
    report_path: PathBuf,
    write_baseline: bool,
}

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn parse_args() -> Result<Args, String> {
    let mut baseline_dir = PathBuf::from(env_or("BENCH_DIFF_BASELINE_DIR", "out/baseline"));
    let mut current_dir = PathBuf::from(env_or("BENCH_DIFF_CURRENT_DIR", "out"));
    let mut report_path = PathBuf::from(env_or("BENCH_DIFF_REPORT", "out/bench-diff.txt"));
    let mut config = DiffConfig::default();
    if let Ok(raw) = std::env::var("BENCH_DIFF_TOLERANCE") {
        config.tolerance = raw
            .trim()
            .parse()
            .map_err(|_| format!("bad BENCH_DIFF_TOLERANCE {raw:?}"))?;
    }
    if let Ok(raw) = std::env::var("BENCH_DIFF_LATENCY_FLOOR_US") {
        config.latency_floor_us = raw
            .trim()
            .parse()
            .map_err(|_| format!("bad BENCH_DIFF_LATENCY_FLOOR_US {raw:?}"))?;
    }
    let mut write_baseline = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--baseline-dir" => baseline_dir = PathBuf::from(value_of("--baseline-dir")?),
            "--current-dir" => current_dir = PathBuf::from(value_of("--current-dir")?),
            "--report" => report_path = PathBuf::from(value_of("--report")?),
            "--tolerance" => {
                let raw = value_of("--tolerance")?;
                config.tolerance = raw.trim().parse().map_err(|_| format!("bad --tolerance {raw:?}"))?;
            }
            "--write-baseline" => write_baseline = true,
            other => return Err(format!("unrecognized argument {other:?}")),
        }
    }
    Ok(Args {
        baseline_dir,
        current_dir,
        config,
        report_path,
        write_baseline,
    })
}

fn read(dir: &Path, file: &str) -> Result<String, String> {
    let path = dir.join(file);
    std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run scripts/kick-tires.sh to produce current results, \
             or bench_diff --write-baseline to seed the baseline)",
            path.display()
        )
    })
}

fn write_baseline(args: &Args) -> Result<(), String> {
    std::fs::create_dir_all(&args.baseline_dir).map_err(|e| format!("create {}: {e}", args.baseline_dir.display()))?;
    for file in ["serve_bench.json", "train_bench.json"] {
        let from = args.current_dir.join(file);
        let to = args.baseline_dir.join(file);
        std::fs::copy(&from, &to).map_err(|e| format!("copy {} -> {}: {e}", from.display(), to.display()))?;
        println!("bench_diff: refreshed {}", to.display());
    }
    println!(
        "bench_diff: baseline refreshed — commit {} to adopt it",
        args.baseline_dir.display()
    );
    Ok(())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.write_baseline {
        write_baseline(&args)?;
        return Ok(true);
    }
    let report = diff_all(
        &read(&args.baseline_dir, "serve_bench.json")?,
        &read(&args.current_dir, "serve_bench.json")?,
        &read(&args.baseline_dir, "train_bench.json")?,
        &read(&args.current_dir, "train_bench.json")?,
        &args.config,
    )?;
    let rendered = format!(
        "bench_diff: {} vs baseline {} (tolerance {:.0}%, latency floor {}µs)\n\n{}",
        args.current_dir.display(),
        args.baseline_dir.display(),
        args.config.tolerance * 100.0,
        args.config.latency_floor_us,
        report
    );
    print!("{rendered}");
    if let Some(parent) = args.report_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&args.report_path, &rendered).map_err(|e| format!("write {}: {e}", args.report_path.display()))?;
    println!("bench_diff: wrote {}", args.report_path.display());
    Ok(report.regressions().is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("bench_diff: {message}");
            ExitCode::from(2)
        }
    }
}
