//! Portfolio aggregation of risk-feature distributions (Eq. 2–3 of the paper).
//!
//! Each labeled pair is a *portfolio* whose component *stocks* are its risk
//! features.  The pair's equivalence-probability distribution is the weighted
//! aggregate of the feature distributions:
//!
//! ```text
//! μ_i  = Σ_j x_ij w_j μ_j   /  Σ_j x_ij w_j
//! σ_i² = Σ_j x_ij w_j² σ_j² / (Σ_j x_ij w_j)²
//! ```
//!
//! The division by the total active weight keeps μ a convex combination of the
//! feature expectations (and hence a valid probability); the paper's Eq. 2–3
//! assume the weights of the active features are already normalized — this
//! module performs that normalization explicitly.

use serde::{Deserialize, Serialize};

/// One active feature of a pair's portfolio: its weight and distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioComponent {
    /// Feature weight `w_j > 0`.
    pub weight: f64,
    /// Feature expectation `μ_j ∈ [0, 1]`.
    pub mean: f64,
    /// Feature standard deviation `σ_j ≥ 0`.
    pub std: f64,
}

/// The aggregated distribution of a pair plus the intermediate sums needed for
/// analytic gradients during training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioDistribution {
    /// Aggregated expectation μ_i.
    pub mean: f64,
    /// Aggregated variance σ_i².
    pub variance: f64,
    /// Sum of active weights `s = Σ x_ij w_j`.
    pub weight_sum: f64,
}

impl PortfolioDistribution {
    /// Aggregated standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// Aggregates the component distributions of a pair.
///
/// # Panics
/// Panics when `components` is empty or the total weight is not positive.
#[inline]
pub fn aggregate(components: &[PortfolioComponent]) -> PortfolioDistribution {
    assert!(!components.is_empty(), "a portfolio needs at least one component");
    let weight_sum: f64 = components.iter().map(|c| c.weight).sum();
    assert!(weight_sum > 0.0, "total portfolio weight must be positive");
    let mean = components.iter().map(|c| c.weight * c.mean).sum::<f64>() / weight_sum;
    let variance = components
        .iter()
        .map(|c| c.weight * c.weight * c.std * c.std)
        .sum::<f64>()
        / (weight_sum * weight_sum);
    PortfolioDistribution {
        mean,
        variance,
        weight_sum,
    }
}

/// Gradients of the aggregated `(μ_i, σ_i)` with respect to one component's
/// weight, mean and standard deviation.  Used by the risk-model trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentGradients {
    /// ∂μ_i / ∂w_j
    pub d_mean_d_weight: f64,
    /// ∂σ_i / ∂w_j
    pub d_std_d_weight: f64,
    /// ∂σ_i / ∂σ_j
    pub d_std_d_component_std: f64,
    /// ∂μ_i / ∂μ_j
    pub d_mean_d_component_mean: f64,
}

/// Computes the gradients of the aggregate with respect to component `j`.
#[inline]
pub fn component_gradients(
    components: &[PortfolioComponent],
    aggregate: &PortfolioDistribution,
    j: usize,
) -> ComponentGradients {
    let c = components[j];
    let s = aggregate.weight_sum;
    let sigma_i = aggregate.std().max(1e-9);
    // μ_i = Σ w μ / s  ⇒  ∂μ_i/∂w_j = (μ_j - μ_i) / s.
    let d_mean_d_weight = (c.mean - aggregate.mean) / s;
    // σ_i² = A / s² with A = Σ w² σ² ⇒
    // ∂σ_i²/∂w_j = 2 w_j σ_j² / s² − 2 A / s³ = 2 (w_j σ_j² − s σ_i²) / s².
    let d_var_d_weight = 2.0 * (c.weight * c.std * c.std - s * aggregate.variance) / (s * s);
    let d_std_d_weight = d_var_d_weight / (2.0 * sigma_i);
    // ∂σ_i²/∂σ_j = 2 w_j² σ_j / s².
    let d_var_d_std = 2.0 * c.weight * c.weight * c.std / (s * s);
    let d_std_d_component_std = d_var_d_std / (2.0 * sigma_i);
    // ∂μ_i/∂μ_j = w_j / s.
    let d_mean_d_component_mean = c.weight / s;
    ComponentGradients {
        d_mean_d_weight,
        d_std_d_weight,
        d_std_d_component_std,
        d_mean_d_component_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Vec<PortfolioComponent> {
        vec![
            PortfolioComponent {
                weight: 1.0,
                mean: 0.9,
                std: 0.05,
            },
            PortfolioComponent {
                weight: 2.0,
                mean: 0.1,
                std: 0.20,
            },
            PortfolioComponent {
                weight: 0.5,
                mean: 0.5,
                std: 0.10,
            },
        ]
    }

    #[test]
    fn aggregate_is_a_weighted_average() {
        let agg = aggregate(&example());
        let expected_mean = (1.0 * 0.9 + 2.0 * 0.1 + 0.5 * 0.5) / 3.5;
        assert!((agg.mean - expected_mean).abs() < 1e-12);
        let expected_var = (1.0 * 0.0025 + 4.0 * 0.04 + 0.25 * 0.01) / (3.5 * 3.5);
        assert!((agg.variance - expected_var).abs() < 1e-12);
        assert!((agg.weight_sum - 3.5).abs() < 1e-12);
        assert!((agg.std() - expected_var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregate_mean_stays_in_unit_interval() {
        let agg = aggregate(&example());
        assert!((0.0..=1.0).contains(&agg.mean));
        // Single component: aggregate equals the component.
        let single = aggregate(&[PortfolioComponent {
            weight: 3.0,
            mean: 0.7,
            std: 0.2,
        }]);
        assert!((single.mean - 0.7).abs() < 1e-12);
        assert!((single.std() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn higher_weight_pulls_mean_toward_component() {
        let mut comps = example();
        let before = aggregate(&comps).mean;
        comps[0].weight = 10.0; // component with mean 0.9
        let after = aggregate(&comps).mean;
        assert!(after > before);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let comps = example();
        let agg = aggregate(&comps);
        let eps = 1e-6;
        for j in 0..comps.len() {
            let grads = component_gradients(&comps, &agg, j);
            // Weight perturbation.
            let mut plus = comps.clone();
            plus[j].weight += eps;
            let mut minus = comps.clone();
            minus[j].weight -= eps;
            let num_mean = (aggregate(&plus).mean - aggregate(&minus).mean) / (2.0 * eps);
            let num_std = (aggregate(&plus).std() - aggregate(&minus).std()) / (2.0 * eps);
            assert!((num_mean - grads.d_mean_d_weight).abs() < 1e-5, "j={j}");
            assert!((num_std - grads.d_std_d_weight).abs() < 1e-5, "j={j}");
            // Component std perturbation.
            let mut plus = comps.clone();
            plus[j].std += eps;
            let mut minus = comps.clone();
            minus[j].std -= eps;
            let num = (aggregate(&plus).std() - aggregate(&minus).std()) / (2.0 * eps);
            assert!((num - grads.d_std_d_component_std).abs() < 1e-5, "j={j}");
            // Component mean perturbation.
            let mut plus = comps.clone();
            plus[j].mean += eps;
            let mut minus = comps.clone();
            minus[j].mean -= eps;
            let num = (aggregate(&plus).mean - aggregate(&minus).mean) / (2.0 * eps);
            assert!((num - grads.d_mean_d_component_mean).abs() < 1e-5, "j={j}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_portfolio_panics() {
        aggregate(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_portfolio_panics() {
        aggregate(&[PortfolioComponent {
            weight: 0.0,
            mean: 0.5,
            std: 0.1,
        }]);
    }
}
